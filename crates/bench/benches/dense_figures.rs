//! Criterion benches for the dense-DNN figures (Figures 6–14 and the
//! Section VI studies).
//!
//! Each bench runs the corresponding experiment kernel at the reduced (smoke)
//! scale so that `cargo bench` completes in a reasonable time while still
//! exercising the exact code paths that regenerate the paper's figures; the
//! full-scale regeneration lives in the `neummu-experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use neummu_mmu::MmuConfig;
use neummu_sim::dense::{DenseSimConfig, DenseSimulator};
use neummu_sim::experiments::{characterization, mmu_cache_study, performance, ExperimentScale};
use neummu_workloads::{DenseWorkload, WorkloadId};

const SCALE: ExperimentScale = ExperimentScale::Smoke;

fn bench_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterization");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("fig06_page_divergence", |b| {
        b.iter(|| characterization::fig06_page_divergence(black_box(SCALE)).unwrap())
    });
    group.bench_function("fig07_translation_bursts_cnn1", |b| {
        b.iter(|| {
            characterization::fig07_translation_bursts(black_box(WorkloadId::Cnn1), 1).unwrap()
        })
    });
    group.bench_function("fig14_va_trace_cnn1", |b| {
        b.iter(|| characterization::fig14_va_trace(black_box(WorkloadId::Cnn1), 1).unwrap())
    });
    group.finish();
}

fn bench_performance_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("performance_figures");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("fig08_baseline_iommu", |b| {
        b.iter(|| performance::fig08_baseline_iommu(black_box(SCALE)).unwrap())
    });
    group.bench_function("fig10_prmb_sweep", |b| {
        b.iter(|| performance::fig10_prmb_sweep(black_box(SCALE)).unwrap())
    });
    group.bench_function("fig11_ptw_sweep", |b| {
        b.iter(|| performance::fig11_ptw_sweep(black_box(SCALE)).unwrap())
    });
    group.bench_function("fig12a_ptw_no_prmb", |b| {
        b.iter(|| performance::fig12a_ptw_no_prmb(black_box(SCALE)).unwrap())
    });
    group.bench_function("fig12b_energy_perf", |b| {
        b.iter(|| performance::fig12b_energy_perf(black_box(SCALE)).unwrap())
    });
    group.bench_function("fig13_tpreg_hit_rate", |b| {
        b.iter(|| performance::fig13_tpreg_hit_rate(black_box(SCALE)).unwrap())
    });
    group.bench_function("mmu_cache_uptc_vs_tpc", |b| {
        b.iter(|| mmu_cache_study::run(black_box(SCALE)).unwrap())
    });
    group.finish();
}

fn bench_section6_studies(c: &mut Criterion) {
    let mut group = c.benchmark_group("section6_studies");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("summary_neummu", |b| {
        b.iter(|| performance::summary_neummu(black_box(SCALE)).unwrap())
    });
    group.bench_function("largepage_dense", |b| {
        b.iter(|| performance::largepage_dense(black_box(SCALE)).unwrap())
    });
    group.bench_function("spatial_npu", |b| {
        b.iter(|| performance::spatial_npu(black_box(SCALE)).unwrap())
    });
    group.bench_function("sensitivity", |b| {
        b.iter(|| performance::sensitivity(black_box(SCALE)).unwrap())
    });
    group.finish();
}

fn bench_single_workload_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_simulator");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let alexnet = DenseWorkload::new(WorkloadId::Cnn1).layers(1);
    let lstm = DenseWorkload::new(WorkloadId::Rnn2).layers(1);
    for (name, mmu) in [
        ("oracle", MmuConfig::oracle()),
        ("iommu", MmuConfig::baseline_iommu()),
        ("neummu", MmuConfig::neummu()),
    ] {
        group.bench_function(format!("alexnet_b1_{name}"), |b| {
            let sim = DenseSimulator::new(DenseSimConfig::with_mmu(mmu));
            b.iter(|| sim.simulate_workload(black_box(&alexnet)).unwrap())
        });
        group.bench_function(format!("lstm_b1_{name}"), |b| {
            let sim = DenseSimulator::new(DenseSimConfig::with_mmu(mmu));
            b.iter(|| sim.simulate_workload(black_box(&lstm)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_characterization,
    bench_performance_figures,
    bench_section6_studies,
    bench_single_workload_simulation
);
criterion_main!(benches);
