//! Criterion benches for the embedding-layer case study (Figures 15 and 16)
//! and the Table I configuration dump.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use neummu_mem::interconnect::TransferKind;
use neummu_mmu::MmuConfig;
use neummu_sim::embedding::{EmbeddingSimConfig, EmbeddingSimulator, GatherStrategy};
use neummu_sim::experiments::{recommender, table1, ExperimentScale};
use neummu_workloads::EmbeddingModel;

const SCALE: ExperimentScale = ExperimentScale::Smoke;

fn bench_recommender_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("recommender_figures");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("table1_configuration", |b| {
        b.iter(|| black_box(table1::run()))
    });
    group.bench_function("fig15_numa_breakdown", |b| {
        b.iter(|| recommender::fig15_numa_breakdown(black_box(SCALE)).unwrap())
    });
    group.bench_function("fig16_demand_paging", |b| {
        b.iter(|| recommender::fig16_demand_paging(black_box(SCALE)).unwrap())
    });
    group.finish();
}

fn bench_gather_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_strategies");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let model = EmbeddingModel::dlrm();
    let sim = EmbeddingSimulator::new(EmbeddingSimConfig::with_mmu(MmuConfig::neummu()));
    for (name, strategy) in [
        ("host_relayed_copy", GatherStrategy::HostRelayedCopy),
        (
            "numa_slow",
            GatherStrategy::NumaDirect {
                link: TransferKind::Pcie,
            },
        ),
        (
            "numa_fast",
            GatherStrategy::NumaDirect {
                link: TransferKind::NpuLink,
            },
        ),
        (
            "demand_paging",
            GatherStrategy::DemandPaging {
                link: TransferKind::NpuLink,
            },
        ),
    ] {
        group.bench_function(format!("dlrm_b8_{name}"), |b| {
            b.iter(|| sim.simulate(black_box(&model), 8, strategy).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recommender_figures, bench_gather_strategies);
criterion_main!(benches);
