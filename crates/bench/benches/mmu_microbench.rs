//! Microbenchmarks of the core MMU structures.
//!
//! These measure the raw simulation throughput of the individual components
//! (TLB, walker pool, MMU caches, page table, full translation engine) so that
//! regressions in the hot translation path are visible independently of the
//! figure-level experiments.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use neummu_mmu::{
    AddressTranslator, DeviceFaultConfig, MmuConfig, ResilienceConfig, Tlb, TranslationEngine,
    TranslationPathCache, UnifiedPageTableCache, WalkCache, WalkerPool,
};
use neummu_vmem::{MemNode, PageSize, PageTable, PathTag, PhysFrameNum, VirtAddr};

/// Builds a page table with `pages` consecutive 4 KB mappings.
fn streaming_table(pages: u64) -> PageTable {
    let mut pt = PageTable::new();
    for i in 0..pages {
        pt.map(
            VirtAddr::new(0x10_0000_0000 + i * 4096),
            PageSize::Size4K,
            PhysFrameNum::new(0x40_0000 + i),
            MemNode::Npu(0),
        )
        .unwrap();
    }
    pt
}

fn bench_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let accesses = 10_000u64;
    group.throughput(Throughput::Elements(accesses));
    group.bench_function("lookup_hit_stream", |b| {
        let mut tlb = Tlb::new(2048, 8);
        for page in 0..2048u64 {
            tlb.insert(page);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..accesses {
                if tlb.lookup(black_box(i % 2048)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("streaming_miss_fill", |b| {
        b.iter(|| {
            let mut tlb = Tlb::new(2048, 8);
            for page in 0..accesses {
                tlb.lookup(black_box(page));
                tlb.insert(black_box(page));
            }
            tlb.occupancy()
        })
    });
    group.finish();
}

fn bench_page_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_table");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let pt = streaming_table(4096);
    let walks = 4096u64;
    group.throughput(Throughput::Elements(walks));
    group.bench_function("walk_4k_mapped", |b| {
        b.iter(|| {
            let mut accesses = 0u32;
            for i in 0..walks {
                let path = pt.walk(black_box(VirtAddr::new(0x10_0000_0000 + i * 4096)));
                accesses += path.memory_accesses();
            }
            accesses
        })
    });
    // The allocation-free hot path the engines actually use; the gap to
    // `walk_4k_mapped` is the cost of materializing the step trace.
    group.bench_function("probe_4k_mapped", |b| {
        b.iter(|| {
            let mut accesses = 0u32;
            for i in 0..walks {
                let probe = pt.probe(black_box(VirtAddr::new(0x10_0000_0000 + i * 4096)));
                accesses += probe.memory_accesses();
            }
            accesses
        })
    });
    group.finish();
}

fn bench_oracle_translator(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let pages = 512u64;
    let pt = streaming_table(pages);
    // A DMA-style 512-byte transaction stream: 8 requests per 4 KB page, so
    // the oracle's last-page mapped-range memo answers 7 of every 8.
    let requests: Vec<VirtAddr> = (0..pages * 8)
        .map(|i| VirtAddr::new(0x10_0000_0000 + i * 512))
        .collect();
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("memoized_burst_stream", |b| {
        b.iter(|| {
            let mut oracle = neummu_mmu::OracleTranslator::new(PageSize::Size4K);
            let mut cycle = 0u64;
            for va in &requests {
                let outcome = oracle.translate(&pt, black_box(*va), cycle);
                cycle = outcome.accept_cycle + 1;
            }
            oracle.stats().requests
        })
    });
    group.finish();
}

fn bench_walker_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("walker_pool");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let walks = 10_000u64;
    group.throughput(Throughput::Elements(walks));
    group.bench_function("start_and_retire_128_walkers", |b| {
        b.iter(|| {
            let mut pool = WalkerPool::new(128, 32, 100, true);
            let mut cycle = 0u64;
            for i in 0..walks {
                let va = VirtAddr::new(i * 4096);
                match pool.start_walk(cycle, i, PathTag::of(va), 4, true) {
                    neummu_mmu::walker::WalkAdmission::Rejected { retry_at } => {
                        pool.retire_completed(retry_at);
                        cycle = retry_at;
                    }
                    _ => cycle += 1,
                }
            }
            pool.retire_completed(u64::MAX).len()
        })
    });
    group.finish();
}

fn bench_mmu_caches(c: &mut Criterion) {
    let mut group = c.benchmark_group("mmu_caches");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let pt = streaming_table(2048);
    let walks: Vec<_> = (0..2048u64)
        .map(|i| pt.walk(VirtAddr::new(0x10_0000_0000 + i * 4096)))
        .collect();
    group.throughput(Throughput::Elements(walks.len() as u64));
    group.bench_function("uptc_16_entries", |b| {
        b.iter(|| {
            let mut cache = UnifiedPageTableCache::new(16);
            let mut skipped = 0u64;
            for walk in &walks {
                skipped += u64::from(cache.access(black_box(walk)).skipped_levels);
            }
            skipped
        })
    });
    group.bench_function("tpc_single_entry", |b| {
        b.iter(|| {
            let mut cache = TranslationPathCache::new(1);
            let mut skipped = 0u64;
            for walk in &walks {
                skipped += u64::from(cache.access(black_box(walk)).skipped_levels);
            }
            skipped
        })
    });
    group.finish();
}

fn bench_translation_engine_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation_engine");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let pages = 2048u64;
    let pt = streaming_table(pages);
    // An 8-transactions-per-page burst, as a 512-byte DMA stream would produce.
    let requests: Vec<VirtAddr> = (0..pages * 8)
        .map(|i| VirtAddr::new(0x10_0000_0000 + i * 512))
        .collect();
    group.throughput(Throughput::Elements(requests.len() as u64));
    for (name, config) in [
        ("baseline_iommu", MmuConfig::baseline_iommu()),
        ("neummu", MmuConfig::neummu()),
        (
            "neummu_1024ptw_no_prmb",
            MmuConfig::baseline_iommu().with_ptws(1024),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine = TranslationEngine::new(config);
                let mut cycle = 0u64;
                for va in &requests {
                    let outcome = engine.translate(&pt, black_box(*va), cycle);
                    cycle = outcome.accept_cycle + 1;
                }
                engine.stats().walks
            })
        });
    }
    group.finish();
}

fn bench_run_coalesced_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation_engine");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let pages = 2048u64;
    let pt = streaming_table(pages);
    // The same 8-transactions-per-page DMA stream as the per-request
    // `neummu` bench above, consumed through the run-coalesced path: one
    // `translate_run` resolves a page's walk and replays the burst's seven
    // merges arithmetically. The gap between this ns/req figure and
    // `translation_engine/neummu` is the per-request overhead PR 5 removed.
    group.throughput(Throughput::Elements(pages * 8));
    group.bench_function("run_coalesced_burst", |b| {
        b.iter(|| {
            let mut engine = TranslationEngine::new(MmuConfig::neummu());
            let mut cycle = 0u64;
            for page in 0..pages {
                let va = VirtAddr::new(0x10_0000_0000 + page * 4096);
                let mut remaining = 8u64;
                while remaining > 0 {
                    let out = engine.translate_run(&pt, black_box(va), remaining, cycle);
                    cycle = out.last_accept() + 1;
                    remaining -= out.consumed;
                }
            }
            engine.stats().walks
        })
    });
    group.finish();
}

fn bench_multi_tenant_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation_engine");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    // Four tenants, each with a private page table over the same VA range,
    // interleaved through ONE shared NeuMMU engine in 64-request bursts —
    // the tagged hot path the multi-tenant scheduler drives. ns/req here is
    // the `multi_tenant` datapoint `scripts/record_bench.sh` records.
    const TENANTS: usize = 4;
    const BURST: usize = 64;
    let pages = 2048u64;
    let tables: Vec<PageTable> = (0..TENANTS).map(|_| streaming_table(pages)).collect();
    let requests: Vec<VirtAddr> = (0..pages * 8)
        .map(|i| VirtAddr::new(0x10_0000_0000 + i * 512))
        .collect();
    group.throughput(Throughput::Elements((requests.len() * TENANTS) as u64));
    group.bench_function("multi_tenant_4asid_burst64", |b| {
        b.iter(|| {
            let mut engine = TranslationEngine::new(MmuConfig::neummu());
            let mut cycle = 0u64;
            let mut cursors = [0usize; TENANTS];
            let mut live = TENANTS;
            while live > 0 {
                live = 0;
                for (tenant, cursor) in cursors.iter_mut().enumerate() {
                    if *cursor >= requests.len() {
                        continue;
                    }
                    live += 1;
                    let asid = neummu_vmem::Asid::new(tenant as u16);
                    let end = (*cursor + BURST).min(requests.len());
                    for va in &requests[*cursor..end] {
                        let outcome =
                            engine.translate_tagged(&tables[tenant], asid, black_box(*va), cycle);
                        cycle = outcome.accept_cycle + 1;
                    }
                    *cursor = end;
                }
            }
            engine.stats().walks
        })
    });
    group.finish();
}

fn bench_fault_storm_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("resilience");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let pages = 2048u64;
    let pt = streaming_table(pages);
    // The `translation_engine/neummu` burst again, but through an engine
    // whose fault plan injects on 10% of walks with the full recovery stack
    // armed (retry + watchdog + quarantine + retransmit). The ns/req figure
    // is the cost of translating *through* a fault storm — the
    // `resilience_recovery_ns` datapoint `scripts/record_bench.sh` records.
    // The `disarmed_plan` companion runs a zero-rate plan over the same
    // stream: its gap to `translation_engine/neummu` is the whole price of
    // the fault gate when faults are configured but never fire.
    let requests: Vec<VirtAddr> = (0..pages * 8)
        .map(|i| VirtAddr::new(0x10_0000_0000 + i * 512))
        .collect();
    group.throughput(Throughput::Elements(requests.len() as u64));
    for (name, rate) in [("fault_storm_recovery", 0.1), ("disarmed_plan", 0.0)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine = TranslationEngine::with_faults(
                    MmuConfig::neummu(),
                    DeviceFaultConfig::uniform(0x5EED, rate),
                    ResilienceConfig::all_on(),
                )
                .unwrap();
                let mut cycle = 0u64;
                for va in &requests {
                    let outcome = engine.translate(&pt, black_box(*va), cycle);
                    cycle = outcome.accept_cycle + 1;
                }
                engine.stats().walks
            })
        });
    }
    group.finish();
}

fn bench_serving_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    // The whole open-loop serving leg end to end at smoke shape: seeded
    // arrival generation for 4 heterogeneous tenants, bounded admission
    // queues, round-robin quanta on one shared engine, exact SLO
    // histograms. Elements = completed requests, so the reported rate is
    // simulated serving throughput (requests simulated per second) — the
    // `serving_request_ns` datapoint `scripts/record_bench.sh` records.
    use neummu_sim::experiments::serving::{point_config, tenant_population};
    use neummu_sim::experiments::ExperimentScale;
    use neummu_sim::serving::{ServingPolicy, ServingSimulator};
    let config = point_config(ExperimentScale::Smoke, ServingPolicy::RoundRobin);
    let tenants = tenant_population(ExperimentScale::Smoke, 1.2, config.txns_per_request);
    let completed = ServingSimulator::new(config.clone())
        .run(&tenants)
        .unwrap()
        .completed_requests();
    assert!(completed > 0);
    group.throughput(Throughput::Elements(completed));
    group.bench_function("open_loop_smoke_rr", |b| {
        b.iter(|| {
            ServingSimulator::new(config.clone())
                .run(black_box(&tenants))
                .unwrap()
                .completed_requests()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tlb,
    bench_page_table,
    bench_oracle_translator,
    bench_walker_pool,
    bench_mmu_caches,
    bench_translation_engine_burst,
    bench_run_coalesced_burst,
    bench_multi_tenant_translation,
    bench_fault_storm_recovery,
    bench_serving_throughput
);
criterion_main!(benches);
