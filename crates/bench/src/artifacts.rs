//! Writing experiment artifacts (Markdown, CSV, JSON) to disk.
//!
//! Every write goes through [`neummu_store::atomic::write_atomic`] (temp file
//! → fsync → atomic rename), so a crash — including the SIGKILL the
//! crash/resume CI step delivers mid-run — can truncate no artifact: each
//! file on disk is either absent or complete. [`ExperimentArtifacts::new`]
//! sweeps up the temp debris a killed predecessor may have left, so a resumed
//! run's output directory is byte-identical to an uninterrupted one.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

use neummu_sim::ResultTable;
use neummu_store::atomic::{clean_stale_temps, write_atomic};

/// A directory that collects the artifacts of one experiments run.
#[derive(Debug, Clone)]
pub struct ExperimentArtifacts {
    root: PathBuf,
    written: Vec<PathBuf>,
}

impl ExperimentArtifacts {
    /// Creates (if needed) the artifact directory and removes any temp
    /// debris left by a previous crashed run.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory cannot be created or read.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        clean_stale_temps(&root)?;
        Ok(ExperimentArtifacts {
            root,
            written: Vec::new(),
        })
    }

    /// The artifact directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Files written so far.
    #[must_use]
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }

    /// Writes a result table as both Markdown and CSV.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if a file cannot be written.
    pub fn table(&mut self, name: &str, table: &ResultTable) -> io::Result<()> {
        self.file(&format!("{name}.md"), table.to_markdown().as_bytes())?;
        self.file(&format!("{name}.csv"), table.to_csv().as_bytes())
    }

    /// Writes a serializable value as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be written or the value cannot
    /// be serialized.
    pub fn json<T: Serialize>(&mut self, name: &str, value: &T) -> io::Result<()> {
        let body = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.file(&format!("{name}.json"), body.as_bytes())
    }

    /// Writes one raw artifact file atomically under its final name. This is
    /// both the sink all typed writers funnel into and the restore path for
    /// artifacts journaled in a slot store: the bytes land exactly as given.
    ///
    /// # Errors
    ///
    /// Rejects file names with path separators (journaled names must stay
    /// inside the artifact directory) and propagates write errors.
    pub fn file(&mut self, file_name: &str, bytes: &[u8]) -> io::Result<()> {
        if file_name.contains(['/', '\\']) || file_name == ".." {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("artifact name `{file_name}` must not leave the artifact directory"),
            ));
        }
        let path = self.root.join(file_name);
        write_atomic(&path, bytes)?;
        self.written.push(path);
        Ok(())
    }
}

/// Convenience wrapper: write one table into `dir` under `name`.
///
/// # Errors
///
/// Returns an I/O error if the directory or files cannot be written.
pub fn write_table(dir: impl Into<PathBuf>, name: &str, table: &ResultTable) -> io::Result<()> {
    ExperimentArtifacts::new(dir)?.table(name, table)
}

/// Convenience wrapper: write one JSON document into `dir` under `name`.
///
/// # Errors
///
/// Returns an I/O error if the directory or files cannot be written.
pub fn write_json<T: Serialize>(dir: impl Into<PathBuf>, name: &str, value: &T) -> io::Result<()> {
    ExperimentArtifacts::new(dir)?.json(name, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_markdown_csv_and_json() {
        let dir = std::env::temp_dir().join(format!("neummu-artifacts-{}", std::process::id()));
        let mut artifacts = ExperimentArtifacts::new(&dir).unwrap();
        let mut table = ResultTable::new("demo", &["a", "b"]);
        table.push_row(&["1", "2"]);
        artifacts.table("demo", &table).unwrap();
        artifacts.json("demo_raw", &vec![1, 2, 3]).unwrap();
        assert_eq!(artifacts.written().len(), 3);
        let md = fs::read_to_string(dir.join("demo.md")).unwrap();
        assert!(md.contains("### demo"));
        let csv = fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(csv.starts_with("a,b"));
        let json = fs::read_to_string(dir.join("demo_raw.json")).unwrap();
        assert!(json.contains('1'));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn opening_cleans_crash_debris_and_leaves_artifacts() {
        let dir =
            std::env::temp_dir().join(format!("neummu-artifacts-debris-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("fig08.md"), "committed").unwrap();
        fs::write(
            dir.join(format!("fig08.csv{}123", neummu_store::atomic::TMP_MARKER)),
            "torn",
        )
        .unwrap();
        let artifacts = ExperimentArtifacts::new(&dir).unwrap();
        assert_eq!(
            fs::read_to_string(dir.join("fig08.md")).unwrap(),
            "committed"
        );
        assert_eq!(fs::read_dir(artifacts.root()).unwrap().count(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn raw_file_restore_rejects_escaping_names() {
        let dir =
            std::env::temp_dir().join(format!("neummu-artifacts-escape-{}", std::process::id()));
        let mut artifacts = ExperimentArtifacts::new(&dir).unwrap();
        assert!(artifacts.file("../outside.md", b"x").is_err());
        assert!(artifacts.file("sub/inside.md", b"x").is_err());
        artifacts.file("inside.md", b"x").unwrap();
        assert_eq!(fs::read(dir.join("inside.md")).unwrap(), b"x");
        fs::remove_dir_all(&dir).ok();
    }
}
