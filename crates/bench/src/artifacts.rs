//! Writing experiment artifacts (Markdown, CSV, JSON) to disk.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

use neummu_sim::ResultTable;

/// A directory that collects the artifacts of one experiments run.
#[derive(Debug, Clone)]
pub struct ExperimentArtifacts {
    root: PathBuf,
    written: Vec<PathBuf>,
}

impl ExperimentArtifacts {
    /// Creates (if needed) the artifact directory.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory cannot be created.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ExperimentArtifacts {
            root,
            written: Vec::new(),
        })
    }

    /// The artifact directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Files written so far.
    #[must_use]
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }

    /// Writes a result table as both Markdown and CSV.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if a file cannot be written.
    pub fn table(&mut self, name: &str, table: &ResultTable) -> io::Result<()> {
        let md = self.root.join(format!("{name}.md"));
        fs::write(&md, table.to_markdown())?;
        self.written.push(md);
        let csv = self.root.join(format!("{name}.csv"));
        fs::write(&csv, table.to_csv())?;
        self.written.push(csv);
        Ok(())
    }

    /// Writes a serializable value as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be written or the value cannot
    /// be serialized.
    pub fn json<T: Serialize>(&mut self, name: &str, value: &T) -> io::Result<()> {
        let path = self.root.join(format!("{name}.json"));
        let body = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(&path, body)?;
        self.written.push(path);
        Ok(())
    }
}

/// Convenience wrapper: write one table into `dir` under `name`.
///
/// # Errors
///
/// Returns an I/O error if the directory or files cannot be written.
pub fn write_table(dir: impl Into<PathBuf>, name: &str, table: &ResultTable) -> io::Result<()> {
    ExperimentArtifacts::new(dir)?.table(name, table)
}

/// Convenience wrapper: write one JSON document into `dir` under `name`.
///
/// # Errors
///
/// Returns an I/O error if the directory or files cannot be written.
pub fn write_json<T: Serialize>(dir: impl Into<PathBuf>, name: &str, value: &T) -> io::Result<()> {
    ExperimentArtifacts::new(dir)?.json(name, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_markdown_csv_and_json() {
        let dir = std::env::temp_dir().join(format!("neummu-artifacts-{}", std::process::id()));
        let mut artifacts = ExperimentArtifacts::new(&dir).unwrap();
        let mut table = ResultTable::new("demo", &["a", "b"]);
        table.push_row(&["1", "2"]);
        artifacts.table("demo", &table).unwrap();
        artifacts.json("demo_raw", &vec![1, 2, 3]).unwrap();
        assert_eq!(artifacts.written().len(), 3);
        let md = fs::read_to_string(dir.join("demo.md")).unwrap();
        assert!(md.contains("### demo"));
        let csv = fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(csv.starts_with("a,b"));
        let json = fs::read_to_string(dir.join("demo_raw.json")).unwrap();
        assert!(json.contains('1'));
        fs::remove_dir_all(&dir).ok();
    }
}
