//! Regenerates every table and figure of the NeuMMU evaluation.
//!
//! Usage:
//!
//! ```text
//! neummu-experiments [--quick] [--out <dir>] [--only <exp>[,<exp>...]]
//!                    [--threads <n>] [--profile-trace <file>]
//! ```
//!
//! * `--quick` runs the reduced (smoke) suite instead of the full benchmark
//!   suite; useful for a fast end-to-end check.
//! * `--out` selects the artifact directory (default `results/`).
//! * `--only` restricts the run to a comma-separated list of experiment ids
//!   (`table1`, `fig06`, `fig07`, `fig08`, `fig10`, `fig11`, `fig12a`,
//!   `fig12b`, `fig13`, `fig14`, `mmu_cache`, `summary`, `largepage`,
//!   `spatial`, `sensitivity`, `fig15`, `fig16`, `multitenant`).
//! * `--threads` sets the worker-thread count of the experiment runner
//!   (default: the machine's available parallelism; `1` forces the serial
//!   reference schedule). Artifacts are byte-identical for every thread
//!   count — parallelism only changes wall-clock time.
//! * `--profile-trace` writes a cycle-resolved binary event trace of the run
//!   to the given file (decode it with `neummu_profile`). Off by default:
//!   with no sink installed every emission site is a dead branch and the run
//!   is byte-for-byte the untraced run. Trace *content* (the decoded event
//!   multiset, minus the runner's nondeterministic `wall/` kinds) is the
//!   same for every thread count.
//!
//! Every experiment writes a Markdown table, a CSV file and a JSON dump into
//! the artifact directory and prints the Markdown to stdout. After the run a
//! self-profiling report shows where simulation time went, along with the
//! oracle-memoization statistics (each oracle baseline simulates exactly once
//! per `(workload, batch, page size, NPU)` key and is shared across
//! experiments).

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Instant;

use neummu_bench::ExperimentArtifacts;
use neummu_sim::experiments::{
    characterization, mmu_cache_study, multi_tenant, performance, recommender, table1,
    ExperimentScale,
};
use neummu_sim::ExperimentRunner;
use neummu_workloads::WorkloadId;

struct Options {
    scale: ExperimentScale,
    out_dir: String,
    only: Option<BTreeSet<String>>,
    threads: usize,
    profile_trace: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut scale = ExperimentScale::Full;
    let mut out_dir = "results".to_string();
    let mut only = None;
    let mut threads = 0usize; // 0 = available parallelism
    let mut profile_trace = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = ExperimentScale::Smoke,
            "--out" => {
                out_dir = args.next().ok_or("--out requires a directory argument")?;
            }
            "--only" => {
                let list = args
                    .next()
                    .ok_or("--only requires a comma-separated list")?;
                only = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--threads" => {
                let value = args.next().ok_or("--threads requires a count argument")?;
                threads = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid thread count `{value}`"))?;
                if threads == 0 {
                    return Err("--threads requires a count of at least 1".to_string());
                }
            }
            "--profile-trace" => {
                profile_trace = Some(
                    args.next()
                        .ok_or("--profile-trace requires a file argument")?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: neummu-experiments [--quick] [--out <dir>] [--only <exp>[,<exp>...]] [--threads <n>] [--profile-trace <file>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        scale,
        out_dir,
        only,
        threads,
        profile_trace,
    })
}

fn wants(options: &Options, id: &str) -> bool {
    options.only.as_ref().is_none_or(|set| set.contains(id))
}

fn run_all(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let mut artifacts = ExperimentArtifacts::new(&options.out_dir)?;
    let scale = options.scale;
    let runner = ExperimentRunner::new(options.threads);
    let started = Instant::now();

    let emit = |name: &str,
                table: neummu_sim::ResultTable,
                artifacts: &mut ExperimentArtifacts|
     -> Result<(), Box<dyn std::error::Error>> {
        println!("{}", table.to_markdown());
        artifacts.table(name, &table)?;
        Ok(())
    };

    if wants(options, "table1") {
        emit(
            "table1_configuration",
            table1::run_on(&runner),
            &mut artifacts,
        )?;
    }

    if wants(options, "fig06") {
        let result = characterization::fig06_page_divergence_on(&runner, scale)?;
        artifacts.json("fig06_page_divergence", &result)?;
        emit("fig06_page_divergence", result.to_table(), &mut artifacts)?;
    }

    if wants(options, "fig07") {
        for (workload, name) in [
            (WorkloadId::Cnn1, "fig07a_cnn1"),
            (WorkloadId::Rnn1, "fig07b_rnn1"),
        ] {
            let result = characterization::fig07_translation_bursts_on(&runner, workload, 1)?;
            artifacts.json(name, &result)?;
            println!(
                "Figure 7 ({}): peak {} translations per {}-cycle window, bursty fraction {:.2}\n",
                workload.label(),
                result.peak(),
                result.window_cycles,
                result.bursty_fraction()
            );
            artifacts.table(name, &result.to_table())?;
        }
    }

    if wants(options, "fig08") {
        let result = performance::fig08_baseline_iommu_on(&runner, scale)?;
        artifacts.json("fig08_baseline_iommu", &result)?;
        emit(
            "fig08_baseline_iommu",
            result.to_table("Figure 8: baseline IOMMU normalized performance (4KB pages)"),
            &mut artifacts,
        )?;
    }

    if wants(options, "fig10") {
        let result = performance::fig10_prmb_sweep_on(&runner, scale)?;
        artifacts.json("fig10_prmb_sweep", &result)?;
        emit(
            "fig10_prmb_sweep",
            result.to_table("Figure 10: sensitivity to PRMB mergeable slots (8 PTWs)"),
            &mut artifacts,
        )?;
    }

    if wants(options, "fig11") {
        let result = performance::fig11_ptw_sweep_on(&runner, scale)?;
        artifacts.json("fig11_ptw_sweep", &result)?;
        emit(
            "fig11_ptw_sweep",
            result.to_table("Figure 11: sensitivity to the number of PTWs with PRMB(32)"),
            &mut artifacts,
        )?;
    }

    if wants(options, "fig12a") {
        let result = performance::fig12a_ptw_no_prmb_on(&runner, scale)?;
        artifacts.json("fig12a_ptw_no_prmb", &result)?;
        emit(
            "fig12a_ptw_no_prmb",
            result.to_table("Figure 12a: sensitivity to the number of PTWs without the PRMB"),
            &mut artifacts,
        )?;
    }

    if wants(options, "fig12b") {
        let result = performance::fig12b_energy_perf_on(&runner, scale)?;
        artifacts.json("fig12b_energy_perf", &result)?;
        emit("fig12b_energy_perf", result.to_table(), &mut artifacts)?;
    }

    if wants(options, "fig13") {
        let result = performance::fig13_tpreg_hit_rate_on(&runner, scale)?;
        artifacts.json("fig13_tpreg_hit_rate", &result)?;
        emit("fig13_tpreg_hit_rate", result.to_table(), &mut artifacts)?;
    }

    if wants(options, "fig14") {
        let result = characterization::fig14_va_trace_on(&runner, WorkloadId::Cnn1, 1)?;
        artifacts.json("fig14_va_trace", &result)?;
        emit("fig14_va_trace", result.to_table(), &mut artifacts)?;
    }

    if wants(options, "mmu_cache") {
        let result = mmu_cache_study::run_on(&runner, scale)?;
        artifacts.json("mmu_cache_uptc_vs_tpc", &result)?;
        println!(
            "TPC eliminates {:.1}% of the page-table reads left by the UPTC\n",
            result.tpc_walk_reduction_vs_uptc() * 100.0
        );
        emit("mmu_cache_uptc_vs_tpc", result.to_table(), &mut artifacts)?;
    }

    if wants(options, "summary") {
        let result = performance::summary_neummu_on(&runner, scale)?;
        artifacts.json("summary_neummu", &result)?;
        emit("summary_neummu", result.to_table(), &mut artifacts)?;
    }

    if wants(options, "largepage") {
        let result = performance::largepage_dense_on(&runner, scale)?;
        artifacts.json("largepage_dense", &result)?;
        emit(
            "largepage_dense",
            result.to_table("Section VI-A: dense workloads with 2MB large pages"),
            &mut artifacts,
        )?;
    }

    if wants(options, "spatial") {
        let result = performance::spatial_npu_on(&runner, scale)?;
        artifacts.json("spatial_npu", &result)?;
        emit(
            "spatial_npu",
            result.to_table("Section VI-B: spatial-array NPU"),
            &mut artifacts,
        )?;
    }

    if wants(options, "sensitivity") {
        let result = performance::sensitivity_on(&runner, scale)?;
        artifacts.json("sensitivity", &result)?;
        emit("sensitivity", result.to_table(), &mut artifacts)?;
    }

    if wants(options, "fig15") {
        let result = recommender::fig15_numa_breakdown_on(&runner, scale)?;
        artifacts.json("fig15_numa_breakdown", &result)?;
        println!(
            "Figure 15: average latency reduction vs the MMU-less baseline: NUMA(slow) {:.0}%, NUMA(fast) {:.0}%\n",
            result.average_latency_reduction("NUMA(slow)") * 100.0,
            result.average_latency_reduction("NUMA(fast)") * 100.0
        );
        emit("fig15_numa_breakdown", result.to_table(), &mut artifacts)?;
    }

    if wants(options, "fig16") {
        let result = recommender::fig16_demand_paging_on(&runner, scale)?;
        artifacts.json("fig16_demand_paging", &result)?;
        emit("fig16_demand_paging", result.to_table(), &mut artifacts)?;
    }

    if wants(options, "multitenant") {
        let result = multi_tenant::tenant_sweep_on(&runner, scale)?;
        artifacts.json("multitenant_sweep", &result)?;
        emit("multitenant_sweep", result.to_table(), &mut artifacts)?;
        // The per-tenant counter table: the raw cross-tenant contention
        // events (CounterPoint-style validation of the slowdown story).
        emit(
            "multitenant_tenant_counters",
            result.counters_table(),
            &mut artifacts,
        )?;
    }

    // The self-profile is wall-clock data and therefore nondeterministic; it
    // goes to stdout only, never into the artifact directory, so artifact
    // trees stay byte-identical across thread counts.
    println!("{}", runner.profile().to_table().to_markdown());
    // Hot-path telemetry: where the allocation-free translation path (PR 3)
    // actually lands at run time. Counters are process-global, so this
    // snapshot covers the whole run.
    for (name, value) in neummu_mmu::counters::snapshot().named() {
        runner.profile().add_counter(name, value);
    }
    println!("{}", runner.profile().counters_table().to_markdown());
    let cache = runner.oracle_cache();
    println!(
        "oracle cache: {} baseline simulations, {} reuses across {} keys",
        cache.simulations(),
        cache.hits(),
        cache.len()
    );
    println!(
        "wrote {} artifacts to `{}` in {:.1}s ({} scale, {} threads, {:.1}s simulation busy-time)",
        artifacts.written().len(),
        options.out_dir,
        started.elapsed().as_secs_f64(),
        scale.label(),
        runner.threads(),
        runner.profile().total_busy().as_secs_f64()
    );
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    // Install the process-wide trace sink before any engine or profile is
    // constructed, so every emission site sees it from the start.
    if let Some(path) = &options.profile_trace {
        let sink = match neummu_trace::TraceSink::to_file(path) {
            Ok(sink) => sink,
            Err(error) => {
                eprintln!("error: cannot create trace file `{path}`: {error}");
                return ExitCode::FAILURE;
            }
        };
        if neummu_trace::install(sink).is_none() {
            eprintln!("error: a trace sink is already installed in this process");
            return ExitCode::FAILURE;
        }
    }
    let outcome = run_all(&options);
    if let (Some(path), Some(sink)) = (&options.profile_trace, neummu_trace::global()) {
        match sink.finish() {
            Ok(events) => println!("wrote {events} trace events to `{path}`"),
            Err(error) => {
                eprintln!("error: failed to finalize trace `{path}`: {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
