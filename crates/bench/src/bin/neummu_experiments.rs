//! Regenerates every table and figure of the NeuMMU evaluation.
//!
//! Usage:
//!
//! ```text
//! neummu-experiments [--quick] [--out <dir>] [--only <exp>[,<exp>...]]
//!                    [--threads <n>] [--profile-trace <file>] [--store <dir>]
//! ```
//!
//! * `--quick` runs the reduced (smoke) suite instead of the full benchmark
//!   suite; useful for a fast end-to-end check.
//! * `--out` selects the artifact directory (default `results/`).
//! * `--only` restricts the run to a comma-separated list of experiment ids
//!   (`table1`, `fig06`, `fig07`, `fig08`, `fig10`, `fig11`, `fig12a`,
//!   `fig12b`, `fig13`, `fig14`, `mmu_cache`, `summary`, `largepage`,
//!   `spatial`, `sensitivity`, `fig15`, `fig16`, `multitenant`, `serving`,
//!   `resilience`).
//! * `--threads` sets the worker-thread count of the experiment runner
//!   (default: the machine's available parallelism; `1` forces the serial
//!   reference schedule). Artifacts are byte-identical for every thread
//!   count — parallelism only changes wall-clock time.
//! * `--profile-trace` writes a cycle-resolved binary event trace of the run
//!   to the given file (decode it with `neummu_profile`). Off by default:
//!   with no sink installed every emission site is a dead branch and the run
//!   is byte-for-byte the untraced run. Trace *content* (the decoded event
//!   multiset, minus the runner's nondeterministic `wall/` kinds) is the
//!   same for every thread count.
//! * `--store` attaches a persistent slot store (see `neummu_store`):
//!   memoized oracle baselines are restored from / committed to it, and each
//!   finished experiment family's artifacts are journaled so an interrupted
//!   run, rerun with the same flags, resumes where it was killed instead of
//!   recomputing — with a byte-identical artifact tree. A damaged store is
//!   recovered by recomputation, never trusted.
//!
//! Every experiment writes a Markdown table, a CSV file and a JSON dump into
//! the artifact directory and prints the Markdown to stdout. After the run a
//! self-profiling report shows where simulation time went, along with the
//! oracle-memoization statistics (each oracle baseline simulates exactly once
//! per `(workload, batch, page size, NPU)` key and is shared across
//! experiments).

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use neummu_bench::{commit_family, family_key, restore_family, ExperimentArtifacts};
use neummu_sim::experiments::{
    characterization, mmu_cache_study, multi_tenant, performance, recommender, resilience, serving,
    table1, ExperimentScale,
};
use neummu_sim::ExperimentRunner;
use neummu_store::Store;
use neummu_workloads::WorkloadId;

struct Options {
    scale: ExperimentScale,
    out_dir: String,
    only: Option<BTreeSet<String>>,
    threads: usize,
    profile_trace: Option<String>,
    store: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut scale = ExperimentScale::Full;
    let mut out_dir = "results".to_string();
    let mut only = None;
    let mut threads = 0usize; // 0 = available parallelism
    let mut profile_trace = None;
    let mut store = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = ExperimentScale::Smoke,
            "--out" => {
                out_dir = args.next().ok_or("--out requires a directory argument")?;
            }
            "--only" => {
                let list = args
                    .next()
                    .ok_or("--only requires a comma-separated list")?;
                only = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--threads" => {
                let value = args.next().ok_or("--threads requires a count argument")?;
                threads = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid thread count `{value}`"))?;
                if threads == 0 {
                    return Err("--threads requires a count of at least 1".to_string());
                }
            }
            "--profile-trace" => {
                profile_trace = Some(
                    args.next()
                        .ok_or("--profile-trace requires a file argument")?,
                );
            }
            "--store" => {
                store = Some(args.next().ok_or("--store requires a directory argument")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: neummu-experiments [--quick] [--out <dir>] [--only <exp>[,<exp>...]] [--threads <n>] [--profile-trace <file>] [--store <dir>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        scale,
        out_dir,
        only,
        threads,
        profile_trace,
        store,
    })
}

fn wants(options: &Options, id: &str) -> bool {
    options.only.as_ref().is_none_or(|set| set.contains(id))
}

/// Runs one experiment family restore-or-run-and-commit. With no store this
/// is just `run`. With a store, a valid journal slot for `(scale, id)`
/// restores the family's artifacts byte-for-byte and skips the simulation;
/// otherwise the family runs and its artifacts are journaled afterwards —
/// the slot commit is the family's durability point, so a crash anywhere
/// before it simply reruns the (deterministic, idempotent) family.
fn family(
    store: Option<&Store>,
    scale_label: &str,
    id: &str,
    artifacts: &mut ExperimentArtifacts,
    run: impl FnOnce(&mut ExperimentArtifacts) -> Result<(), Box<dyn std::error::Error>>,
) -> Result<(), Box<dyn std::error::Error>> {
    let Some(store) = store else {
        return run(artifacts);
    };
    let key = family_key(scale_label, id);
    if restore_family(store, &key, artifacts)? {
        println!("[store] `{id}` restored from journal; simulation skipped\n");
        return Ok(());
    }
    let first = artifacts.written().len();
    run(artifacts)?;
    commit_family(store, &key, artifacts, first);
    Ok(())
}

fn run_all(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let mut artifacts = ExperimentArtifacts::new(&options.out_dir)?;
    let scale = options.scale;
    let store = match &options.store {
        Some(dir) => Some(Arc::new(Store::open(dir)?)),
        None => None,
    };
    let mut runner = ExperimentRunner::new(options.threads);
    if let Some(store) = &store {
        runner = runner.with_store(Arc::clone(store));
    }
    let store = store.as_deref();
    let started = Instant::now();

    let emit = |name: &str,
                table: neummu_sim::ResultTable,
                artifacts: &mut ExperimentArtifacts|
     -> Result<(), Box<dyn std::error::Error>> {
        println!("{}", table.to_markdown());
        artifacts.table(name, &table)?;
        Ok(())
    };

    if wants(options, "table1") {
        family(
            store,
            scale.label(),
            "table1",
            &mut artifacts,
            |artifacts| emit("table1_configuration", table1::run_on(&runner), artifacts),
        )?;
    }

    if wants(options, "fig06") {
        family(store, scale.label(), "fig06", &mut artifacts, |artifacts| {
            let result = characterization::fig06_page_divergence_on(&runner, scale)?;
            artifacts.json("fig06_page_divergence", &result)?;
            emit("fig06_page_divergence", result.to_table(), artifacts)
        })?;
    }

    if wants(options, "fig07") {
        family(store, scale.label(), "fig07", &mut artifacts, |artifacts| {
            for (workload, name) in [
                (WorkloadId::Cnn1, "fig07a_cnn1"),
                (WorkloadId::Rnn1, "fig07b_rnn1"),
            ] {
                let result = characterization::fig07_translation_bursts_on(&runner, workload, 1)?;
                artifacts.json(name, &result)?;
                println!(
                    "Figure 7 ({}): peak {} translations per {}-cycle window, bursty fraction {:.2}\n",
                    workload.label(),
                    result.peak(),
                    result.window_cycles,
                    result.bursty_fraction()
                );
                artifacts.table(name, &result.to_table())?;
            }
            Ok(())
        })?;
    }

    if wants(options, "fig08") {
        family(store, scale.label(), "fig08", &mut artifacts, |artifacts| {
            let result = performance::fig08_baseline_iommu_on(&runner, scale)?;
            artifacts.json("fig08_baseline_iommu", &result)?;
            emit(
                "fig08_baseline_iommu",
                result.to_table("Figure 8: baseline IOMMU normalized performance (4KB pages)"),
                artifacts,
            )
        })?;
    }

    if wants(options, "fig10") {
        family(store, scale.label(), "fig10", &mut artifacts, |artifacts| {
            let result = performance::fig10_prmb_sweep_on(&runner, scale)?;
            artifacts.json("fig10_prmb_sweep", &result)?;
            emit(
                "fig10_prmb_sweep",
                result.to_table("Figure 10: sensitivity to PRMB mergeable slots (8 PTWs)"),
                artifacts,
            )
        })?;
    }

    if wants(options, "fig11") {
        family(store, scale.label(), "fig11", &mut artifacts, |artifacts| {
            let result = performance::fig11_ptw_sweep_on(&runner, scale)?;
            artifacts.json("fig11_ptw_sweep", &result)?;
            emit(
                "fig11_ptw_sweep",
                result.to_table("Figure 11: sensitivity to the number of PTWs with PRMB(32)"),
                artifacts,
            )
        })?;
    }

    if wants(options, "fig12a") {
        family(
            store,
            scale.label(),
            "fig12a",
            &mut artifacts,
            |artifacts| {
                let result = performance::fig12a_ptw_no_prmb_on(&runner, scale)?;
                artifacts.json("fig12a_ptw_no_prmb", &result)?;
                emit(
                    "fig12a_ptw_no_prmb",
                    result
                        .to_table("Figure 12a: sensitivity to the number of PTWs without the PRMB"),
                    artifacts,
                )
            },
        )?;
    }

    if wants(options, "fig12b") {
        family(
            store,
            scale.label(),
            "fig12b",
            &mut artifacts,
            |artifacts| {
                let result = performance::fig12b_energy_perf_on(&runner, scale)?;
                artifacts.json("fig12b_energy_perf", &result)?;
                emit("fig12b_energy_perf", result.to_table(), artifacts)
            },
        )?;
    }

    if wants(options, "fig13") {
        family(store, scale.label(), "fig13", &mut artifacts, |artifacts| {
            let result = performance::fig13_tpreg_hit_rate_on(&runner, scale)?;
            artifacts.json("fig13_tpreg_hit_rate", &result)?;
            emit("fig13_tpreg_hit_rate", result.to_table(), artifacts)
        })?;
    }

    if wants(options, "fig14") {
        family(store, scale.label(), "fig14", &mut artifacts, |artifacts| {
            let result = characterization::fig14_va_trace_on(&runner, WorkloadId::Cnn1, 1)?;
            artifacts.json("fig14_va_trace", &result)?;
            emit("fig14_va_trace", result.to_table(), artifacts)
        })?;
    }

    if wants(options, "mmu_cache") {
        family(
            store,
            scale.label(),
            "mmu_cache",
            &mut artifacts,
            |artifacts| {
                let result = mmu_cache_study::run_on(&runner, scale)?;
                artifacts.json("mmu_cache_uptc_vs_tpc", &result)?;
                println!(
                    "TPC eliminates {:.1}% of the page-table reads left by the UPTC\n",
                    result.tpc_walk_reduction_vs_uptc() * 100.0
                );
                emit("mmu_cache_uptc_vs_tpc", result.to_table(), artifacts)
            },
        )?;
    }

    if wants(options, "summary") {
        family(
            store,
            scale.label(),
            "summary",
            &mut artifacts,
            |artifacts| {
                let result = performance::summary_neummu_on(&runner, scale)?;
                artifacts.json("summary_neummu", &result)?;
                emit("summary_neummu", result.to_table(), artifacts)
            },
        )?;
    }

    if wants(options, "largepage") {
        family(
            store,
            scale.label(),
            "largepage",
            &mut artifacts,
            |artifacts| {
                let result = performance::largepage_dense_on(&runner, scale)?;
                artifacts.json("largepage_dense", &result)?;
                emit(
                    "largepage_dense",
                    result.to_table("Section VI-A: dense workloads with 2MB large pages"),
                    artifacts,
                )
            },
        )?;
    }

    if wants(options, "spatial") {
        family(
            store,
            scale.label(),
            "spatial",
            &mut artifacts,
            |artifacts| {
                let result = performance::spatial_npu_on(&runner, scale)?;
                artifacts.json("spatial_npu", &result)?;
                emit(
                    "spatial_npu",
                    result.to_table("Section VI-B: spatial-array NPU"),
                    artifacts,
                )
            },
        )?;
    }

    if wants(options, "sensitivity") {
        family(
            store,
            scale.label(),
            "sensitivity",
            &mut artifacts,
            |artifacts| {
                let result = performance::sensitivity_on(&runner, scale)?;
                artifacts.json("sensitivity", &result)?;
                emit("sensitivity", result.to_table(), artifacts)
            },
        )?;
    }

    if wants(options, "fig15") {
        family(store, scale.label(), "fig15", &mut artifacts, |artifacts| {
            let result = recommender::fig15_numa_breakdown_on(&runner, scale)?;
            artifacts.json("fig15_numa_breakdown", &result)?;
            println!(
                "Figure 15: average latency reduction vs the MMU-less baseline: NUMA(slow) {:.0}%, NUMA(fast) {:.0}%\n",
                result.average_latency_reduction("NUMA(slow)") * 100.0,
                result.average_latency_reduction("NUMA(fast)") * 100.0
            );
            emit("fig15_numa_breakdown", result.to_table(), artifacts)
        })?;
    }

    if wants(options, "fig16") {
        family(store, scale.label(), "fig16", &mut artifacts, |artifacts| {
            let result = recommender::fig16_demand_paging_on(&runner, scale)?;
            artifacts.json("fig16_demand_paging", &result)?;
            emit("fig16_demand_paging", result.to_table(), artifacts)
        })?;
    }

    if wants(options, "multitenant") {
        family(
            store,
            scale.label(),
            "multitenant",
            &mut artifacts,
            |artifacts| {
                let result = multi_tenant::tenant_sweep_on(&runner, scale)?;
                artifacts.json("multitenant_sweep", &result)?;
                emit("multitenant_sweep", result.to_table(), artifacts)?;
                // The per-tenant counter table: the raw cross-tenant contention
                // events (CounterPoint-style validation of the slowdown story).
                emit(
                    "multitenant_tenant_counters",
                    result.counters_table(),
                    artifacts,
                )
            },
        )?;
    }

    if wants(options, "serving") {
        family(
            store,
            scale.label(),
            "serving",
            &mut artifacts,
            |artifacts| {
                let result = serving::serving_sweep_on(&runner, scale)?;
                artifacts.json("serving_sweep", &result)?;
                emit("serving_slo", result.slo_table(), artifacts)?;
                emit("serving_goodput", result.goodput_table(), artifacts)?;
                emit(
                    "serving_tenant_counters",
                    result.counters_table(),
                    artifacts,
                )
            },
        )?;
    }

    if wants(options, "resilience") {
        family(
            store,
            scale.label(),
            "resilience",
            &mut artifacts,
            |artifacts| {
                let result = resilience::resilience_sweep_on(&runner, scale)?;
                artifacts.json("resilience_sweep", &result)?;
                emit(
                    "resilience_availability",
                    result.availability_table(),
                    artifacts,
                )?;
                emit("resilience_recovery", result.recovery_table(), artifacts)?;
                emit("resilience_overhead", result.overhead_table(), artifacts)
            },
        )?;
    }

    // The self-profile is wall-clock data and therefore nondeterministic; it
    // goes to stdout only, never into the artifact directory, so artifact
    // trees stay byte-identical across thread counts.
    println!("{}", runner.profile().to_table().to_markdown());
    // Hot-path telemetry: where the allocation-free translation path (PR 3)
    // actually lands at run time. Counters are process-global, so this
    // snapshot covers the whole run.
    for (name, value) in neummu_mmu::counters::snapshot().named() {
        runner.profile().add_counter(name, value);
    }
    // Store traffic, surfaced both as `count/store_*` trace events and on
    // stdout. Each memoized key consults the store exactly once per process,
    // so these are deterministic for a given store state and flag set.
    if let Some(store) = store {
        let counters = store.counters();
        for (name, value) in [
            ("store_hits", counters.hits),
            ("store_misses", counters.misses),
            ("store_recovered", counters.recovered),
            ("store_commits", counters.commits),
        ] {
            runner.profile().add_counter(name, value);
        }
        println!(
            "store: {} slot hits, {} misses, {} recovered (damaged slots recomputed), {} commits",
            counters.hits, counters.misses, counters.recovered, counters.commits
        );
    }
    println!("{}", runner.profile().counters_table().to_markdown());
    let cache = runner.oracle_cache();
    println!(
        "oracle cache: {} baseline simulations, {} reuses across {} keys",
        cache.simulations(),
        cache.hits(),
        cache.len()
    );
    println!(
        "wrote {} artifacts to `{}` in {:.1}s ({} scale, {} threads, {:.1}s simulation busy-time)",
        artifacts.written().len(),
        options.out_dir,
        started.elapsed().as_secs_f64(),
        scale.label(),
        runner.threads(),
        runner.profile().total_busy().as_secs_f64()
    );
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    // Install the process-wide trace sink before any engine or profile is
    // constructed, so every emission site sees it from the start.
    if let Some(path) = &options.profile_trace {
        let sink = match neummu_trace::TraceSink::to_file(path) {
            Ok(sink) => sink,
            Err(error) => {
                eprintln!("error: cannot create trace file `{path}`: {error}");
                return ExitCode::FAILURE;
            }
        };
        if neummu_trace::install(sink).is_none() {
            eprintln!("error: a trace sink is already installed in this process");
            return ExitCode::FAILURE;
        }
    }
    let outcome = run_all(&options);
    if let (Some(path), Some(sink)) = (&options.profile_trace, neummu_trace::global()) {
        match sink.finish() {
            Ok(events) => println!("wrote {events} trace events to `{path}`"),
            Err(error) => {
                eprintln!("error: failed to finalize trace `{path}`: {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
