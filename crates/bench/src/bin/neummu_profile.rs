//! Decodes a binary event trace written by `neummu-experiments
//! --profile-trace` and renders where the run spent its time — the
//! `analyzeme` half of the tracing subsystem.
//!
//! Usage:
//!
//! ```text
//! neummu-profile <trace-file> [--top <n>] [--dump]
//! ```
//!
//! Prints four Markdown tables:
//!
//! 1. **Wall-clock phases** — the runner's `wall/job/<phase>` spans: jobs,
//!    total/mean/p99/max per-job wall time. Matches the self-profile table
//!    the run printed, plus percentiles the aggregate table cannot show.
//! 2. **Hottest event kinds** — simulated-cycle kinds sorted by total span,
//!    clipped to `--top <n>` (default 20). Engine kinds are binned, so
//!    `Weight` (the payload sum) is the number of underlying requests.
//! 3. **Per-tenant activity** — cycle-span events grouped by ASID; in
//!    multi-tenant runs this splits engine time by tenant.
//! 4. **Device faults** — rendered only when the trace contains `fault/*`
//!    events (a fault-injected run): per `fault/<kind>/<outcome>` event
//!    counts, total/mean extra cycles (the payload is each fault's recovery
//!    latency beyond the fault-free walk) and the faulted walks' span tail.
//!    Fault-free traces never intern the `fault/*` labels, so this section
//!    is absent and their reports are byte-identical to pre-fault builds.
//! 5. **Counters** — `count/<name>` payload totals.
//!
//! `--dump` instead prints the trace's canonical content lines (sorted,
//! `wall/` kinds excluded) — the exact byte stream CI diffs across thread
//! counts to check trace determinism.

use std::process::ExitCode;

use neummu_sim::ResultTable;
use neummu_trace::{kind_breakdown, tenant_breakdown, EventClass, Trace};

struct Options {
    trace_path: String,
    top: usize,
    dump: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut trace_path = None;
    let mut top = 20usize;
    let mut dump = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let value = args.next().ok_or("--top requires a count argument")?;
                top = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --top count `{value}`"))?;
            }
            "--dump" => dump = true,
            "--help" | "-h" => {
                println!("usage: neummu-profile <trace-file> [--top <n>] [--dump]");
                std::process::exit(0);
            }
            other if trace_path.is_none() && !other.starts_with('-') => {
                trace_path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        trace_path: trace_path.ok_or("a trace file argument is required")?,
        top,
        dump,
    })
}

fn ms(nanos: u64) -> String {
    format!("{:.2}", nanos as f64 / 1e6)
}

fn report(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    // A truncated or corrupt trace (a killed `--profile-trace` run, a partial
    // copy) must die with one clear line naming the file, never a panic or a
    // silent partial report.
    let trace = Trace::load(&options.trace_path)
        .map_err(|error| format!("cannot read trace `{}`: {error}", options.trace_path))?;

    if options.dump {
        // Canonical content: what must match across thread counts.
        print!("{}", trace.canonical_lines());
        return Ok(());
    }

    println!(
        "trace `{}`: {} events across {} kinds\n",
        options.trace_path,
        trace.events().len(),
        trace.labels().len()
    );
    let kinds = kind_breakdown(&trace);

    let mut phases = ResultTable::new(
        "Wall-clock phases (runner jobs)",
        &[
            "Phase",
            "Jobs",
            "Total (ms)",
            "Mean (ms)",
            "P99 (ms)",
            "Max (ms)",
        ],
    );
    for stat in kinds.iter().filter(|s| s.class == EventClass::Wall) {
        let phase = stat.label.strip_prefix("wall/job/").unwrap_or(&stat.label);
        phases.push_row(&[
            phase.to_string(),
            stat.events.to_string(),
            ms(stat.span_total),
            ms(stat.span_mean()),
            ms(stat.span_p99),
            ms(stat.span_max),
        ]);
    }
    println!("{}", phases.to_markdown());

    let mut hottest = ResultTable::new(
        "Hottest event kinds (simulated cycles)",
        &[
            "Kind",
            "Events",
            "Weight",
            "Total cycles",
            "Mean",
            "P99",
            "Max",
        ],
    );
    let cycle_kinds: Vec<_> = kinds
        .iter()
        .filter(|s| s.class == EventClass::Cycle)
        .collect();
    let shown = cycle_kinds.len().min(options.top);
    for stat in &cycle_kinds[..shown] {
        hottest.push_row(&[
            stat.label.clone(),
            stat.events.to_string(),
            stat.payload_total.to_string(),
            stat.span_total.to_string(),
            stat.span_mean().to_string(),
            stat.span_p99.to_string(),
            stat.span_max.to_string(),
        ]);
    }
    println!("{}", hottest.to_markdown());
    if shown < cycle_kinds.len() {
        println!(
            "({} more cycle kinds below the --top {} cut)\n",
            cycle_kinds.len() - shown,
            options.top
        );
    }

    let mut tenants = ResultTable::new(
        "Per-tenant activity (cycle-span events by ASID)",
        &["ASID", "Events", "Weight", "Total cycles"],
    );
    for tenant in tenant_breakdown(&trace) {
        tenants.push_row(&[
            tenant.asid.to_string(),
            tenant.events.to_string(),
            tenant.payload_total.to_string(),
            tenant.span_total.to_string(),
        ]);
    }
    println!("{}", tenants.to_markdown());

    let fault_kinds: Vec<_> = kinds
        .iter()
        .filter(|s| s.label.starts_with("fault/"))
        .collect();
    if !fault_kinds.is_empty() {
        let mut faults = ResultTable::new(
            "Device faults (injected walks by kind/outcome)",
            &[
                "Kind",
                "Events",
                "Extra cycles",
                "Mean extra",
                "Walk span P99",
                "Walk span max",
            ],
        );
        for stat in &fault_kinds {
            let mean_extra = if stat.events == 0 {
                0.0
            } else {
                stat.payload_total as f64 / stat.events as f64
            };
            faults.push_row(&[
                stat.label.clone(),
                stat.events.to_string(),
                stat.payload_total.to_string(),
                format!("{mean_extra:.1}"),
                stat.span_p99.to_string(),
                stat.span_max.to_string(),
            ]);
        }
        println!("{}", faults.to_markdown());
    }

    let mut counters = ResultTable::new("Counters", &["Counter", "Value"]);
    for stat in kinds.iter().filter(|s| s.class == EventClass::Counter) {
        let name = stat.label.strip_prefix("count/").unwrap_or(&stat.label);
        counters.push_row(&[name.to_string(), stat.payload_total.to_string()]);
    }
    println!("{}", counters.to_markdown());
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: neummu-profile <trace-file> [--top <n>] [--dump]");
            return ExitCode::FAILURE;
        }
    };
    match report(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
