//! Journaling finished experiment families into a slot store.
//!
//! A resumed sweep should not rerun families it already finished. After an
//! experiment family's artifacts are all on disk, the runner commits one
//! **manifest slot** holding every artifact file the family produced — names
//! and bytes. On resume, a valid manifest short-circuits the family: the
//! artifacts are restored byte-for-byte from the slot (atomically, via
//! [`ExperimentArtifacts::file`]) and the simulation is skipped. Because the
//! manifest carries the bytes themselves, restoration is correct even if the
//! output directory was damaged or deleted between runs — the `diff -r`
//! acceptance check cannot tell a restored tree from a recomputed one.
//!
//! The manifest is committed *after* the artifacts (the slot rename is the
//! commit point), so a crash between artifact writes and the manifest commit
//! simply reruns the family; rerunning overwrites the artifacts with
//! identical bytes — idempotent by determinism.

use std::io;

use neummu_store::{ByteReader, ByteWriter, CodecError, Store};

use crate::artifacts::ExperimentArtifacts;

/// Key namespace for family manifests. Bump on any manifest layout change.
const FAMILY_NAMESPACE: &str = "family/v1";

/// The store key of one experiment family at one scale.
#[must_use]
pub fn family_key(scale_label: &str, family_id: &str) -> String {
    format!("{FAMILY_NAMESPACE}/{scale_label}/{family_id}")
}

/// Encodes a family manifest: every artifact the family wrote, as
/// `(file name, bytes)` pairs in write order.
#[must_use]
pub fn encode_manifest(files: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut writer = ByteWriter::new();
    writer.u64(files.len() as u64);
    for (name, bytes) in files {
        writer.str(name);
        writer.bytes(bytes);
    }
    writer.into_bytes()
}

/// Decodes a manifest payload produced by [`encode_manifest`].
///
/// # Errors
///
/// [`CodecError`] on truncation, an impossible length prefix, or trailing
/// bytes.
pub fn decode_manifest(payload: &[u8]) -> Result<Vec<(String, Vec<u8>)>, CodecError> {
    let mut reader = ByteReader::new(payload);
    let len = reader.u64()?;
    if len > reader.remaining() as u64 {
        return Err(CodecError::Invalid("manifest length exceeds payload"));
    }
    let mut files = Vec::with_capacity(len as usize);
    for _ in 0..len {
        let name = reader.str()?;
        let bytes = reader.bytes()?.to_vec();
        files.push((name, bytes));
    }
    reader.finish()?;
    Ok(files)
}

/// Restores a finished family from the store, if journaled: writes every
/// manifest artifact (atomically) into `artifacts` and returns `true`. A
/// missing, damaged or undecodable manifest returns `false` — the caller
/// reruns the family.
///
/// # Errors
///
/// Only artifact-write I/O errors propagate (the output directory is
/// unusable); store damage is a silent "not journaled".
pub fn restore_family(
    store: &Store,
    key: &str,
    artifacts: &mut ExperimentArtifacts,
) -> io::Result<bool> {
    let Some(manifest) = store.get(key).and_then(|p| decode_manifest(&p).ok()) else {
        return Ok(false);
    };
    for (name, bytes) in &manifest {
        // A manifest minted by `commit_family` can only hold flat names, but
        // the slot is external input: a name that would escape the artifact
        // directory marks the whole manifest untrusted.
        if artifacts.file(name, bytes).is_err() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Journals a finished family: reads back every artifact written since
/// `first_artifact` and commits the manifest slot. Failures are swallowed —
/// journaling is an optimization; the family's artifacts are already safely
/// on disk.
pub fn commit_family(
    store: &Store,
    key: &str,
    artifacts: &ExperimentArtifacts,
    first_artifact: usize,
) {
    let mut files = Vec::new();
    for path in &artifacts.written()[first_artifact..] {
        let (Some(name), Ok(bytes)) = (
            path.file_name().map(|n| n.to_string_lossy().into_owned()),
            std::fs::read(path),
        ) else {
            return;
        };
        files.push((name, bytes));
    }
    let _ = store.put(key, &encode_manifest(&files));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("neummu_family_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn manifest_roundtrips() {
        let files = vec![
            ("fig08.md".to_string(), b"|a|b|".to_vec()),
            ("fig08.csv".to_string(), b"a,b\n1,2\n".to_vec()),
            ("fig08_raw.json".to_string(), vec![0, 159, 146, 150]),
        ];
        let decoded = decode_manifest(&encode_manifest(&files)).unwrap();
        assert_eq!(decoded, files);
        assert!(decode_manifest(&encode_manifest(&files)[..5]).is_err());
    }

    #[test]
    fn commit_then_restore_reproduces_artifacts_byte_for_byte() {
        let out_a = temp_dir("commit_a");
        let out_b = temp_dir("commit_b");
        let store_dir = temp_dir("commit_store");
        let store = Store::open(&store_dir).unwrap();

        let mut run = ExperimentArtifacts::new(&out_a).unwrap();
        run.file("fig.md", b"markdown").unwrap();
        run.file("fig.csv", b"c,s,v").unwrap();
        commit_family(&store, &family_key("quick", "fig"), &run, 0);

        // Restore into a different (empty) directory: same bytes.
        let mut resumed = ExperimentArtifacts::new(&out_b).unwrap();
        assert!(restore_family(&store, &family_key("quick", "fig"), &mut resumed).unwrap());
        assert_eq!(fs::read(out_b.join("fig.md")).unwrap(), b"markdown");
        assert_eq!(fs::read(out_b.join("fig.csv")).unwrap(), b"c,s,v");
        // Unknown family and different scale stay unjournaled.
        assert!(!restore_family(&store, &family_key("full", "fig"), &mut resumed).unwrap());

        for dir in [&out_a, &out_b, &store_dir] {
            fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn corrupt_manifest_falls_back_to_rerun() {
        let out = temp_dir("corrupt_out");
        let store_dir = temp_dir("corrupt_store");
        let store = Store::open(&store_dir).unwrap();
        let key = family_key("quick", "fig");

        let mut run = ExperimentArtifacts::new(&out).unwrap();
        run.file("fig.md", b"markdown").unwrap();
        commit_family(&store, &key, &run, 0);
        store.corrupt_slot(&key, 300).unwrap();

        let mut resumed = ExperimentArtifacts::new(&out).unwrap();
        assert!(!restore_family(&store, &key, &mut resumed).unwrap());

        fs::remove_dir_all(&out).ok();
        fs::remove_dir_all(&store_dir).ok();
    }

    #[test]
    fn hostile_manifest_names_do_not_escape() {
        let out = temp_dir("hostile_out");
        let store_dir = temp_dir("hostile_store");
        let store = Store::open(&store_dir).unwrap();
        let key = family_key("quick", "evil");
        let manifest = encode_manifest(&[("../escape.md".to_string(), b"x".to_vec())]);
        store.put(&key, &manifest).unwrap();

        let mut resumed = ExperimentArtifacts::new(&out).unwrap();
        assert!(!restore_family(&store, &key, &mut resumed).unwrap());
        assert!(!out.parent().unwrap().join("escape.md").exists());

        fs::remove_dir_all(&out).ok();
        fs::remove_dir_all(&store_dir).ok();
    }
}
