//! Benchmark harness for the NeuMMU reproduction.
//!
//! This crate contains:
//!
//! * the `neummu-experiments` binary, which regenerates every table and figure
//!   of the paper's evaluation and writes Markdown/CSV/JSON artifacts, and
//! * the Criterion benches (`dense_figures`, `embedding_figures`,
//!   `mmu_microbench`), one benchmark per table/figure plus microbenchmarks of
//!   the core MMU structures.
//!
//! The [`artifacts`] module holds the small amount of shared plumbing for
//! writing result tables to disk (atomically — see the crash-safety notes
//! there), and [`family`] journals finished experiment families into a
//! [`neummu_store::Store`] so interrupted sweeps resume instead of rerunning.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifacts;
pub mod family;

pub use artifacts::{write_json, write_table, ExperimentArtifacts};
pub use family::{commit_family, family_key, restore_family};
