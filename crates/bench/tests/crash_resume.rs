//! End-to-end crash/resume determinism: the real `neummu_experiments`
//! binary, SIGKILLed mid-run with a store attached, then rerun — the resumed
//! artifact tree must be byte-identical to an uninterrupted run's.
//!
//! This is the out-of-process half of the fault-injection story (the
//! in-process half lives in `neummu_store`'s commit-protocol tests): no
//! injection hooks, a real kill at an arbitrary instant, real recovery.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("neummu_crash_resume_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn experiments(args: &[&str]) -> Command {
    let mut command = Command::new(env!("CARGO_BIN_EXE_neummu_experiments"));
    command.args(args).stdout(std::process::Stdio::null());
    command
}

fn run_to_completion(args: &[&str]) {
    let status = experiments(args)
        .status()
        .expect("spawn neummu_experiments");
    assert!(status.success(), "neummu_experiments {args:?} failed");
}

/// Reads every file of a flat artifact directory into `name → bytes`.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("artifact dir exists") {
        let entry = entry.unwrap();
        files.insert(
            entry.file_name().to_string_lossy().into_owned(),
            std::fs::read(entry.path()).unwrap(),
        );
    }
    files
}

/// `diff -r`-equivalent: identical file sets, identical bytes.
fn assert_dirs_identical(reference: &Path, candidate: &Path, context: &str) {
    let reference_files = dir_contents(reference);
    let candidate_files = dir_contents(candidate);
    assert_eq!(
        reference_files.keys().collect::<Vec<_>>(),
        candidate_files.keys().collect::<Vec<_>>(),
        "{context}: artifact file sets differ"
    );
    for (name, bytes) in &reference_files {
        assert_eq!(
            bytes, &candidate_files[name],
            "{context}: artifact `{name}` differs"
        );
    }
}

const FAMILIES: &str = "table1,fig08,fig12b,multitenant,serving,resilience";

fn baseline(dir: &Path) -> PathBuf {
    let out = dir.join("baseline");
    run_to_completion(&[
        "--quick",
        "--only",
        FAMILIES,
        "--threads",
        "1",
        "--out",
        out.to_str().unwrap(),
    ]);
    out
}

/// An uninterrupted `--store` run produces exactly the storeless artifact
/// tree (cold store), and so does a second run over the now-warm store
/// (everything restored from slots, nothing simulated).
#[test]
fn store_runs_match_the_storeless_baseline_cold_and_warm() {
    let dir = temp_dir("uninterrupted");
    let reference = baseline(&dir);
    let store = dir.join("store");
    for (label, out) in [
        ("cold", dir.join("out_cold")),
        ("warm", dir.join("out_warm")),
    ] {
        run_to_completion(&[
            "--quick",
            "--only",
            FAMILIES,
            "--threads",
            "1",
            "--out",
            out.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
        ]);
        assert_dirs_identical(&reference, &out, label);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGKILL mid-run, then resume with the same flags: the resumed tree is
/// byte-identical to the uninterrupted baseline, at `--threads 1` and
/// `--threads 4`. Several kill delays are tried so the kill lands in
/// different phases of the run (including possibly after completion — the
/// contract must hold wherever it lands).
#[test]
fn killed_runs_resume_to_byte_identical_artifacts() {
    let dir = temp_dir("killed");
    let reference = baseline(&dir);
    for threads in ["1", "4"] {
        for (case, kill_after_ms) in [(0u32, 40u64), (1, 120), (2, 250)] {
            let out = dir.join(format!("out_t{threads}_k{case}"));
            let store = dir.join(format!("store_t{threads}_k{case}"));
            let args = [
                "--quick",
                "--only",
                FAMILIES,
                "--threads",
                threads,
                "--out",
                out.to_str().unwrap(),
                "--store",
                store.to_str().unwrap(),
            ];
            let mut child = experiments(&args)
                .spawn()
                .expect("spawn neummu_experiments");
            std::thread::sleep(Duration::from_millis(kill_after_ms));
            // SIGKILL: no destructors, no flush — whatever is mid-write
            // stays torn on disk exactly as a power loss would leave it.
            child.kill().ok();
            child.wait().expect("reap killed child");

            run_to_completion(&args);
            assert_dirs_identical(
                &reference,
                &out,
                &format!("threads={threads} kill_after={kill_after_ms}ms"),
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
