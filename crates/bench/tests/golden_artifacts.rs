//! Golden-artifact regression tests.
//!
//! A small-scale (smoke) subset of the experiment artifacts is regenerated
//! from scratch and compared **byte-for-byte** against JSON/CSV/Markdown
//! files checked in under `tests/golden/`. This pins down two things at once:
//!
//! * the simulator's timing model — any change to cycle accounting, tiling,
//!   walker scheduling or energy accounting shows up as a diff in the golden
//!   numbers and must be a conscious decision (regenerate the goldens), and
//! * the determinism of the parallel runner — the regeneration runs on a
//!   multi-threaded runner, so any scheduling-dependent nondeterminism the
//!   runner could introduce fails the byte comparison immediately.
//!
//! To regenerate after an intentional model change:
//!
//! ```text
//! cargo run --release --bin neummu_experiments -- --quick --out /tmp/golden \
//!     --only fig08,fig12b,fig13,mmu_cache,table1,serving
//! cp /tmp/golden/{fig08_baseline_iommu,fig12b_energy_perf,fig13_tpreg_hit_rate,mmu_cache_uptc_vs_tpc,serving_sweep}.json \
//!    /tmp/golden/table1_configuration.{csv,md} /tmp/golden/serving_goodput.md \
//!    /tmp/golden/serving_slo.csv crates/bench/tests/golden/
//! ```

use serde::Serialize;

use neummu_sim::experiments::{mmu_cache_study, performance, serving, table1, ExperimentScale};
use neummu_sim::ExperimentRunner;

const SMOKE: ExperimentScale = ExperimentScale::Smoke;

/// Serializes exactly like `ExperimentArtifacts::json` writes artifacts.
fn to_artifact_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("artifact serialization is infallible")
}

fn assert_matches_golden(name: &str, golden: &str, regenerated: &str) {
    assert_eq!(
        golden, regenerated,
        "regenerated `{name}` diverged from tests/golden/{name} — either the \
         timing model changed (regenerate the goldens, see the module docs) \
         or the parallel runner produced nondeterministic output"
    );
}

#[test]
fn fig08_json_matches_golden() {
    let runner = ExperimentRunner::new(4);
    let result = performance::fig08_baseline_iommu_on(&runner, SMOKE).unwrap();
    assert_matches_golden(
        "fig08_baseline_iommu.json",
        include_str!("golden/fig08_baseline_iommu.json"),
        &to_artifact_json(&result),
    );
}

#[test]
fn fig12b_json_matches_golden() {
    let runner = ExperimentRunner::new(4);
    let result = performance::fig12b_energy_perf_on(&runner, SMOKE).unwrap();
    assert_matches_golden(
        "fig12b_energy_perf.json",
        include_str!("golden/fig12b_energy_perf.json"),
        &to_artifact_json(&result),
    );
}

#[test]
fn fig13_json_matches_golden() {
    let runner = ExperimentRunner::new(4);
    let result = performance::fig13_tpreg_hit_rate_on(&runner, SMOKE).unwrap();
    assert_matches_golden(
        "fig13_tpreg_hit_rate.json",
        include_str!("golden/fig13_tpreg_hit_rate.json"),
        &to_artifact_json(&result),
    );
}

#[test]
fn mmu_cache_json_matches_golden() {
    let runner = ExperimentRunner::new(4);
    let result = mmu_cache_study::run_on(&runner, SMOKE).unwrap();
    assert_matches_golden(
        "mmu_cache_uptc_vs_tpc.json",
        include_str!("golden/mmu_cache_uptc_vs_tpc.json"),
        &to_artifact_json(&result),
    );
}

#[test]
fn serving_sweep_artifacts_match_golden() {
    // Pins the whole open-loop serving leg at once: arrival generation,
    // admission queueing, all four scheduling policies, the shared-engine
    // timing, the exact SLO percentiles and the rendered tables.
    let runner = ExperimentRunner::new(4);
    let result = serving::serving_sweep_on(&runner, SMOKE).unwrap();
    assert_matches_golden(
        "serving_sweep.json",
        include_str!("golden/serving_sweep.json"),
        &to_artifact_json(&result),
    );
    assert_matches_golden(
        "serving_goodput.md",
        include_str!("golden/serving_goodput.md"),
        &result.goodput_table().to_markdown(),
    );
    assert_matches_golden(
        "serving_slo.csv",
        include_str!("golden/serving_slo.csv"),
        &result.slo_table().to_csv(),
    );
}

#[test]
fn table1_csv_and_markdown_match_golden() {
    let table = table1::run_on(&ExperimentRunner::serial());
    assert_matches_golden(
        "table1_configuration.csv",
        include_str!("golden/table1_configuration.csv"),
        &table.to_csv(),
    );
    assert_matches_golden(
        "table1_configuration.md",
        include_str!("golden/table1_configuration.md"),
        &table.to_markdown(),
    );
}

#[test]
fn serial_regeneration_matches_golden_too() {
    // The goldens were produced by a serial run; a fresh serial runner must
    // reproduce them as well (guards the serial path independently of the
    // parallel path, so a divergence pinpoints which schedule drifted).
    let runner = ExperimentRunner::serial();
    let result = performance::fig08_baseline_iommu_on(&runner, SMOKE).unwrap();
    assert_matches_golden(
        "fig08_baseline_iommu.json",
        include_str!("golden/fig08_baseline_iommu.json"),
        &to_artifact_json(&result),
    );
}
