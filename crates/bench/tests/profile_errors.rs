//! `neummu_profile` failure-path regression tests: a truncated, corrupted or
//! missing trace must exit nonzero with one clear `error:` line naming the
//! file — never a panic, never a partial report presented as complete.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "neummu_profile_errors_{tag}_{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `neummu_profile` on `trace_arg` and asserts the failure contract:
/// nonzero exit, empty stdout, exactly one stderr line of the form
/// `error: ...` that names the trace file, and no panic backtrace.
fn assert_clean_failure(trace_arg: &str) {
    let output = Command::new(env!("CARGO_BIN_EXE_neummu_profile"))
        .arg(trace_arg)
        .output()
        .expect("spawn neummu_profile");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !output.status.success(),
        "`{trace_arg}` should fail but exited 0"
    );
    assert!(
        output.stdout.is_empty(),
        "`{trace_arg}` printed a report despite failing"
    );
    assert_eq!(
        stderr.lines().count(),
        1,
        "expected one error line for `{trace_arg}`, got:\n{stderr}"
    );
    assert!(
        stderr.starts_with("error: ") && stderr.contains(trace_arg),
        "error line must name the file: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "decoder panicked on `{trace_arg}`: {stderr}"
    );
}

#[test]
fn truncated_traces_fail_with_one_clear_line() {
    let golden = include_bytes!("golden/smoke.trace");
    let dir = temp_dir("truncated");
    // Cut inside the header, at the header boundary, and mid-payload.
    for cut in [0, 1, 7, golden.len() / 2, golden.len() - 1] {
        let path = dir.join(format!("cut{cut}.trace"));
        std::fs::write(&path, &golden[..cut]).unwrap();
        assert_clean_failure(path.to_str().unwrap());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_header_fails_with_one_clear_line() {
    let mut bytes = include_bytes!("golden/smoke.trace").to_vec();
    for byte in bytes.iter_mut().take(8) {
        *byte = 0;
    }
    let dir = temp_dir("corrupt");
    let path = dir.join("zeroed.trace");
    std::fs::write(&path, &bytes).unwrap();
    assert_clean_failure(path.to_str().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_fails_with_one_clear_line() {
    let dir = temp_dir("missing");
    let path = dir.join("does-not-exist.trace");
    assert_clean_failure(path.to_str().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

/// The intact golden trace still reports cleanly — the failure paths above
/// are about damage, not about the analyzer rejecting valid input.
#[test]
fn intact_golden_trace_still_reports() {
    let dir = temp_dir("intact");
    let path = dir.join("smoke.trace");
    std::fs::write(&path, include_bytes!("golden/smoke.trace")).unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_neummu_profile"))
        .arg(path.to_str().unwrap())
        .output()
        .expect("spawn neummu_profile");
    assert!(output.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
