//! End-to-end tests of the tracing subsystem: the real `neummu_experiments`
//! and `neummu_profile` binaries, spawned as subprocesses.
//!
//! Two properties are pinned:
//!
//! * **Trace-content determinism** — the canonical content (`--dump`) of a
//!   trace recorded with `--threads 1` is byte-identical to one recorded
//!   with `--threads 4`. File order and kind-id numbering may differ (they
//!   depend on buffer-drain order); the decoded, sorted, `wall/`-free event
//!   multiset may not.
//! * **Analyzer golden output** — `neummu_profile` rendering of a checked-in
//!   smoke trace (`tests/golden/smoke.trace`, written from a fixed synthetic
//!   event set) matches checked-in golden text byte-for-byte, for both the
//!   breakdown tables and the `--dump` canonical lines. This pins the wire
//!   format, the decoder, and the table rendering at once.
//!
//! To regenerate the goldens after an intentional format or rendering
//! change:
//!
//! ```text
//! cargo test -p neummu_bench --test trace_pipeline -- --ignored regenerate
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

use neummu_trace::{Event, TraceSink};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neummu_trace_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_experiments(args: &[&str]) {
    let status = Command::new(env!("CARGO_BIN_EXE_neummu_experiments"))
        .args(args)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn neummu_experiments");
    assert!(status.success(), "neummu_experiments {args:?} failed");
}

fn profile_stdout(current_dir: &Path, args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_neummu_profile"))
        .current_dir(current_dir)
        .args(args)
        .output()
        .expect("spawn neummu_profile");
    assert!(
        output.status.success(),
        "neummu_profile {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("analyzer output is UTF-8")
}

/// A trace recorded on the serial reference schedule and one recorded on
/// four worker threads have identical canonical content, and that content
/// actually contains the engine, scheduler, and simulator emission points.
#[test]
fn trace_content_is_identical_across_thread_counts() {
    let dir = temp_dir("threads");
    let mut dumps = Vec::new();
    for threads in ["1", "4"] {
        let out = dir.join(format!("out{threads}"));
        let trace = dir.join(format!("t{threads}.trace"));
        run_experiments(&[
            "--quick",
            "--only",
            "fig08,multitenant",
            "--out",
            out.to_str().unwrap(),
            "--threads",
            threads,
            "--profile-trace",
            trace.to_str().unwrap(),
        ]);
        dumps.push(profile_stdout(&dir, &[trace.to_str().unwrap(), "--dump"]));
    }
    assert!(!dumps[0].is_empty(), "canonical dump is empty");
    assert_eq!(
        dumps[0], dumps[1],
        "canonical trace content differs between --threads 1 and --threads 4"
    );
    for kind in ["engine/page_walk", "tenant/turn", "sim/dense/layer"] {
        assert!(
            dumps[0].lines().any(|l| l.starts_with(kind)),
            "no `{kind}` events in the trace"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The fixed synthetic event set behind `tests/golden/smoke.trace`: every
/// label namespace, two tenants, payloads that differ from span lengths.
/// Byte-deterministic (the sink reads no clocks), so the checked-in trace
/// can be compared bit-for-bit.
fn write_smoke_trace(path: &Path) {
    let sink = TraceSink::to_file(path).unwrap();
    let walk = sink.kind("engine/page_walk");
    let hit = sink.kind("engine/tlb_hit");
    let turn = sink.kind("tenant/turn");
    let layer = sink.kind("sim/dense/layer");
    let wall = sink.kind("wall/job/fig08");
    let count = sink.kind("count/hot/probes");
    let events = [
        (walk, 1u16, 0u64, 40u64, 1u64),
        (walk, 1, 40, 120, 2),
        (walk, 2, 120, 200, 3),
        (hit, 1, 10, 12, 1),
        (turn, 1, 0, 100, 32),
        (turn, 2, 100, 230, 32),
        (layer, 0, 0, 500, 64),
        (wall, 0, 0, 1_500_000, 1),
        (wall, 0, 1_500_000, 2_500_000, 1),
        (count, 0, 0, 0, 7),
        (count, 0, 0, 0, 3),
    ];
    for (kind, asid, start, end, payload) in events {
        sink.emit(Event {
            kind,
            asid,
            start,
            end,
            payload,
        });
    }
    assert_eq!(sink.finish().unwrap(), 11);
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The checked-in smoke trace is exactly what `write_smoke_trace` produces —
/// i.e. the writer's byte output has not drifted from the checked-in file.
#[test]
fn checked_in_smoke_trace_is_reproducible() {
    let dir = temp_dir("repro");
    let path = dir.join("smoke.trace");
    write_smoke_trace(&path);
    let regenerated = std::fs::read(&path).unwrap();
    assert_eq!(
        regenerated,
        include_bytes!("golden/smoke.trace"),
        "trace writer no longer reproduces tests/golden/smoke.trace — if the \
         wire format changed intentionally, bump TRACE_VERSION and regenerate \
         the goldens (see the module docs)"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `neummu_profile` renders the checked-in smoke trace exactly as the
/// checked-in golden text says, for the breakdown tables (`--top 3`
/// exercises the clip note) and the canonical `--dump`.
#[test]
fn profile_output_matches_golden() {
    let dir = temp_dir("golden");
    std::fs::write(
        dir.join("smoke.trace"),
        include_bytes!("golden/smoke.trace"),
    )
    .unwrap();
    // Run from the temp dir with a relative path so the printed header line
    // is reproducible.
    let tables = profile_stdout(&dir, &["smoke.trace", "--top", "3"]);
    assert_eq!(tables, include_str!("golden/smoke_profile.md"));
    let dump = profile_stdout(&dir, &["smoke.trace", "--dump"]);
    assert_eq!(dump, include_str!("golden/smoke_profile.dump"));
    std::fs::remove_dir_all(&dir).ok();
}

/// A trace recorded from a fault-injected run renders the device-fault
/// section — and the checked-in fault-free golden rendering (asserted above)
/// proves the section is absent when no `fault/*` labels were interned.
#[test]
fn faulted_trace_renders_the_fault_section() {
    let dir = temp_dir("faults");
    let trace = dir.join("faulted.trace");
    run_experiments(&[
        "--quick",
        "--only",
        "resilience",
        "--out",
        dir.join("out").to_str().unwrap(),
        "--profile-trace",
        trace.to_str().unwrap(),
    ]);
    let tables = profile_stdout(&dir, &[trace.to_str().unwrap()]);
    assert!(
        tables.contains("### Device faults"),
        "fault-injected trace did not render the device-fault section"
    );
    // Recovered and hung outcomes both appear: the smoke sweep runs the
    // all-on stack (recovers) and the all-off baseline (livelock-detects).
    for kind in ["fault/stuck/recovered", "fault/dropped/hung"] {
        assert!(tables.contains(kind), "no `{kind}` row in the section");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Regenerates `tests/golden/smoke.trace` and the two golden renderings.
/// Run explicitly after an intentional change (see the module docs).
#[test]
#[ignore = "writes into tests/golden/; run after intentional format changes"]
fn regenerate_trace_goldens() {
    let golden = golden_dir();
    let trace_path = golden.join("smoke.trace");
    write_smoke_trace(&trace_path);
    std::fs::write(
        golden.join("smoke_profile.md"),
        profile_stdout(&golden, &["smoke.trace", "--top", "3"]),
    )
    .unwrap();
    std::fs::write(
        golden.join("smoke_profile.dump"),
        profile_stdout(&golden, &["smoke.trace", "--dump"]),
    )
    .unwrap();
}
