//! MMU configuration and the paper's named design points.

use serde::{Deserialize, Serialize};

use neummu_vmem::PageSize;

/// Named MMU design points evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MmuKind {
    /// Oracular MMU: every translation hits with zero latency (the baseline
    /// all figures are normalized against).
    Oracle,
    /// GPU-style baseline IOMMU: IOTLB + a handful of shared page-table
    /// walkers, no request merging, no translation-path register.
    BaselineIommu,
    /// The proposed NeuMMU: PTS + PRMB + many parallel walkers + TPreg.
    NeuMmu,
    /// A custom configuration produced by the builder methods.
    Custom,
}

impl MmuKind {
    /// Short label used in result tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MmuKind::Oracle => "Oracle",
            MmuKind::BaselineIommu => "IOMMU",
            MmuKind::NeuMmu => "NeuMMU",
            MmuKind::Custom => "Custom",
        }
    }
}

/// Configuration of a translation engine.
///
/// Defaults follow Table I of the paper; the named constructors give the three
/// design points used throughout the evaluation, and the `with_*` builder
/// methods support the sensitivity sweeps of Figures 10–12 and Section VI-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmuConfig {
    /// Which named design point this configuration corresponds to.
    pub kind: MmuKind,
    /// Number of IOTLB entries (Table I: 2048).
    pub tlb_entries: usize,
    /// IOTLB associativity (ways per set).
    pub tlb_ways: usize,
    /// IOTLB hit latency in cycles (Table I: 5).
    pub tlb_hit_latency: u64,
    /// Number of hardware page-table walkers (Table I baseline: 8; NeuMMU: 128).
    pub num_ptws: usize,
    /// Latency of each page-table level access in cycles (Table I: 100).
    pub walk_latency_per_level: u64,
    /// Mergeable PRMB slots per walker; 0 disables merging entirely (baseline
    /// IOMMU behaviour, where concurrent requests to an in-flight page each
    /// spend their own walk).
    pub prmb_slots_per_ptw: usize,
    /// Whether each walker carries a translation path register.
    pub tpreg_enabled: bool,
    /// Page size the engine translates at.
    pub page_size: PageSize,
}

impl MmuConfig {
    /// The oracular MMU.
    #[must_use]
    pub fn oracle() -> Self {
        MmuConfig {
            kind: MmuKind::Oracle,
            ..Self::baseline_iommu()
        }
    }

    /// The baseline IOMMU of Table I: 2048-entry TLB, 8 walkers, no merging,
    /// no TPreg.
    #[must_use]
    pub fn baseline_iommu() -> Self {
        MmuConfig {
            kind: MmuKind::BaselineIommu,
            tlb_entries: 2048,
            tlb_ways: 8,
            tlb_hit_latency: 5,
            num_ptws: 8,
            walk_latency_per_level: 100,
            prmb_slots_per_ptw: 0,
            tpreg_enabled: false,
            page_size: PageSize::Size4K,
        }
    }

    /// The proposed NeuMMU design point: 32 PRMB slots per walker, 128
    /// walkers, TPreg enabled (Section IV-D).
    #[must_use]
    pub fn neummu() -> Self {
        MmuConfig {
            kind: MmuKind::NeuMmu,
            num_ptws: 128,
            prmb_slots_per_ptw: 32,
            tpreg_enabled: true,
            ..Self::baseline_iommu()
        }
    }

    /// Overrides the number of page-table walkers (Figures 11 and 12a).
    #[must_use]
    pub fn with_ptws(mut self, num_ptws: usize) -> Self {
        self.num_ptws = num_ptws;
        self.kind = MmuKind::Custom;
        self
    }

    /// Overrides the PRMB slot count (Figure 10); 0 disables merging.
    #[must_use]
    pub fn with_prmb_slots(mut self, slots: usize) -> Self {
        self.prmb_slots_per_ptw = slots;
        self.kind = MmuKind::Custom;
        self
    }

    /// Overrides the number of TLB entries (the TLB sweep of Section III-C
    /// and the sensitivity study of Section VI-C).
    #[must_use]
    pub fn with_tlb_entries(mut self, entries: usize) -> Self {
        self.tlb_entries = entries;
        self.kind = MmuKind::Custom;
        self
    }

    /// Enables or disables the TPreg.
    #[must_use]
    pub fn with_tpreg(mut self, enabled: bool) -> Self {
        self.tpreg_enabled = enabled;
        self.kind = MmuKind::Custom;
        self
    }

    /// Switches the translation page size (Section VI-A large pages).
    #[must_use]
    pub fn with_page_size(mut self, page_size: PageSize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Number of page-table levels a full walk touches at this page size.
    #[must_use]
    pub fn full_walk_levels(&self) -> u32 {
        self.page_size.walk_levels()
    }

    /// Latency of a full (uncached) page-table walk.
    #[must_use]
    pub fn full_walk_latency(&self) -> u64 {
        u64::from(self.full_walk_levels()) * self.walk_latency_per_level
    }

    /// True if this configuration merges requests to in-flight pages.
    #[must_use]
    pub fn merging_enabled(&self) -> bool {
        self.prmb_slots_per_ptw > 0
    }

    /// Builds a fresh translator for this configuration — the oracle for
    /// [`MmuKind::Oracle`], the cycle-accounted engine otherwise.
    ///
    /// `MmuConfig` is `Copy`, so this is the cheap clone/reset path for
    /// per-point simulation state: keep the config, rebuild the translator.
    /// Equivalent to (and implemented by)
    /// [`crate::engine::TranslationEngine::for_config`].
    #[must_use]
    pub fn translator(&self) -> Box<dyn crate::engine::AddressTranslator> {
        crate::engine::TranslationEngine::for_config(*self)
    }

    /// Additional SRAM bytes this configuration adds over the baseline IOMMU
    /// (PRMB slots, TPregs and the PTS), following the accounting of
    /// Section IV-E.
    #[must_use]
    pub fn added_sram_bytes(&self) -> u64 {
        let prmb = 8 * self.prmb_slots_per_ptw as u64 * self.num_ptws as u64;
        let tpreg = if self.tpreg_enabled {
            16 * self.num_ptws as u64
        } else {
            0
        };
        let pts = if self.merging_enabled() {
            6 * self.num_ptws as u64
        } else {
            0
        };
        prmb + tpreg + pts
    }
}

impl Default for MmuConfig {
    fn default() -> Self {
        Self::neummu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_baseline_parameters() {
        let cfg = MmuConfig::baseline_iommu();
        assert_eq!(cfg.tlb_entries, 2048);
        assert_eq!(cfg.tlb_hit_latency, 5);
        assert_eq!(cfg.num_ptws, 8);
        assert_eq!(cfg.walk_latency_per_level, 100);
        assert!(!cfg.merging_enabled());
        assert!(!cfg.tpreg_enabled);
        assert_eq!(cfg.full_walk_latency(), 400);
    }

    #[test]
    fn neummu_design_point() {
        let cfg = MmuConfig::neummu();
        assert_eq!(cfg.num_ptws, 128);
        assert_eq!(cfg.prmb_slots_per_ptw, 32);
        assert!(cfg.tpreg_enabled);
        assert_eq!(cfg.kind.label(), "NeuMMU");
    }

    #[test]
    fn builder_methods_mark_custom() {
        let cfg = MmuConfig::neummu().with_ptws(256);
        assert_eq!(cfg.num_ptws, 256);
        assert_eq!(cfg.kind, MmuKind::Custom);
        let cfg = MmuConfig::baseline_iommu()
            .with_prmb_slots(16)
            .with_tlb_entries(128);
        assert_eq!(cfg.prmb_slots_per_ptw, 16);
        assert_eq!(cfg.tlb_entries, 128);
    }

    #[test]
    fn large_pages_shorten_walks() {
        let cfg = MmuConfig::baseline_iommu().with_page_size(PageSize::Size2M);
        assert_eq!(cfg.full_walk_levels(), 3);
        assert_eq!(cfg.full_walk_latency(), 300);
    }

    #[test]
    fn translator_builder_dispatches_on_kind_and_is_send() {
        fn assert_send<T: Send + ?Sized>(_: &T) {}
        let oracle = MmuConfig::oracle().translator();
        assert_eq!(oracle.page_size(), PageSize::Size4K);
        assert_send(oracle.as_ref());
        let engine = MmuConfig::neummu().translator();
        assert_eq!(engine.stats().requests, 0);
        assert_send(engine.as_ref());
    }

    #[test]
    fn sram_overhead_matches_section_4e() {
        // 128 PTWs x 32 PRMB entries x 8 bytes = 32 KB; TPregs = 2 KB.
        let cfg = MmuConfig::neummu();
        let bytes = cfg.added_sram_bytes();
        assert_eq!(bytes, 32 * 1024 + 2 * 1024 + 6 * 128);
        assert_eq!(MmuConfig::baseline_iommu().added_sram_bytes(), 0);
    }
}
