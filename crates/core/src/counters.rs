//! Process-wide hot-path telemetry counters.
//!
//! PR 3 rebuilt the per-translation hot path to be allocation-free; these
//! counters prove, in the spirit of CounterPoint's cheap measured counters,
//! where that work lands at run time: how many non-allocating page-table
//! probes ran (each one a `WalkPath` heap allocation avoided relative to the
//! old `walk()` hot path), how many structural-stall retries reused a cached
//! probe instead of re-walking, how often the oracle answered from its
//! mapped-range memo without touching the page table at all, and how often
//! the walker pool's retirement drain exited on the "nothing completed" fast
//! path.
//!
//! The counters are telemetry, not simulation state: they never feed back
//! into cycle accounting and are never written into the artifact directory,
//! so artifacts stay byte-identical whether or not anyone reads them.
//! `neummu_experiments` prints a snapshot next to the wall-clock self-profile
//! after each run.
//!
//! To keep the telemetry off the hot path it measures, nothing here is
//! touched per event: each translator accumulates a plain-integer tally and
//! flushes it into these process-global atomics once, when it is dropped (or
//! reset). A full experiments run performs a few thousand relaxed `fetch_add`s
//! in total — not one per translation — so parallel runners never contend on
//! the counter cache lines.

use std::sync::atomic::{AtomicU64, Ordering};

static PAGE_TABLE_PROBES: AtomicU64 = AtomicU64::new(0);
static RETRY_REPROBES_SAVED: AtomicU64 = AtomicU64::new(0);
static ORACLE_MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static RETIRE_FAST_EXITS: AtomicU64 = AtomicU64::new(0);
static DMA_FETCHES_STREAMED: AtomicU64 = AtomicU64::new(0);
static RUNS_COALESCED: AtomicU64 = AtomicU64::new(0);
static REPLAYED_HITS: AtomicU64 = AtomicU64::new(0);
static REPLAYED_MERGES: AtomicU64 = AtomicU64::new(0);
static REPLAYED_WALKS: AtomicU64 = AtomicU64::new(0);

#[inline]
fn add(counter: &AtomicU64, n: u64) {
    if n > 0 {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

pub(crate) fn add_probes(n: u64) {
    add(&PAGE_TABLE_PROBES, n);
}

pub(crate) fn add_retry_reprobes_saved(n: u64) {
    add(&RETRY_REPROBES_SAVED, n);
}

pub(crate) fn add_oracle_memo_hits(n: u64) {
    add(&ORACLE_MEMO_HITS, n);
}

pub(crate) fn add_retire_fast_exits(n: u64) {
    add(&RETIRE_FAST_EXITS, n);
}

pub(crate) fn add_runs_coalesced(n: u64) {
    add(&RUNS_COALESCED, n);
}

pub(crate) fn add_replayed_hits(n: u64) {
    add(&REPLAYED_HITS, n);
}

pub(crate) fn add_replayed_merges(n: u64) {
    add(&REPLAYED_MERGES, n);
}

pub(crate) fn add_replayed_walks(n: u64) {
    add(&REPLAYED_WALKS, n);
}

/// Records `fetches` DMA tile fetches whose transactions were streamed from
/// the non-allocating iterator instead of a materialized `Vec`. Called by the
/// simulators (which own the DMA loop, and batch the count per workload),
/// hence public.
pub fn add_dma_fetches_streamed(fetches: u64) {
    add(&DMA_FETCHES_STREAMED, fetches);
}

/// A point-in-time copy of every hot-path counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotPathCounters {
    /// Non-allocating page-table probes executed (engine walks + oracle
    /// mapped-ness checks). Each one is a `WalkPath` allocation avoided
    /// relative to the pre-PR 3 hot path.
    pub page_table_probes: u64,
    /// Structural-stall retries that reused the probe cached across the
    /// `Rejected → retry` loop instead of re-walking the page table.
    pub retry_reprobes_saved: u64,
    /// Oracle translations answered from the last-page mapped-range memo
    /// without a page-table traversal.
    pub oracle_memo_hits: u64,
    /// Walker-pool retirement drains that exited on the "nothing completed"
    /// fast path after a single heap peek.
    pub retire_fast_exits: u64,
    /// DMA tile fetches whose transactions were streamed from the iterator
    /// (one avoided `Vec<MemTransaction>` per fetch).
    pub dma_fetches_streamed: u64,
    /// Same-page bursts that took the run-coalesced translation path: one
    /// real TLB interaction for the whole run instead of one per request.
    pub runs_coalesced: u64,
    /// Translation requests replayed arithmetically as TLB hits by the run
    /// path (each one a full set probe, LRU touch and stats update avoided).
    pub replayed_hits: u64,
    /// Translation requests replayed arithmetically as PTS/PRMB merges by
    /// the run path (each one a set probe and a PTS lookup avoided).
    pub replayed_merges: u64,
    /// Translation requests replayed as redundant same-page walks on
    /// merging-disabled engines (each one a set probe and a page-table probe
    /// avoided; the walk itself still runs on the real walker machinery).
    pub replayed_walks: u64,
}

impl HotPathCounters {
    /// The counters as `(label, value)` pairs, for report tables.
    #[must_use]
    pub fn named(&self) -> [(&'static str, u64); 9] {
        [
            ("hot/page_table_probes", self.page_table_probes),
            ("hot/retry_reprobes_saved", self.retry_reprobes_saved),
            ("hot/oracle_memo_hits", self.oracle_memo_hits),
            ("hot/retire_fast_exits", self.retire_fast_exits),
            ("hot/dma_fetches_streamed", self.dma_fetches_streamed),
            ("hot/runs_coalesced", self.runs_coalesced),
            ("hot/replayed_hits", self.replayed_hits),
            ("hot/replayed_merges", self.replayed_merges),
            ("hot/replayed_walks", self.replayed_walks),
        ]
    }

    /// Counter-wise difference `self - earlier` (saturating), for measuring
    /// one region of a program that shares the process-global counters.
    #[must_use]
    pub fn since(&self, earlier: &HotPathCounters) -> HotPathCounters {
        HotPathCounters {
            page_table_probes: self
                .page_table_probes
                .saturating_sub(earlier.page_table_probes),
            retry_reprobes_saved: self
                .retry_reprobes_saved
                .saturating_sub(earlier.retry_reprobes_saved),
            oracle_memo_hits: self
                .oracle_memo_hits
                .saturating_sub(earlier.oracle_memo_hits),
            retire_fast_exits: self
                .retire_fast_exits
                .saturating_sub(earlier.retire_fast_exits),
            dma_fetches_streamed: self
                .dma_fetches_streamed
                .saturating_sub(earlier.dma_fetches_streamed),
            runs_coalesced: self.runs_coalesced.saturating_sub(earlier.runs_coalesced),
            replayed_hits: self.replayed_hits.saturating_sub(earlier.replayed_hits),
            replayed_merges: self.replayed_merges.saturating_sub(earlier.replayed_merges),
            replayed_walks: self.replayed_walks.saturating_sub(earlier.replayed_walks),
        }
    }
}

/// Reads every counter. Translators flush their tallies when dropped (or
/// reset), so read after the simulations of interest have completed.
#[must_use]
pub fn snapshot() -> HotPathCounters {
    HotPathCounters {
        page_table_probes: PAGE_TABLE_PROBES.load(Ordering::Relaxed),
        retry_reprobes_saved: RETRY_REPROBES_SAVED.load(Ordering::Relaxed),
        oracle_memo_hits: ORACLE_MEMO_HITS.load(Ordering::Relaxed),
        retire_fast_exits: RETIRE_FAST_EXITS.load(Ordering::Relaxed),
        dma_fetches_streamed: DMA_FETCHES_STREAMED.load(Ordering::Relaxed),
        runs_coalesced: RUNS_COALESCED.load(Ordering::Relaxed),
        replayed_hits: REPLAYED_HITS.load(Ordering::Relaxed),
        replayed_merges: REPLAYED_MERGES.load(Ordering::Relaxed),
        replayed_walks: REPLAYED_WALKS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_difference() {
        // Process-global state shared with concurrently running tests, so
        // assert on deltas rather than absolute values.
        let before = snapshot();
        add_probes(2);
        add_retry_reprobes_saved(1);
        add_oracle_memo_hits(1);
        add_retire_fast_exits(1);
        add_dma_fetches_streamed(3);
        add_runs_coalesced(2);
        add_replayed_hits(7);
        add_replayed_merges(5);
        add_replayed_walks(4);
        // Zero adds are free and must not disturb anything.
        add_probes(0);
        add_dma_fetches_streamed(0);
        let delta = snapshot().since(&before);
        assert!(delta.page_table_probes >= 2);
        assert!(delta.retry_reprobes_saved >= 1);
        assert!(delta.oracle_memo_hits >= 1);
        assert!(delta.retire_fast_exits >= 1);
        assert!(delta.dma_fetches_streamed >= 3);
        assert!(delta.runs_coalesced >= 2);
        assert!(delta.replayed_hits >= 7);
        assert!(delta.replayed_merges >= 5);
        assert!(delta.replayed_walks >= 4);
        assert_eq!(delta.named().len(), 9);
        assert_eq!(delta.named()[0].0, "hot/page_table_probes");
    }
}
