//! The cycle-accounted translation front end driven by the NPU's DMA engine.
//!
//! The DMA presents translation requests in program order, at most one per
//! cycle. Each request flows through the structures of Figure 9:
//!
//! 1. the IOTLB (hit → done after the TLB hit latency),
//! 2. on a miss, the pending translation scoreboard (PTS); a hit merges the
//!    request into the in-flight walk's PRMB,
//! 3. otherwise a free page-table walker starts a walk, reading one
//!    page-table level per `walk_latency_per_level` cycles (minus the levels
//!    its TPreg lets it skip),
//! 4. when neither a walker nor a mergeable slot is available the request —
//!    and therefore the DMA — stalls until translation bandwidth frees up.
//!
//! The engine reports, for every request, when it was *accepted* (the DMA may
//! not issue the next request earlier) and when its translation *completed*
//! (the data fetch may start no earlier). These two numbers are what couple
//! address translation into the NPU performance model.

use serde::{Deserialize, Serialize};

use neummu_energy::{EnergyEvent, EnergyMeter};
use neummu_vmem::{Asid, PageSize, PageTable, PathTag, VirtAddr, WalkProbe};

use crate::config::{MmuConfig, MmuKind};
use crate::counters;
use crate::stats::TranslationStats;
use crate::tlb::Tlb;
use crate::walker::{WalkAdmission, WalkerPool};

/// How a translation request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TranslationSource {
    /// Satisfied with zero latency by the oracular MMU.
    Oracle,
    /// Hit in the IOTLB.
    TlbHit,
    /// Merged into an in-flight walk by the PTS/PRMB.
    Merged,
    /// Required a page-table walk that read the given number of levels.
    PageWalk {
        /// Page-table levels read from memory.
        levels_read: u32,
    },
}

/// The timing outcome of one translation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationOutcome {
    /// Cycle at which the engine accepted the request. Always at least the
    /// issue cycle; later when the request had to stall for translation
    /// bandwidth. The requester may issue its next request no earlier than
    /// `accept_cycle + 1`.
    pub accept_cycle: u64,
    /// Cycle at which the translated physical address is available.
    pub complete_cycle: u64,
    /// How the request was satisfied.
    pub source: TranslationSource,
    /// True if the page was not mapped (translation fault). The caller decides
    /// how to handle the fault (demand paging, NUMA mapping, abort).
    pub fault: bool,
}

/// Common interface of the oracular MMU and the cycle-accounted engines.
///
/// The trait requires `Send` so that boxed translators — and any per-point
/// simulation state embedding one — can move onto worker threads of the
/// parallel experiment runner. All translator state is plain owned data, so
/// every implementation satisfies the bound structurally.
pub trait AddressTranslator: Send {
    /// Translates `va` for a request issued at `cycle`.
    ///
    /// Requests must be issued in non-decreasing cycle order; the engine
    /// models an in-order DMA front end. Equivalent to
    /// [`AddressTranslator::translate_tagged`] in the [`Asid::GLOBAL`]
    /// context.
    fn translate(&mut self, page_table: &PageTable, va: VirtAddr, cycle: u64)
        -> TranslationOutcome;

    /// Translates `va` in the tenant context `asid`, walking that tenant's
    /// `page_table`.
    ///
    /// Translators that cache per-address state (the IOTLB, the PTS) key it
    /// by `(asid, page)` so contexts never alias; stateless translators (the
    /// oracle, whose memo is already stamped by the page table's globally
    /// unique revision) ignore the tag, which is what this default does.
    fn translate_tagged(
        &mut self,
        page_table: &PageTable,
        asid: Asid,
        va: VirtAddr,
        cycle: u64,
    ) -> TranslationOutcome {
        let _ = asid;
        self.translate(page_table, va, cycle)
    }

    /// Invalidates every cached translation belonging to the tenant context
    /// `asid` (context teardown / page-table switch), leaving other tenants'
    /// state untouched. Stateless translators need not do anything.
    fn flush_asid(&mut self, asid: Asid) {
        let _ = asid;
    }

    /// Statistics accumulated so far.
    fn stats(&self) -> &TranslationStats;

    /// Energy meter accumulated so far.
    fn energy(&self) -> &EnergyMeter;

    /// The configured page size of the engine.
    fn page_size(&self) -> PageSize;

    /// Resets statistics, energy and internal occupancy (but not the
    /// configuration).
    fn reset(&mut self);

    /// Invalidates any cached translation state for the page containing `va`
    /// (after page migration or unmapping). The oracle has no cached state,
    /// so the default implementation does nothing.
    fn invalidate_page(&mut self, va: VirtAddr) {
        let _ = va;
    }
}

/// The mapped-ness of the most recent page probed by the oracle.
///
/// The oracle only ever asks "is this address mapped?", and the DMA asks it
/// in page-local bursts (a 512-byte transaction stream touches the same 4 KB
/// page eight times in a row, a 2 MB page 4096 times). Mapped-ness is
/// constant across the leaf page containing the address, so the memo answers
/// repeat questions without traversing the radix tree.
/// [`PageTable::revision`] serves as the version stamp: a globally unique
/// draw re-taken on every `map`/`unmap`, so the memo can never survive a
/// mapped-ness change (even a compensating unmap+map pair) nor leak across
/// two different page tables, and stays put across `remap` (page migration),
/// which cannot change mapped-ness. Like the engine's IOTLB, the memo
/// additionally honors [`AddressTranslator::invalidate_page`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct MappedRangeMemo {
    stamp: u64,
    start: u64,
    end: u64,
    mapped: bool,
}

impl MappedRangeMemo {
    fn covers(&self, stamp: u64, va: VirtAddr) -> bool {
        self.stamp == stamp && self.start <= va.raw() && va.raw() < self.end
    }
}

/// Plain-integer tally of hot-path telemetry events, accumulated locally by
/// a translator and flushed into the process-global `counters` atomics once,
/// when the translator is dropped or reset — never per event, so the
/// telemetry stays off the hot path it measures (and parallel runners never
/// contend on the counter cache lines).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct HotTally {
    probes: u64,
    retry_reprobes_saved: u64,
    memo_hits: u64,
    retire_fast_exits: u64,
}

impl HotTally {
    /// Adds the tally to the process-global counters and zeroes it.
    fn flush(&mut self) {
        counters::add_probes(self.probes);
        counters::add_retry_reprobes_saved(self.retry_reprobes_saved);
        counters::add_oracle_memo_hits(self.memo_hits);
        counters::add_retire_fast_exits(self.retire_fast_exits);
        *self = HotTally::default();
    }
}

/// The oracular MMU: every translation hits with zero latency.
#[derive(Debug, Serialize, Deserialize)]
pub struct OracleTranslator {
    page_size: PageSize,
    stats: TranslationStats,
    energy: EnergyMeter,
    memo: Option<MappedRangeMemo>,
    hot: HotTally,
}

impl OracleTranslator {
    /// Creates an oracle translating at the given page size.
    #[must_use]
    pub fn new(page_size: PageSize) -> Self {
        OracleTranslator {
            page_size,
            stats: TranslationStats::default(),
            energy: EnergyMeter::default(),
            memo: None,
            hot: HotTally::default(),
        }
    }

    /// True if `va` is mapped, answered from the last-page memo when the
    /// address falls inside the memoized leaf page and the table is
    /// unchanged, probing (and re-priming the memo) otherwise.
    fn probe_mapped(&mut self, page_table: &PageTable, va: VirtAddr) -> bool {
        let stamp = page_table.revision();
        if let Some(memo) = &self.memo {
            if memo.covers(stamp, va) {
                self.hot.memo_hits += 1;
                return memo.mapped;
            }
        }
        self.hot.probes += 1;
        let probe = page_table.probe(va);
        let (base, bytes, mapped) = match probe.translation {
            Some(t) => (va.page_base(t.page_size).raw(), t.page_size.bytes(), true),
            // An unmapped address is certainly unmapped across its 4 KB page;
            // claiming more would race with leaf sizes we did not observe.
            None => (
                va.page_base(PageSize::Size4K).raw(),
                PageSize::Size4K.bytes(),
                false,
            ),
        };
        self.memo = Some(MappedRangeMemo {
            stamp,
            start: base,
            end: base + bytes,
            mapped,
        });
        mapped
    }
}

impl Default for OracleTranslator {
    fn default() -> Self {
        Self::new(PageSize::Size4K)
    }
}

/// Hand-written (not derived) because of the telemetry tally: the original
/// flushes its own counts into the process-global counters on drop, so a
/// clone must start at zero or every event up to the clone point would be
/// counted twice.
impl Clone for OracleTranslator {
    fn clone(&self) -> Self {
        OracleTranslator {
            page_size: self.page_size,
            stats: self.stats,
            energy: self.energy.clone(),
            memo: self.memo,
            hot: HotTally::default(),
        }
    }
}

impl AddressTranslator for OracleTranslator {
    fn translate(
        &mut self,
        page_table: &PageTable,
        va: VirtAddr,
        cycle: u64,
    ) -> TranslationOutcome {
        self.stats.requests += 1;
        self.stats.tlb_hits += 1;
        self.stats.last_completion_cycle = self.stats.last_completion_cycle.max(cycle);
        let fault = !self.probe_mapped(page_table, va);
        if fault {
            self.stats.faults += 1;
        }
        TranslationOutcome {
            accept_cycle: cycle,
            complete_cycle: cycle,
            source: TranslationSource::Oracle,
            fault,
        }
    }

    fn stats(&self) -> &TranslationStats {
        &self.stats
    }

    fn energy(&self) -> &EnergyMeter {
        &self.energy
    }

    fn page_size(&self) -> PageSize {
        self.page_size
    }

    fn reset(&mut self) {
        self.stats = TranslationStats::default();
        self.energy.reset();
        self.memo = None;
        self.hot.flush();
    }

    fn invalidate_page(&mut self, _va: VirtAddr) {
        self.memo = None;
    }
}

impl Drop for OracleTranslator {
    fn drop(&mut self) {
        self.hot.flush();
    }
}

/// The cycle-accounted IOMMU / NeuMMU translation engine.
#[derive(Debug, Serialize, Deserialize)]
pub struct TranslationEngine {
    config: MmuConfig,
    tlb: Tlb,
    walkers: WalkerPool,
    stats: TranslationStats,
    energy: EnergyMeter,
    hot: HotTally,
}

impl TranslationEngine {
    /// Creates an engine from a configuration.
    #[must_use]
    pub fn new(config: MmuConfig) -> Self {
        TranslationEngine {
            config,
            tlb: Tlb::new(config.tlb_entries, config.tlb_ways),
            walkers: WalkerPool::new(
                config.num_ptws,
                config.prmb_slots_per_ptw,
                config.walk_latency_per_level,
                config.tpreg_enabled,
            ),
            stats: TranslationStats::default(),
            energy: EnergyMeter::default(),
            hot: HotTally::default(),
        }
    }

    /// Builds the translator matching a configuration — the oracle for
    /// [`MmuKind::Oracle`], a cycle-accounted engine otherwise.
    #[must_use]
    pub fn for_config(config: MmuConfig) -> Box<dyn AddressTranslator> {
        if config.kind == MmuKind::Oracle {
            Box::new(OracleTranslator::new(config.page_size))
        } else {
            Box::new(TranslationEngine::new(config))
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> MmuConfig {
        self.config
    }

    /// The IOTLB (for inspection in tests and experiments).
    #[must_use]
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    fn page_number_of(&self, va: VirtAddr) -> u64 {
        va.page_number(self.config.page_size)
    }

    /// Retires completed walks up to `cycle`, filling the TLB.
    fn drain_completions(&mut self, cycle: u64) {
        let TranslationEngine {
            walkers,
            tlb,
            energy,
            hot,
            ..
        } = self;
        let retired = walkers.drain_completed(cycle, |walk| {
            if walk.mapped {
                tlb.insert_tagged(walk.asid, walk.page_number);
                energy.record(EnergyEvent::TlbFill, 1);
            }
            if walk.merged_requests > 0 {
                energy.record(EnergyEvent::PrmbRead, u64::from(walk.merged_requests));
            }
        });
        if retired == 0 {
            hot.retire_fast_exits += 1;
        }
    }
}

impl AddressTranslator for TranslationEngine {
    fn translate(
        &mut self,
        page_table: &PageTable,
        va: VirtAddr,
        cycle: u64,
    ) -> TranslationOutcome {
        self.translate_tagged(page_table, Asid::GLOBAL, va, cycle)
    }

    fn translate_tagged(
        &mut self,
        page_table: &PageTable,
        asid: Asid,
        va: VirtAddr,
        cycle: u64,
    ) -> TranslationOutcome {
        self.stats.requests += 1;
        let page_number = self.page_number_of(va);
        let mut now = cycle;
        // The page table is immutable for the duration of one translate call,
        // so the probe is computed at most once and reused across the
        // `Rejected → retry` iterations of the structural-stall loop.
        let mut cached_probe: Option<WalkProbe> = None;

        loop {
            // Retire walks that completed before this attempt so their
            // translations are visible in the TLB and their walkers are free.
            self.drain_completions(now);

            // 1. IOTLB lookup.
            self.energy.record(EnergyEvent::TlbLookup, 1);
            if self.tlb.lookup_tagged(asid, page_number) {
                self.stats.tlb_hits += 1;
                let complete = now + self.config.tlb_hit_latency;
                self.stats.last_completion_cycle = self.stats.last_completion_cycle.max(complete);
                self.stats.stall_cycles += now - cycle;
                return TranslationOutcome {
                    accept_cycle: now,
                    complete_cycle: complete,
                    source: TranslationSource::TlbHit,
                    fault: false,
                };
            }

            // 2. PTS lookup / PRMB merge.
            if self.config.merging_enabled() {
                self.energy.record(EnergyEvent::PtsLookup, 1);
                if let Some((_walker, completes_at)) =
                    self.walkers.try_merge_tagged(asid, page_number)
                {
                    self.stats.tlb_misses += 1;
                    self.stats.merged += 1;
                    self.energy.record(EnergyEvent::PrmbWrite, 1);
                    self.stats.last_completion_cycle =
                        self.stats.last_completion_cycle.max(completes_at);
                    self.stats.stall_cycles += now - cycle;
                    return TranslationOutcome {
                        accept_cycle: now,
                        complete_cycle: completes_at,
                        source: TranslationSource::Merged,
                        fault: false,
                    };
                }
            }

            // 3. Try to start a walk on a free walker.
            let probe = match cached_probe {
                Some(probe) => {
                    self.hot.retry_reprobes_saved += 1;
                    probe
                }
                None => {
                    self.hot.probes += 1;
                    let probe = page_table.probe(va);
                    cached_probe = Some(probe);
                    probe
                }
            };
            let mapped = probe.is_hit();
            // A fault is detected as soon as the walk reaches the missing
            // level; either way at least one entry is read.
            let full_levels = probe.memory_accesses().max(1);
            if self.config.tpreg_enabled {
                self.energy.record(EnergyEvent::TpregAccess, 1);
            }
            match self.walkers.start_walk_tagged(
                asid,
                now,
                page_number,
                PathTag::of(va),
                full_levels,
                mapped,
            ) {
                WalkAdmission::Started {
                    completes_at,
                    path_match,
                    levels_read,
                    ..
                } => {
                    self.stats.tlb_misses += 1;
                    self.stats.walks += 1;
                    self.stats.walk_memory_accesses += u64::from(levels_read);
                    self.energy
                        .record(EnergyEvent::PageWalkMemoryAccess, u64::from(levels_read));
                    if self.config.tpreg_enabled {
                        self.stats.tpreg_lookups += 1;
                        self.stats.tpreg_skipped_levels +=
                            u64::from(full_levels.saturating_sub(levels_read));
                        if path_match.l4 {
                            self.stats.tpreg_l4_hits += 1;
                        }
                        if path_match.l3 {
                            self.stats.tpreg_l3_hits += 1;
                        }
                        if path_match.l2 {
                            self.stats.tpreg_l2_hits += 1;
                        }
                    }
                    if !mapped {
                        self.stats.faults += 1;
                    }
                    self.stats.last_completion_cycle =
                        self.stats.last_completion_cycle.max(completes_at);
                    self.stats.stall_cycles += now - cycle;
                    return TranslationOutcome {
                        accept_cycle: now,
                        complete_cycle: completes_at,
                        source: TranslationSource::PageWalk { levels_read },
                        fault: !mapped,
                    };
                }
                WalkAdmission::Merged { completes_at, .. } => {
                    // Unreachable in practice (merging is attempted above),
                    // but handled for completeness.
                    self.stats.tlb_misses += 1;
                    self.stats.merged += 1;
                    self.stats.stall_cycles += now - cycle;
                    return TranslationOutcome {
                        accept_cycle: now,
                        complete_cycle: completes_at,
                        source: TranslationSource::Merged,
                        fault: false,
                    };
                }
                WalkAdmission::Rejected { retry_at } => {
                    // All walkers busy and no mergeable slot: the DMA stalls
                    // until translation bandwidth frees up, then retries.
                    self.stats.structural_stalls += 1;
                    now = retry_at.max(now + 1);
                }
            }
        }
    }

    fn stats(&self) -> &TranslationStats {
        &self.stats
    }

    fn energy(&self) -> &EnergyMeter {
        &self.energy
    }

    fn page_size(&self) -> PageSize {
        self.config.page_size
    }

    fn reset(&mut self) {
        self.hot.flush();
        *self = TranslationEngine::new(self.config);
    }

    fn invalidate_page(&mut self, va: VirtAddr) {
        let page = self.page_number_of(va);
        // An untagged invalidation (page migration / unmap) is a broadcast
        // shootdown: the page's entry dies in every context.
        self.tlb.invalidate_all_contexts(page);
        self.walkers.invalidate_tpregs();
    }

    fn flush_asid(&mut self, asid: Asid) {
        // Drop the tenant's TLB entries AND discard its in-flight walks:
        // their PTS entries vanish (no later request can merge into a walk
        // of the torn-down page table) and their results retire as unmapped,
        // so a stale translation can never re-enter the TLB after the flush.
        // TPregs are per-walker physical hints refreshed by the next walk.
        self.tlb.flush_asid(asid);
        self.walkers.flush_asid(asid);
    }
}

impl Drop for TranslationEngine {
    fn drop(&mut self) {
        self.hot.flush();
    }
}

/// Hand-written (not derived) for the same reason as
/// [`OracleTranslator`]'s `Clone`: the tally must not be duplicated, or the
/// two drop-time flushes would double-count every event up to the clone.
impl Clone for TranslationEngine {
    fn clone(&self) -> Self {
        TranslationEngine {
            config: self.config,
            tlb: self.tlb.clone(),
            walkers: self.walkers.clone(),
            stats: self.stats,
            energy: self.energy.clone(),
            hot: HotTally::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neummu_vmem::{MemNode, PhysFrameNum};

    /// Maps `pages` consecutive 4 KB pages starting at `base`.
    fn mapped_table(base: u64, pages: u64) -> PageTable {
        let mut pt = PageTable::new();
        for i in 0..pages {
            pt.map(
                VirtAddr::new(base + i * 4096),
                PageSize::Size4K,
                PhysFrameNum::new(0x10_0000 + i),
                MemNode::Npu(0),
            )
            .unwrap();
        }
        pt
    }

    #[test]
    fn oracle_translations_are_free() {
        let pt = mapped_table(0x100_0000, 4);
        let mut oracle = OracleTranslator::default();
        let out = oracle.translate(&pt, VirtAddr::new(0x100_0000), 123);
        assert_eq!(out.accept_cycle, 123);
        assert_eq!(out.complete_cycle, 123);
        assert!(!out.fault);
        assert_eq!(oracle.stats().requests, 1);
    }

    #[test]
    fn oracle_memo_survives_bursts_and_tracks_page_table_changes() {
        let mut pt = mapped_table(0x100_0000, 1);
        let mut oracle = OracleTranslator::default();
        // A DMA-style burst to one page: the memo answers the repeats.
        for i in 0..8u64 {
            let out = oracle.translate(&pt, VirtAddr::new(0x100_0000 + i * 512), i);
            assert!(!out.fault);
        }
        // A different, unmapped page re-primes the memo with a negative range.
        assert!(oracle.translate(&pt, VirtAddr::new(0x900_0000), 10).fault);
        assert!(oracle.translate(&pt, VirtAddr::new(0x900_0800), 11).fault);
        // Mapping that page changes the stats stamp: the stale negative memo
        // must not answer.
        pt.map(
            VirtAddr::new(0x900_0000),
            PageSize::Size4K,
            PhysFrameNum::new(0x77),
            MemNode::Npu(0),
        )
        .unwrap();
        assert!(!oracle.translate(&pt, VirtAddr::new(0x900_0800), 12).fault);
        // Unmapping likewise invalidates a stale positive memo.
        pt.unmap(VirtAddr::new(0x900_0000)).unwrap();
        assert!(oracle.translate(&pt, VirtAddr::new(0x900_0800), 13).fault);
        assert_eq!(oracle.stats().faults, 3);
    }

    #[test]
    fn oracle_memo_not_fooled_by_compensating_unmap_map_pairs() {
        // An unmap followed by a map of a different page in the same L1 table
        // returns the structural stats (table and leaf counts) to their prior
        // values; the revision stamp still advances, so the memo must not
        // claim the unmapped page.
        let mut pt = mapped_table(0x100_0000, 2);
        let mut oracle = OracleTranslator::default();
        assert!(!oracle.translate(&pt, VirtAddr::new(0x100_0000), 0).fault);
        let stats_before = pt.stats();
        pt.unmap(VirtAddr::new(0x100_0000)).unwrap();
        pt.map(
            VirtAddr::new(0x100_2000),
            PageSize::Size4K,
            PhysFrameNum::new(0x55),
            MemNode::Npu(0),
        )
        .unwrap();
        assert_eq!(pt.stats(), stats_before, "the pair must be compensating");
        let out = oracle.translate(&pt, VirtAddr::new(0x100_0000), 1);
        assert!(out.fault, "stale memo answered for an unmapped page");
    }

    #[test]
    fn oracle_memo_is_not_confused_by_a_second_page_table() {
        // Two tables with identical mutation counts; the address is mapped
        // only in the first. The memo's revision stamp is globally unique, so
        // switching tables mid-stream must re-probe rather than reuse it.
        let pt_a = mapped_table(0x100_0000, 1);
        let mut pt_b = PageTable::new();
        pt_b.map(
            VirtAddr::new(0x900_0000),
            PageSize::Size4K,
            PhysFrameNum::new(1),
            MemNode::Host,
        )
        .unwrap();
        let mut oracle = OracleTranslator::default();
        assert!(!oracle.translate(&pt_a, VirtAddr::new(0x100_0000), 0).fault);
        assert!(
            oracle.translate(&pt_b, VirtAddr::new(0x100_0000), 1).fault,
            "memo leaked across page tables"
        );
    }

    #[test]
    fn cloned_translators_start_with_an_empty_telemetry_tally() {
        // Both translators flush their tally into the process-global counters
        // on drop; a clone that copied the tally would double-count every
        // event up to the clone point.
        let pt = mapped_table(0xe00_0000, 1);
        let mut oracle = OracleTranslator::default();
        oracle.translate(&pt, VirtAddr::new(0xe00_0000), 0);
        assert_ne!(oracle.hot, HotTally::default());
        assert_eq!(oracle.clone().hot, HotTally::default());
        let mut engine = TranslationEngine::new(MmuConfig::neummu());
        engine.translate(&pt, VirtAddr::new(0xe00_0000), 0);
        assert_ne!(engine.hot, HotTally::default());
        assert_eq!(engine.clone().hot, HotTally::default());
    }

    #[test]
    fn oracle_memo_honors_invalidate_page() {
        let pt = mapped_table(0x200_0000, 1);
        let mut oracle = OracleTranslator::default();
        assert!(!oracle.translate(&pt, VirtAddr::new(0x200_0000), 0).fault);
        // invalidate_page drops the memo; the next request re-probes and
        // still sees the (unchanged) table.
        oracle.invalidate_page(VirtAddr::new(0x200_0000));
        assert!(!oracle.translate(&pt, VirtAddr::new(0x200_0100), 1).fault);
        oracle.reset();
        assert_eq!(oracle.stats().requests, 0);
        assert!(!oracle.translate(&pt, VirtAddr::new(0x200_0200), 2).fault);
    }

    #[test]
    fn first_access_walks_then_tlb_hits() {
        let pt = mapped_table(0x100_0000, 1);
        let mut mmu = TranslationEngine::new(MmuConfig::baseline_iommu());
        let first = mmu.translate(&pt, VirtAddr::new(0x100_0000), 0);
        assert!(matches!(
            first.source,
            TranslationSource::PageWalk { levels_read: 4 }
        ));
        assert_eq!(first.complete_cycle, 400);
        // After the walk completes, the same page hits in the TLB.
        let second = mmu.translate(&pt, VirtAddr::new(0x100_0040), first.complete_cycle + 1);
        assert_eq!(second.source, TranslationSource::TlbHit);
        assert_eq!(second.complete_cycle, second.accept_cycle + 5);
        assert_eq!(mmu.stats().walks, 1);
        assert_eq!(mmu.stats().tlb_hits, 1);
    }

    #[test]
    fn baseline_iommu_spends_redundant_walks_on_bursts_to_one_page() {
        // Back-to-back requests to the same page, issued before the first
        // walk completes: without a PRMB each one burns its own walker.
        let pt = mapped_table(0x200_0000, 1);
        let mut mmu = TranslationEngine::new(MmuConfig::baseline_iommu());
        for i in 0..8u64 {
            let out = mmu.translate(&pt, VirtAddr::new(0x200_0000 + i * 64), i);
            assert!(matches!(out.source, TranslationSource::PageWalk { .. }));
        }
        assert_eq!(mmu.stats().walks, 8);
        assert_eq!(mmu.stats().merged, 0);
        assert_eq!(mmu.stats().walk_memory_accesses, 32);
    }

    #[test]
    fn neummu_merges_bursts_to_one_page() {
        let pt = mapped_table(0x200_0000, 1);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let mut cycle = 0;
        for i in 0..8u64 {
            let out = mmu.translate(&pt, VirtAddr::new(0x200_0000 + i * 64), cycle);
            cycle = out.accept_cycle + 1;
        }
        assert_eq!(mmu.stats().walks, 1);
        assert_eq!(mmu.stats().merged, 7);
        assert!(mmu.stats().merge_rate() > 0.8);
    }

    #[test]
    fn structural_stall_blocks_the_requester() {
        // One walker, no merging: the second request to a *different* page
        // must wait for the first walk to finish.
        let config = MmuConfig::baseline_iommu().with_ptws(1);
        let pt = mapped_table(0x300_0000, 2);
        let mut mmu = TranslationEngine::new(config);
        let first = mmu.translate(&pt, VirtAddr::new(0x300_0000), 0);
        let second = mmu.translate(&pt, VirtAddr::new(0x300_1000), 1);
        assert_eq!(first.complete_cycle, 400);
        assert!(
            second.accept_cycle >= 400,
            "accept at {}",
            second.accept_cycle
        );
        assert_eq!(mmu.stats().structural_stalls, 1);
        assert!(mmu.stats().stall_cycles >= 399);
    }

    #[test]
    fn prmb_overflow_falls_back_to_stalling() {
        // One walker with a single mergeable slot: the third request to the
        // same page can neither merge nor start a walk.
        let config = MmuConfig::baseline_iommu().with_ptws(1).with_prmb_slots(1);
        let pt = mapped_table(0x400_0000, 1);
        let mut mmu = TranslationEngine::new(config);
        let a = mmu.translate(&pt, VirtAddr::new(0x400_0000), 0);
        let b = mmu.translate(&pt, VirtAddr::new(0x400_0100), 1);
        let c = mmu.translate(&pt, VirtAddr::new(0x400_0200), 2);
        assert!(matches!(a.source, TranslationSource::PageWalk { .. }));
        assert_eq!(b.source, TranslationSource::Merged);
        // The third request stalls until the walk retires, then hits the TLB.
        assert!(c.accept_cycle >= a.complete_cycle);
        assert_eq!(c.source, TranslationSource::TlbHit);
    }

    #[test]
    fn tpreg_reduces_walk_memory_accesses_for_streaming_pages() {
        let pages = 64;
        let pt = mapped_table(0x800_0000, pages);
        let with_tpreg = MmuConfig::neummu().with_ptws(1);
        let without_tpreg = MmuConfig::neummu().with_ptws(1).with_tpreg(false);
        let run = |config: MmuConfig| {
            let mut mmu = TranslationEngine::new(config);
            let mut cycle = 0;
            for i in 0..pages {
                let out = mmu.translate(&pt, VirtAddr::new(0x800_0000 + i * 4096), cycle);
                cycle = out.complete_cycle + 1;
            }
            mmu.stats().walk_memory_accesses
        };
        let accesses_with = run(with_tpreg);
        let accesses_without = run(without_tpreg);
        assert_eq!(accesses_without, pages * 4);
        // First walk reads 4 levels, the rest only the leaf.
        assert_eq!(accesses_with, 4 + (pages - 1));
        assert!(accesses_without > 2 * accesses_with);
    }

    #[test]
    fn tpreg_hit_rates_follow_the_figure13_shape() {
        // Stream many consecutive pages through a single walker: L4/L3 always
        // match after the first walk; L2 misses at every 2 MB boundary.
        let pages = 2048; // 8 MB of consecutive pages
        let pt = mapped_table(0x4000_0000, pages);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu().with_ptws(1).with_tlb_entries(16));
        let mut cycle = 0;
        for i in 0..pages {
            let out = mmu.translate(&pt, VirtAddr::new(0x4000_0000 + i * 4096), cycle);
            cycle = out.complete_cycle + 1;
        }
        let stats = mmu.stats();
        assert!(stats.tpreg_l4_rate() > 0.99);
        assert!(stats.tpreg_l3_rate() > 0.99);
        assert!(stats.tpreg_l2_rate() > 0.9);
        assert!(stats.tpreg_l2_rate() < stats.tpreg_l3_rate());
    }

    #[test]
    fn unmapped_page_reports_a_fault_after_a_partial_walk() {
        let pt = PageTable::new();
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let out = mmu.translate(&pt, VirtAddr::new(0x9999_0000), 0);
        assert!(out.fault);
        assert!(matches!(
            out.source,
            TranslationSource::PageWalk { levels_read: 1 }
        ));
        assert_eq!(mmu.stats().faults, 1);
        // A faulting walk never fills the TLB.
        let again = mmu.translate(&pt, VirtAddr::new(0x9999_0000), out.complete_cycle + 1);
        assert!(again.fault);
    }

    #[test]
    fn large_pages_walk_three_levels_and_cover_more_reach() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(0x4000_0000),
            PageSize::Size2M,
            PhysFrameNum::new(0x8_0000),
            MemNode::Npu(0),
        )
        .unwrap();
        let mut mmu =
            TranslationEngine::new(MmuConfig::baseline_iommu().with_page_size(PageSize::Size2M));
        let first = mmu.translate(&pt, VirtAddr::new(0x4000_0000), 0);
        assert!(matches!(
            first.source,
            TranslationSource::PageWalk { levels_read: 3 }
        ));
        assert_eq!(first.complete_cycle, 300);
        // An address 1 MB away is still in the same 2 MB page: TLB hit.
        let second = mmu.translate(&pt, VirtAddr::new(0x4010_0000), 400);
        assert_eq!(second.source, TranslationSource::TlbHit);
    }

    #[test]
    fn invalidate_page_forces_a_new_walk() {
        let pt = mapped_table(0xa00_0000, 1);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let first = mmu.translate(&pt, VirtAddr::new(0xa00_0000), 0);
        let hit = mmu.translate(&pt, VirtAddr::new(0xa00_0000), first.complete_cycle + 1);
        assert_eq!(hit.source, TranslationSource::TlbHit);
        mmu.invalidate_page(VirtAddr::new(0xa00_0000));
        let after = mmu.translate(&pt, VirtAddr::new(0xa00_0000), hit.complete_cycle + 1);
        assert!(matches!(after.source, TranslationSource::PageWalk { .. }));
    }

    #[test]
    fn tagged_contexts_do_not_share_tlb_entries() {
        // Two tenants, same VA, each with its own page table. Tenant A's
        // walk fills the TLB under its ASID; tenant B's request to the same
        // VA must miss and walk B's own table.
        let pt_a = mapped_table(0x500_0000, 1);
        let pt_b = mapped_table(0x500_0000, 1);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let first = mmu.translate_tagged(&pt_a, a, VirtAddr::new(0x500_0000), 0);
        assert!(matches!(first.source, TranslationSource::PageWalk { .. }));
        let hit = mmu.translate_tagged(
            &pt_a,
            a,
            VirtAddr::new(0x500_0000),
            first.complete_cycle + 1,
        );
        assert_eq!(hit.source, TranslationSource::TlbHit);
        let cross =
            mmu.translate_tagged(&pt_b, b, VirtAddr::new(0x500_0000), hit.complete_cycle + 1);
        assert!(
            matches!(cross.source, TranslationSource::PageWalk { .. }),
            "tenant B must not hit on tenant A's TLB entry, got {:?}",
            cross.source
        );
        // Once B's walk retires, both tenants hold their own entry.
        let hit_b = mmu.translate_tagged(
            &pt_b,
            b,
            VirtAddr::new(0x500_0000),
            cross.complete_cycle + 1,
        );
        assert_eq!(hit_b.source, TranslationSource::TlbHit);
        assert_eq!(mmu.tlb().occupancy_of(a), 1);
        assert_eq!(mmu.tlb().occupancy_of(b), 1);
    }

    #[test]
    fn tagged_contexts_do_not_merge_into_each_others_walks() {
        // Back-to-back requests to the same page number from two different
        // contexts, issued before the first walk completes: no cross-tenant
        // PRMB merge may happen.
        let pt_a = mapped_table(0x600_0000, 1);
        let pt_b = mapped_table(0x600_0000, 1);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let first = mmu.translate_tagged(&pt_a, a, VirtAddr::new(0x600_0000), 0);
        let second = mmu.translate_tagged(&pt_b, b, VirtAddr::new(0x600_0000), 1);
        assert!(matches!(first.source, TranslationSource::PageWalk { .. }));
        assert!(matches!(second.source, TranslationSource::PageWalk { .. }));
        assert_eq!(mmu.stats().merged, 0);
        // Same context *does* merge.
        let third = mmu.translate_tagged(&pt_a, a, VirtAddr::new(0x600_0040), 2);
        assert_eq!(third.source, TranslationSource::Merged);
    }

    #[test]
    fn flush_asid_only_evicts_the_flushed_tenant() {
        let pt = mapped_table(0x700_0000, 1);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let wa = mmu.translate_tagged(&pt, a, VirtAddr::new(0x700_0000), 0);
        let wb = mmu.translate_tagged(&pt, b, VirtAddr::new(0x700_0000), wa.complete_cycle + 1);
        let mut cycle = wb.complete_cycle + 1;
        mmu.flush_asid(a);
        let after_a = mmu.translate_tagged(&pt, a, VirtAddr::new(0x700_0000), cycle);
        assert!(matches!(after_a.source, TranslationSource::PageWalk { .. }));
        cycle = after_a.complete_cycle + 1;
        let after_b = mmu.translate_tagged(&pt, b, VirtAddr::new(0x700_0000), cycle);
        assert_eq!(after_b.source, TranslationSource::TlbHit);
    }

    #[test]
    fn untagged_translate_is_the_global_context() {
        let pt = mapped_table(0x800_0000, 1);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let walk = mmu.translate(&pt, VirtAddr::new(0x800_0000), 0);
        let hit = mmu.translate_tagged(
            &pt,
            Asid::GLOBAL,
            VirtAddr::new(0x800_0000),
            walk.complete_cycle + 1,
        );
        assert_eq!(hit.source, TranslationSource::TlbHit);
    }

    #[test]
    fn flush_asid_discards_in_flight_walks() {
        // Tenant A's walk for page P is in flight when A's context is torn
        // down (page-table switch). After the flush, a new same-page request
        // from A must neither merge into the stale walk nor ever see its
        // translation appear in the TLB.
        let pt_old = mapped_table(0x900_0000, 1);
        let pt_new = mapped_table(0x900_0000, 1);
        let a = Asid::new(1);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let stale = mmu.translate_tagged(&pt_old, a, VirtAddr::new(0x900_0000), 0);
        assert!(matches!(stale.source, TranslationSource::PageWalk { .. }));
        mmu.flush_asid(a);
        // Re-issued against the new table, before the stale walk completes:
        // a fresh walk, not a merge into the doomed one.
        let fresh = mmu.translate_tagged(&pt_new, a, VirtAddr::new(0x900_0000), 1);
        assert!(
            matches!(fresh.source, TranslationSource::PageWalk { .. }),
            "merged into a flushed walk: {:?}",
            fresh.source
        );
        // Let both walks retire; exactly one TLB entry (the fresh walk's) may
        // exist — the flushed walk's stale translation must not have landed.
        let after = mmu.translate_tagged(
            &pt_new,
            a,
            VirtAddr::new(0x900_0000),
            stale.complete_cycle.max(fresh.complete_cycle) + 1,
        );
        assert_eq!(after.source, TranslationSource::TlbHit);
        assert_eq!(mmu.tlb().occupancy_of(a), 1);
    }

    #[test]
    fn flush_asid_during_walk_spares_other_tenants_merges() {
        // Flushing tenant A while tenant B's walk is in flight must leave
        // B's PTS entry mergeable.
        let pt = mapped_table(0xf00_0000, 1);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        mmu.translate_tagged(&pt, b, VirtAddr::new(0xf00_0000), 0);
        mmu.flush_asid(a);
        let merged = mmu.translate_tagged(&pt, b, VirtAddr::new(0xf00_0040), 1);
        assert_eq!(merged.source, TranslationSource::Merged);
    }

    #[test]
    fn invalidate_page_is_a_broadcast_across_contexts() {
        // An untagged invalidation (migration/unmap) kills the page's entry
        // in every context, not just GLOBAL.
        let pt = mapped_table(0x110_0000, 2);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let wa = mmu.translate_tagged(&pt, a, VirtAddr::new(0x110_0000), 0);
        let wb = mmu.translate_tagged(&pt, b, VirtAddr::new(0x110_0000), wa.complete_cycle + 1);
        let wc = mmu.translate_tagged(&pt, b, VirtAddr::new(0x110_1000), wb.complete_cycle + 1);
        let mut cycle = wc.complete_cycle + 1;
        mmu.invalidate_page(VirtAddr::new(0x110_0000));
        for asid in [a, b] {
            let out = mmu.translate_tagged(&pt, asid, VirtAddr::new(0x110_0000), cycle);
            assert!(
                matches!(out.source, TranslationSource::PageWalk { .. }),
                "{asid}: stale entry survived the broadcast shootdown"
            );
            cycle = out.complete_cycle + 1;
        }
        // The *other* page's entry survives.
        let other = mmu.translate_tagged(&pt, b, VirtAddr::new(0x110_1000), cycle);
        assert_eq!(other.source, TranslationSource::TlbHit);
    }

    #[test]
    fn reset_clears_state_but_keeps_configuration() {
        let pt = mapped_table(0xb00_0000, 2);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        mmu.translate(&pt, VirtAddr::new(0xb00_0000), 0);
        mmu.reset();
        assert_eq!(mmu.stats().requests, 0);
        assert_eq!(mmu.config().kind, MmuKind::NeuMmu);
        assert_eq!(mmu.energy().total_nj(), 0.0);
    }

    #[test]
    fn for_config_dispatches_oracle() {
        let pt = mapped_table(0xc00_0000, 1);
        let mut oracle = TranslationEngine::for_config(MmuConfig::oracle());
        let out = oracle.translate(&pt, VirtAddr::new(0xc00_0000), 7);
        assert_eq!(out.source, TranslationSource::Oracle);
        let mut engine = TranslationEngine::for_config(MmuConfig::neummu());
        let out = engine.translate(&pt, VirtAddr::new(0xc00_0000), 7);
        assert!(matches!(out.source, TranslationSource::PageWalk { .. }));
    }

    #[test]
    fn energy_accumulates_walk_accesses() {
        let pt = mapped_table(0xd00_0000, 4);
        let mut mmu = TranslationEngine::new(MmuConfig::baseline_iommu());
        let mut cycle = 0;
        for i in 0..4u64 {
            let out = mmu.translate(&pt, VirtAddr::new(0xd00_0000 + i * 4096), cycle);
            cycle = out.accept_cycle + 1;
        }
        assert_eq!(
            mmu.energy()
                .count(neummu_energy::EnergyEvent::PageWalkMemoryAccess),
            16
        );
        assert!(mmu.energy().total_nj() > 0.0);
    }
}
