//! The cycle-accounted translation front end driven by the NPU's DMA engine.
//!
//! The DMA presents translation requests in program order, at most one per
//! cycle. Each request flows through the structures of Figure 9:
//!
//! 1. the IOTLB (hit → done after the TLB hit latency),
//! 2. on a miss, the pending translation scoreboard (PTS); a hit merges the
//!    request into the in-flight walk's PRMB,
//! 3. otherwise a free page-table walker starts a walk, reading one
//!    page-table level per `walk_latency_per_level` cycles (minus the levels
//!    its TPreg lets it skip),
//! 4. when neither a walker nor a mergeable slot is available the request —
//!    and therefore the DMA — stalls until translation bandwidth frees up.
//!
//! The engine reports, for every request, when it was *accepted* (the DMA may
//! not issue the next request earlier) and when its translation *completed*
//! (the data fetch may start no earlier). These two numbers are what couple
//! address translation into the NPU performance model.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use neummu_energy::{EnergyEvent, EnergyMeter};
use neummu_faults::{
    DeviceFaultConfig, DeviceFaultPlan, FaultCounters, FaultError, InjectedFault, ResilienceConfig,
    FAULT_KINDS,
};
use neummu_vmem::{Asid, PageSize, PageTable, PathTag, VirtAddr, WalkProbe};

use crate::config::{MmuConfig, MmuKind};
use crate::counters;
use crate::stats::TranslationStats;
use crate::tlb::Tlb;
use crate::walker::{WalkAdmission, WalkerPool};

/// How a translation request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TranslationSource {
    /// Satisfied with zero latency by the oracular MMU.
    Oracle,
    /// Hit in the IOTLB.
    TlbHit,
    /// Merged into an in-flight walk by the PTS/PRMB.
    Merged,
    /// Required a page-table walk that read the given number of levels.
    PageWalk {
        /// Page-table levels read from memory.
        levels_read: u32,
    },
}

/// The timing outcome of one translation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationOutcome {
    /// Cycle at which the engine accepted the request. Always at least the
    /// issue cycle; later when the request had to stall for translation
    /// bandwidth. The requester may issue its next request no earlier than
    /// `accept_cycle + 1`.
    pub accept_cycle: u64,
    /// Cycle at which the translated physical address is available.
    pub complete_cycle: u64,
    /// How the request was satisfied.
    pub source: TranslationSource,
    /// True if the page was not mapped (translation fault). The caller decides
    /// how to handle the fault (demand paging, NUMA mapping, abort).
    pub fault: bool,
}

/// The outcome of a run-coalesced burst of same-page translation requests
/// (see [`AddressTranslator::translate_run`]).
///
/// The first request of the run resolves through the full translation path
/// and its outcome is reported verbatim in `first`. The remaining
/// `consumed - 1` requests were *replayed* arithmetically: request `j`
/// (0-based within the run) was accepted at `first.accept_cycle + j` and
/// completed at `first.complete_cycle + j * complete_stride` — a stride of 1
/// for replayed TLB hits (each hit completes a fixed TLB latency after its
/// own accept) and 0 for replayed PRMB merges (every merged request completes
/// when the shared walk retires). A run outcome never hides information: the
/// per-request [`TranslationOutcome`]s reconstructed by
/// [`RunOutcome::outcome`] are bit-identical to what `consumed` individual
/// `translate` calls would have returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Outcome of the run's first request (full translation path).
    pub first: TranslationOutcome,
    /// How many of the run's requests this call resolved (at least 1, at
    /// most the requested count). When smaller than the requested count, the
    /// replay hit a non-arithmetic event (PRMB exhaustion, an eviction, a
    /// fault) and the caller re-issues the remainder with another
    /// `translate_run` call, whose first request takes the full path —
    /// exactly like the per-transaction sequence.
    pub consumed: u64,
    /// Completion stride of the replayed requests: 1 for TLB-hit replays,
    /// 0 for merge replays (and for an unreplayed single).
    pub complete_stride: u64,
    /// How each replayed request was satisfied.
    pub replay_source: TranslationSource,
    /// Fault flag of every replayed request (the oracle replays faulting
    /// bursts; the cycle-accounted engine never replays past a fault).
    pub replay_fault: bool,
}

impl RunOutcome {
    /// A run outcome that resolved only its first request.
    #[must_use]
    pub fn single(first: TranslationOutcome) -> Self {
        RunOutcome {
            first,
            consumed: 1,
            complete_stride: 0,
            replay_source: first.source,
            replay_fault: first.fault,
        }
    }

    /// Number of requests replayed arithmetically (`consumed - 1`).
    #[must_use]
    pub fn replayed(&self) -> u64 {
        self.consumed - 1
    }

    /// Accept cycle of the `index`-th request of the run.
    #[must_use]
    pub fn accept(&self, index: u64) -> u64 {
        debug_assert!(index < self.consumed);
        self.first.accept_cycle + index
    }

    /// Completion cycle of the `index`-th request of the run.
    #[must_use]
    pub fn complete(&self, index: u64) -> u64 {
        debug_assert!(index < self.consumed);
        if index == 0 {
            self.first.complete_cycle
        } else {
            self.first.complete_cycle + index * self.complete_stride
        }
    }

    /// Accept cycle of the run's last resolved request (the requester may
    /// issue its next request no earlier than one cycle later).
    #[must_use]
    pub fn last_accept(&self) -> u64 {
        self.accept(self.consumed - 1)
    }

    /// Completion cycle of the run's last resolved request. Completions are
    /// non-decreasing across the run, so this is also the run's maximum.
    #[must_use]
    pub fn last_complete(&self) -> u64 {
        self.complete(self.consumed - 1)
    }

    /// The full per-request outcome of the `index`-th request, bit-identical
    /// to what an individual `translate` call would have returned.
    #[must_use]
    pub fn outcome(&self, index: u64) -> TranslationOutcome {
        if index == 0 {
            return self.first;
        }
        TranslationOutcome {
            accept_cycle: self.accept(index),
            complete_cycle: self.complete(index),
            source: self.replay_source,
            fault: self.replay_fault,
        }
    }
}

/// Common interface of the oracular MMU and the cycle-accounted engines.
///
/// The trait requires `Send` so that boxed translators — and any per-point
/// simulation state embedding one — can move onto worker threads of the
/// parallel experiment runner. All translator state is plain owned data, so
/// every implementation satisfies the bound structurally.
pub trait AddressTranslator: Send {
    /// Translates `va` for a request issued at `cycle`.
    ///
    /// Requests must be issued in non-decreasing cycle order; the engine
    /// models an in-order DMA front end. Equivalent to
    /// [`AddressTranslator::translate_tagged`] in the [`Asid::GLOBAL`]
    /// context.
    fn translate(&mut self, page_table: &PageTable, va: VirtAddr, cycle: u64)
        -> TranslationOutcome;

    /// Translates `va` in the tenant context `asid`, walking that tenant's
    /// `page_table`.
    ///
    /// Translators that cache per-address state (the IOTLB, the PTS) key it
    /// by `(asid, page)` so contexts never alias; stateless translators (the
    /// oracle, whose memo is already stamped by the page table's globally
    /// unique revision) ignore the tag, which is what this default does.
    fn translate_tagged(
        &mut self,
        page_table: &PageTable,
        asid: Asid,
        va: VirtAddr,
        cycle: u64,
    ) -> TranslationOutcome {
        let _ = asid;
        self.translate(page_table, va, cycle)
    }

    /// Invalidates every cached translation belonging to the tenant context
    /// `asid` (context teardown / page-table switch), leaving other tenants'
    /// state untouched. Stateless translators need not do anything.
    fn flush_asid(&mut self, asid: Asid) {
        let _ = asid;
    }

    /// Translates a run of `count` back-to-back same-page requests, the
    /// first at address `va` issued at `cycle`, each subsequent request
    /// issued one cycle after the previous one was accepted — the exact
    /// issue pattern of a DMA burst. Every address of the run must lie on
    /// the same [`AddressTranslator::page_size`] page as `va`.
    ///
    /// Implementations resolve the first request through the full
    /// translation path and may *replay* as many of the remaining requests
    /// as behave arithmetically (see [`RunOutcome`]); the sequence of
    /// outcomes and every statistic are bit-identical to `count` individual
    /// [`AddressTranslator::translate`] calls. The default implementation
    /// coalesces nothing: it resolves the first request and returns
    /// `consumed == 1`, which is always correct.
    ///
    /// Equivalent to [`AddressTranslator::translate_run_tagged`] in the
    /// [`Asid::GLOBAL`] context.
    fn translate_run(
        &mut self,
        page_table: &PageTable,
        va: VirtAddr,
        count: u64,
        cycle: u64,
    ) -> RunOutcome {
        debug_assert!(count >= 1, "a run has at least one request");
        RunOutcome::single(self.translate(page_table, va, cycle))
    }

    /// [`AddressTranslator::translate_run`] in the tenant context `asid`.
    /// The default resolves the first request and coalesces nothing.
    fn translate_run_tagged(
        &mut self,
        page_table: &PageTable,
        asid: Asid,
        va: VirtAddr,
        count: u64,
        cycle: u64,
    ) -> RunOutcome {
        debug_assert!(count >= 1, "a run has at least one request");
        RunOutcome::single(self.translate_tagged(page_table, asid, va, cycle))
    }

    /// Statistics accumulated so far.
    fn stats(&self) -> &TranslationStats;

    /// Energy meter accumulated so far.
    fn energy(&self) -> &EnergyMeter;

    /// The configured page size of the engine.
    fn page_size(&self) -> PageSize;

    /// Resets statistics, energy and internal occupancy (but not the
    /// configuration).
    fn reset(&mut self);

    /// Invalidates any cached translation state for the page containing `va`
    /// (after page migration or unmapping). The oracle has no cached state,
    /// so the default implementation does nothing.
    fn invalidate_page(&mut self, va: VirtAddr) {
        let _ = va;
    }
}

/// The mapped-ness of the most recent page probed by the oracle.
///
/// The oracle only ever asks "is this address mapped?", and the DMA asks it
/// in page-local bursts (a 512-byte transaction stream touches the same 4 KB
/// page eight times in a row, a 2 MB page 4096 times). Mapped-ness is
/// constant across the leaf page containing the address, so the memo answers
/// repeat questions without traversing the radix tree.
/// [`PageTable::revision`] serves as the version stamp: a globally unique
/// draw re-taken on every `map`/`unmap`, so the memo can never survive a
/// mapped-ness change (even a compensating unmap+map pair) nor leak across
/// two different page tables, and stays put across `remap` (page migration),
/// which cannot change mapped-ness. Like the engine's IOTLB, the memo
/// additionally honors [`AddressTranslator::invalidate_page`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct MappedRangeMemo {
    stamp: u64,
    start: u64,
    end: u64,
    mapped: bool,
}

impl MappedRangeMemo {
    fn covers(&self, stamp: u64, va: VirtAddr) -> bool {
        self.stamp == stamp && self.start <= va.raw() && va.raw() < self.end
    }
}

/// Plain-integer tally of hot-path telemetry events, accumulated locally by
/// a translator and flushed into the process-global `counters` atomics once,
/// when the translator is dropped or reset — never per event, so the
/// telemetry stays off the hot path it measures (and parallel runners never
/// contend on the counter cache lines).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct HotTally {
    probes: u64,
    retry_reprobes_saved: u64,
    memo_hits: u64,
    retire_fast_exits: u64,
    runs_coalesced: u64,
    replayed_hits: u64,
    replayed_merges: u64,
    replayed_walks: u64,
}

impl HotTally {
    /// Adds the tally to the process-global counters and zeroes it.
    fn flush(&mut self) {
        counters::add_probes(self.probes);
        counters::add_retry_reprobes_saved(self.retry_reprobes_saved);
        counters::add_oracle_memo_hits(self.memo_hits);
        counters::add_retire_fast_exits(self.retire_fast_exits);
        counters::add_runs_coalesced(self.runs_coalesced);
        counters::add_replayed_hits(self.replayed_hits);
        counters::add_replayed_merges(self.replayed_merges);
        counters::add_replayed_walks(self.replayed_walks);
        *self = HotTally::default();
    }
}

/// Event-kind indices of the engine's trace tap (into [`TAP_LABELS`] /
/// [`TAP_CAPS`] / [`EngineTap::bins`]).
const TAP_TLB_HIT: usize = 0;
const TAP_MERGE: usize = 1;
const TAP_WALK: usize = 2;
const TAP_FAULT: usize = 3;
const TAP_REPLAY_HITS: usize = 4;
const TAP_REPLAY_MERGES: usize = 5;
const TAP_REPLAY_WALKS: usize = 6;
const TAP_RETIRE: usize = 7;
const TAP_KIND_COUNT: usize = 8;

/// Trace kind labels, interned once per process against the installed sink.
const TAP_LABELS: [&str; TAP_KIND_COUNT] = [
    "engine/tlb_hit",
    "engine/prmb_merge",
    "engine/page_walk",
    "engine/fault",
    "engine/replay/hits",
    "engine/replay/merges",
    "engine/replay/walks",
    "engine/walk_retire",
];

/// How many same-kind, same-ASID events accumulate in a bin before it is
/// emitted as one trace record. Chosen so that a full-scale run (hundreds of
/// millions of requests) produces a trace of a few million records: frequent
/// kinds bin coarsely, walks finely enough that their span distribution
/// survives, and faults are emitted individually.
const TAP_CAPS: [u32; TAP_KIND_COUNT] = [1024, 1024, 256, 1, 256, 256, 256, 1024];

/// One accumulating bin of the engine's trace tap: `events` same-kind events
/// of one ASID, covering the cycle span `start..end`, with summed `weight`
/// (request count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct TraceBin {
    asid: u16,
    events: u32,
    weight: u64,
    start: u64,
    end: u64,
}

/// The engine's connection to the process-wide event-trace sink
/// (`neummu_trace`), binned so emission stays off the per-request path.
///
/// Like [`HotTally`], the tap accumulates locally and flushes on drop/reset;
/// unlike the tally, a bin flush emits a trace *event* carrying the covered
/// cycle span. Bins depend only on the deterministic per-engine call
/// sequence (timestamps are simulated cycles, a bin never spans two ASIDs),
/// so trace content is identical across runner thread counts. `enabled` is
/// captured at construction: a sink installed later misses at most the
/// engines already built, and no sink ever means zero work per event beyond
/// one predictable branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct EngineTap {
    enabled: bool,
    bins: [TraceBin; TAP_KIND_COUNT],
}

/// Kind ids for [`TAP_LABELS`], interned against the installed global sink
/// once per process. Never caches a negative: if no sink is installed yet,
/// later calls re-check.
fn tap_kinds() -> Option<&'static [neummu_trace::KindId; TAP_KIND_COUNT]> {
    static KINDS: OnceLock<[neummu_trace::KindId; TAP_KIND_COUNT]> = OnceLock::new();
    if let Some(kinds) = KINDS.get() {
        return Some(kinds);
    }
    let sink = neummu_trace::global()?;
    Some(KINDS.get_or_init(|| TAP_LABELS.map(|label| sink.kind(label))))
}

/// Fault outcomes a trace event distinguishes: recovered / failed / hung.
const FAULT_OUTCOME_COUNT: usize = 3;

/// Trace kind labels for injected device faults, `fault/<kind>/<outcome>`,
/// row order matching [`neummu_faults::FaultKind::index`]. Unlike
/// [`TAP_LABELS`] these are
/// interned *lazily*, on the first fault actually emitted: registering them
/// eagerly alongside the tap labels would add twelve kinds to every trace's
/// label table and change the bytes of fault-free golden traces.
const FAULT_TRACE_LABELS: [[&str; FAULT_OUTCOME_COUNT]; FAULT_KINDS] = [
    [
        "fault/timeout/recovered",
        "fault/timeout/failed",
        "fault/timeout/hung",
    ],
    [
        "fault/dropped/recovered",
        "fault/dropped/failed",
        "fault/dropped/hung",
    ],
    [
        "fault/transient/recovered",
        "fault/transient/failed",
        "fault/transient/hung",
    ],
    [
        "fault/stuck/recovered",
        "fault/stuck/failed",
        "fault/stuck/hung",
    ],
];

/// Kind ids for [`FAULT_TRACE_LABELS`], interned on first use (see there).
fn fault_trace_kinds() -> Option<&'static [[neummu_trace::KindId; FAULT_OUTCOME_COUNT]; FAULT_KINDS]>
{
    static KINDS: OnceLock<[[neummu_trace::KindId; FAULT_OUTCOME_COUNT]; FAULT_KINDS]> =
        OnceLock::new();
    if let Some(kinds) = KINDS.get() {
        return Some(kinds);
    }
    let sink = neummu_trace::global()?;
    Some(KINDS.get_or_init(|| FAULT_TRACE_LABELS.map(|row| row.map(|label| sink.kind(label)))))
}

impl EngineTap {
    /// A tap that emits iff a global sink is installed right now.
    fn new() -> Self {
        EngineTap {
            enabled: neummu_trace::enabled(),
            bins: [TraceBin::default(); TAP_KIND_COUNT],
        }
    }

    /// Folds one event into the `idx` bin, emitting the bin when it is full
    /// or when the ASID changes (a bin never mixes tenants).
    #[inline]
    fn record(&mut self, idx: usize, asid: Asid, start: u64, end: u64, weight: u64) {
        if !self.enabled {
            return;
        }
        self.record_enabled(idx, asid.raw(), start, end, weight);
    }

    /// The common case — same ASID, bin not yet full — is three additions
    /// and a max; bin turnover (first event, ASID switch, full bin) is
    /// outlined as the cold path so this inlines into the translate loop.
    #[inline]
    fn record_enabled(&mut self, idx: usize, asid: u16, start: u64, end: u64, weight: u64) {
        let bin = &mut self.bins[idx];
        if bin.events != 0 && bin.asid == asid && bin.events + 1 < TAP_CAPS[idx] {
            bin.events += 1;
            bin.weight += weight;
            bin.end = bin.end.max(end);
            return;
        }
        self.record_turnover(idx, asid, start, end, weight);
    }

    /// Bin turnover: flush on ASID change, (re)initialize, emit when full.
    #[cold]
    fn record_turnover(&mut self, idx: usize, asid: u16, start: u64, end: u64, weight: u64) {
        let bin = &mut self.bins[idx];
        if bin.events > 0 && bin.asid != asid {
            Self::emit(idx, *bin);
            *bin = TraceBin::default();
        }
        if bin.events == 0 {
            bin.asid = asid;
            bin.start = start;
        }
        bin.events += 1;
        bin.weight += weight;
        bin.end = bin.end.max(end);
        if bin.events >= TAP_CAPS[idx] {
            Self::emit(idx, *bin);
            *bin = TraceBin::default();
        }
    }

    /// Emits one bin as a trace event (payload = summed request weight).
    fn emit(idx: usize, bin: TraceBin) {
        if let (Some(sink), Some(kinds)) = (neummu_trace::global(), tap_kinds()) {
            sink.emit(neummu_trace::Event {
                kind: kinds[idx],
                asid: bin.asid,
                start: bin.start,
                end: bin.end,
                payload: bin.weight,
            });
        }
    }

    /// Emits every non-empty bin (drop/reset path, mirroring
    /// [`HotTally::flush`]).
    fn flush(&mut self) {
        if !self.enabled {
            return;
        }
        for idx in 0..TAP_KIND_COUNT {
            let bin = self.bins[idx];
            if bin.events > 0 {
                Self::emit(idx, bin);
                self.bins[idx] = TraceBin::default();
            }
        }
    }
}

/// The oracular MMU: every translation hits with zero latency.
#[derive(Debug, Serialize, Deserialize)]
pub struct OracleTranslator {
    page_size: PageSize,
    stats: TranslationStats,
    energy: EnergyMeter,
    memo: Option<MappedRangeMemo>,
    hot: HotTally,
}

impl OracleTranslator {
    /// Creates an oracle translating at the given page size.
    #[must_use]
    pub fn new(page_size: PageSize) -> Self {
        OracleTranslator {
            page_size,
            stats: TranslationStats::default(),
            energy: EnergyMeter::default(),
            memo: None,
            hot: HotTally::default(),
        }
    }

    /// True if `va` is mapped, answered from the last-page memo when the
    /// address falls inside the memoized leaf page and the table is
    /// unchanged, probing (and re-priming the memo) otherwise.
    fn probe_mapped(&mut self, page_table: &PageTable, va: VirtAddr) -> bool {
        let stamp = page_table.revision();
        if let Some(memo) = &self.memo {
            if memo.covers(stamp, va) {
                self.hot.memo_hits += 1;
                return memo.mapped;
            }
        }
        self.hot.probes += 1;
        let probe = page_table.probe(va);
        let (base, bytes, mapped) = match probe.translation {
            Some(t) => (va.page_base(t.page_size).raw(), t.page_size.bytes(), true),
            // An unmapped address is certainly unmapped across its 4 KB page;
            // claiming more would race with leaf sizes we did not observe.
            None => (
                va.page_base(PageSize::Size4K).raw(),
                PageSize::Size4K.bytes(),
                false,
            ),
        };
        self.memo = Some(MappedRangeMemo {
            stamp,
            start: base,
            end: base + bytes,
            mapped,
        });
        mapped
    }
}

impl Default for OracleTranslator {
    fn default() -> Self {
        Self::new(PageSize::Size4K)
    }
}

/// Hand-written (not derived) because of the telemetry tally: the original
/// flushes its own counts into the process-global counters on drop, so a
/// clone must start at zero or every event up to the clone point would be
/// counted twice.
impl Clone for OracleTranslator {
    fn clone(&self) -> Self {
        OracleTranslator {
            page_size: self.page_size,
            stats: self.stats,
            energy: self.energy.clone(),
            memo: self.memo,
            hot: HotTally::default(),
        }
    }
}

impl AddressTranslator for OracleTranslator {
    fn translate(
        &mut self,
        page_table: &PageTable,
        va: VirtAddr,
        cycle: u64,
    ) -> TranslationOutcome {
        self.stats.requests += 1;
        self.stats.tlb_hits += 1;
        self.stats.last_completion_cycle = self.stats.last_completion_cycle.max(cycle);
        let fault = !self.probe_mapped(page_table, va);
        if fault {
            self.stats.faults += 1;
        }
        TranslationOutcome {
            accept_cycle: cycle,
            complete_cycle: cycle,
            source: TranslationSource::Oracle,
            fault,
        }
    }

    fn translate_run(
        &mut self,
        page_table: &PageTable,
        va: VirtAddr,
        count: u64,
        cycle: u64,
    ) -> RunOutcome {
        debug_assert!(count >= 1, "a run has at least one request");
        let first = self.translate(page_table, va, cycle);
        let mut out = RunOutcome::single(first);
        if count <= 1 {
            return out;
        }
        // The run's addresses may arrive in any order within the page (the
        // embedding gather coalesces same-page lookups of random rows), so
        // the replay is valid only if the memo covers the *whole* page: then
        // every request of the run is answered by the memo exactly as the
        // per-request path would answer it. When the mapped leaf is smaller
        // than the translation page this check fails and the run simply
        // stays uncoalesced — correct, just slower.
        let page_start = va.page_base(self.page_size);
        let page_last = VirtAddr::new(page_start.raw() + self.page_size.bytes() - 1);
        let stamp = page_table.revision();
        let covered = self
            .memo
            .is_some_and(|memo| memo.covers(stamp, page_start) && memo.covers(stamp, page_last));
        if !covered {
            return out;
        }
        let replays = count - 1;
        self.stats.requests += replays;
        self.stats.tlb_hits += replays;
        if first.fault {
            self.stats.faults += replays;
        }
        self.stats.last_completion_cycle = self.stats.last_completion_cycle.max(cycle + replays);
        self.hot.memo_hits += replays;
        self.hot.runs_coalesced += 1;
        self.hot.replayed_hits += replays;
        out.consumed = count;
        out.complete_stride = 1;
        out
    }

    fn translate_run_tagged(
        &mut self,
        page_table: &PageTable,
        asid: Asid,
        va: VirtAddr,
        count: u64,
        cycle: u64,
    ) -> RunOutcome {
        // The oracle is stateless across contexts (its memo is stamped by
        // the page table's globally unique revision), so the tagged run is
        // the untagged run.
        let _ = asid;
        self.translate_run(page_table, va, count, cycle)
    }

    fn stats(&self) -> &TranslationStats {
        &self.stats
    }

    fn energy(&self) -> &EnergyMeter {
        &self.energy
    }

    fn page_size(&self) -> PageSize {
        self.page_size
    }

    fn reset(&mut self) {
        self.stats = TranslationStats::default();
        self.energy.reset();
        self.memo = None;
        self.hot.flush();
    }

    fn invalidate_page(&mut self, _va: VirtAddr) {
        self.memo = None;
    }
}

impl Drop for OracleTranslator {
    fn drop(&mut self) {
        self.hot.flush();
    }
}

/// Device-fault injection state attached by
/// [`TranslationEngine::with_faults`]: the seeded fault plan plus the
/// resilience mechanisms that decide each injected fault's outcome. Boxed
/// behind an `Option` so a fault-free engine pays exactly one `is_none`
/// branch per walk admission and stays bit-identical to the pre-fault
/// engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EngineFaults {
    plan: DeviceFaultPlan,
    resilience: ResilienceConfig,
}

/// The cycle-accounted IOMMU / NeuMMU translation engine.
#[derive(Debug, Serialize, Deserialize)]
pub struct TranslationEngine {
    config: MmuConfig,
    tlb: Tlb,
    walkers: WalkerPool,
    stats: TranslationStats,
    energy: EnergyMeter,
    hot: HotTally,
    tap: EngineTap,
    faults: Option<Box<EngineFaults>>,
}

impl TranslationEngine {
    /// Creates an engine from a configuration.
    #[must_use]
    pub fn new(config: MmuConfig) -> Self {
        TranslationEngine {
            config,
            tlb: Tlb::new(config.tlb_entries, config.tlb_ways),
            walkers: WalkerPool::new(
                config.num_ptws,
                config.prmb_slots_per_ptw,
                config.walk_latency_per_level,
                config.tpreg_enabled,
            ),
            stats: TranslationStats::default(),
            energy: EnergyMeter::default(),
            hot: HotTally::default(),
            tap: EngineTap::new(),
            faults: None,
        }
    }

    /// Creates an engine with a seeded device-fault plan attached. Every
    /// walk admission draws from the plan; injected faults are resolved
    /// against the `resilience` mechanisms at admission time (see
    /// [`neummu_faults`]). Both configs are validated here so an invalid
    /// rate or a zero-cycle budget never reaches the hot path.
    pub fn with_faults(
        config: MmuConfig,
        faults: DeviceFaultConfig,
        resilience: ResilienceConfig,
    ) -> Result<Self, FaultError> {
        resilience.validate()?;
        let plan = DeviceFaultPlan::new(faults)?;
        let mut engine = TranslationEngine::new(config);
        engine.faults = Some(Box::new(EngineFaults { plan, resilience }));
        Ok(engine)
    }

    /// Exact injected/detected/recovered/hung fault accounting, when a fault
    /// plan is attached.
    #[must_use]
    pub fn fault_counters(&self) -> Option<&FaultCounters> {
        self.faults.as_ref().map(|f| f.plan.counters())
    }

    /// Builds the translator matching a configuration — the oracle for
    /// [`MmuKind::Oracle`], a cycle-accounted engine otherwise.
    #[must_use]
    pub fn for_config(config: MmuConfig) -> Box<dyn AddressTranslator> {
        if config.kind == MmuKind::Oracle {
            Box::new(OracleTranslator::new(config.page_size))
        } else {
            Box::new(TranslationEngine::new(config))
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> MmuConfig {
        self.config
    }

    /// The IOTLB (for inspection in tests and experiments).
    #[must_use]
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    fn page_number_of(&self, va: VirtAddr) -> u64 {
        va.page_number(self.config.page_size)
    }

    /// Fault-injection gate on the walk-admission path. For the fault-free
    /// engine this is a single `is_none` branch; with a disarmed plan, one
    /// more load. Armed plans first readmit any quarantined walkers whose
    /// cool-down expired, then draw only when a walker is actually free — a
    /// draw must map 1:1 onto a walk admission, or the structural-stall
    /// retry loop would inflate the injected counts. Returns the resolved
    /// fault plus the cycle until which the serving walker quarantines (0
    /// for none). Registered under lint rule H001: must stay
    /// allocation-free.
    #[inline]
    fn fault_check(&mut self, now: u64, walk_latency: u64) -> Option<(InjectedFault, u64)> {
        let faults = self.faults.as_deref_mut()?;
        if faults.plan.is_disarmed() {
            return None;
        }
        self.walkers.readmit_quarantined(now);
        if !self.walkers.has_free_walker() {
            return None;
        }
        let fault = faults.plan.draw_walk(&faults.resilience, walk_latency)?;
        let quarantine_until = if fault.quarantine {
            now + fault.total_latency + faults.resilience.quarantine_cooldown_cycles
        } else {
            0
        };
        Some((fault, quarantine_until))
    }

    /// Admits one fault-perturbed walk: the injected fault's analytically
    /// resolved `total_latency` replaces the fault-free walk latency, the
    /// TPreg is bypassed (a faulty walk reads the full path and must not
    /// pollute the path registers), and a failed or hung fault retires the
    /// walk unmapped — it never fills the TLB and the request reports a
    /// translation fault for the host to resolve. Outlined and cold: even
    /// storm configs perturb a small fraction of walks.
    #[cold]
    #[allow(clippy::too_many_arguments)]
    fn admit_perturbed(
        &mut self,
        asid: Asid,
        page_number: u64,
        full_levels: u32,
        mapped: bool,
        fault: InjectedFault,
        quarantine_until: u64,
        now: u64,
        issue_cycle: u64,
    ) -> Option<TranslationOutcome> {
        let effective_mapped = mapped && !fault.failed;
        let WalkAdmission::Started {
            completes_at,
            levels_read,
            ..
        } = self.walkers.start_walk_perturbed(
            asid,
            now,
            page_number,
            full_levels,
            fault.total_latency,
            effective_mapped,
            quarantine_until,
        )
        else {
            return None;
        };
        self.stats.tlb_misses += 1;
        self.stats.walks += 1;
        self.stats.walk_memory_accesses += u64::from(levels_read);
        self.energy
            .record(EnergyEvent::PageWalkMemoryAccess, u64::from(levels_read));
        if !effective_mapped {
            self.stats.faults += 1;
        }
        self.stats.last_completion_cycle = self.stats.last_completion_cycle.max(completes_at);
        self.stats.stall_cycles += now - issue_cycle;
        self.tap.record(TAP_WALK, asid, now, completes_at, 1);
        if !effective_mapped {
            self.tap.record(TAP_FAULT, asid, now, completes_at, 1);
        }
        let walk_latency = u64::from(full_levels) * self.config.walk_latency_per_level;
        self.emit_fault_event(&fault, asid, now, completes_at, walk_latency);
        Some(TranslationOutcome {
            accept_cycle: now,
            complete_cycle: completes_at,
            source: TranslationSource::PageWalk { levels_read },
            fault: !effective_mapped,
        })
    }

    /// Emits one `fault/<kind>/<outcome>` trace event spanning the perturbed
    /// walk, payload carrying the extra cycles the fault cost over the
    /// fault-free walk (the exact recovery latency for recovered faults).
    /// Faults are emitted individually, unbinned — they are rare and each
    /// one matters to the analyzer.
    fn emit_fault_event(
        &self,
        fault: &InjectedFault,
        asid: Asid,
        start: u64,
        end: u64,
        walk_latency: u64,
    ) {
        if !self.tap.enabled {
            return;
        }
        let (Some(sink), Some(kinds)) = (neummu_trace::global(), fault_trace_kinds()) else {
            return;
        };
        let outcome = if fault.recovered {
            0
        } else if fault.hung {
            2
        } else {
            1
        };
        sink.emit(neummu_trace::Event {
            kind: kinds[fault.kind.index()][outcome],
            asid: asid.raw(),
            start,
            end,
            payload: fault.total_latency.saturating_sub(walk_latency),
        });
    }

    /// Retires every walk completed by `cycle`, filling the TLB. Split-borrow
    /// form shared by the per-request path and the run replays.
    fn retire_walks(
        walkers: &mut WalkerPool,
        tlb: &mut Tlb,
        energy: &mut EnergyMeter,
        tap: &mut EngineTap,
        cycle: u64,
    ) -> usize {
        walkers.drain_completed(cycle, |walk| {
            if walk.mapped {
                tlb.insert_tagged(walk.asid, walk.page_number);
                energy.record(EnergyEvent::TlbFill, 1);
            }
            if walk.merged_requests > 0 {
                energy.record(EnergyEvent::PrmbRead, u64::from(walk.merged_requests));
            }
            tap.record(
                TAP_RETIRE,
                walk.asid,
                walk.completed_at,
                walk.completed_at,
                1 + u64::from(walk.merged_requests),
            );
        })
    }

    /// Retires completed walks up to `cycle`, filling the TLB.
    fn drain_completions(&mut self, cycle: u64) {
        let TranslationEngine {
            walkers,
            tlb,
            energy,
            hot,
            tap,
            ..
        } = self;
        if Self::retire_walks(walkers, tlb, energy, tap, cycle) == 0 {
            hot.retire_fast_exits += 1;
        }
    }

    /// Replays up to `want` same-page requests, one per cycle after
    /// `first_accept`, each of which hits the TLB entry the run's first
    /// request just hit. Returns how many were replayed.
    ///
    /// Consecutive hits on one LRU entry are idempotent — after the first
    /// touch the entry is already most-recently-used — so the replay records
    /// whole hit segments with single batched touches. Walks of *other*
    /// pages that complete mid-run still retire at exactly the cycles the
    /// per-request path would retire them (between the hit that precedes
    /// their completion cycle and the hit that follows it), so TLB insertion
    /// order, recency order and every eviction decision stay bit-identical.
    /// If one of those insertions evicts the run's own entry, the replay
    /// stops at that cycle: per-request, the next lookup would miss.
    fn replay_hit_run(
        &mut self,
        asid: Asid,
        page_number: u64,
        first_accept: u64,
        want: u64,
    ) -> u64 {
        let TranslationEngine {
            config,
            walkers,
            tlb,
            energy,
            stats,
            hot,
            tap,
            faults: _,
        } = self;
        let last_cycle = first_accept + want;
        let mut cursor = first_accept;
        loop {
            // The next walk retirement splits the remaining cycles into a
            // pure-hit segment (before it) and the rest.
            let next = walkers.next_completion();
            let segment_end = match next {
                Some(completes) if completes <= last_cycle => completes - 1,
                _ => last_cycle,
            };
            let segment = segment_end - cursor;
            if segment > 0 {
                let resident = tlb.record_run_hits(asid, page_number, segment);
                debug_assert!(resident, "a hit replay requires a resident entry");
                if !resident {
                    break;
                }
                cursor = segment_end;
            }
            match next {
                Some(completes) if completes <= last_cycle => {
                    Self::retire_walks(walkers, tlb, energy, tap, completes);
                    if !tlb.contains_tagged(asid, page_number) {
                        // The retirement evicted the run's entry: the request
                        // at `completes` would miss. Stop exactly there.
                        break;
                    }
                }
                _ => break,
            }
        }
        let replayed = cursor - first_accept;
        if replayed > 0 {
            stats.requests += replayed;
            stats.tlb_hits += replayed;
            stats.last_completion_cycle = stats
                .last_completion_cycle
                .max(cursor + config.tlb_hit_latency);
            energy.record(EnergyEvent::TlbLookup, replayed);
            hot.runs_coalesced += 1;
            hot.replayed_hits += replayed;
            tap.record(
                TAP_REPLAY_HITS,
                asid,
                first_accept + 1,
                cursor + config.tlb_hit_latency,
                replayed,
            );
        }
        replayed
    }

    /// Replays up to `want` same-page requests, one per cycle after
    /// `first_accept`, on an engine whose merging is disabled: exactly like
    /// the per-request path, each request misses the TLB and spends its own
    /// walk on the next free walker (the redundant-walk behaviour of the
    /// baseline IOMMU, Figure 8). Returns how many were replayed.
    ///
    /// What the replay skips is only what is provably identical across the
    /// run: the TLB set scan (every lookup of an in-flight page misses until
    /// a walk of the page retires — the replay stops the moment that
    /// happens) and the page-table probe (the page is immutable for the
    /// duration of the call, so `full_levels`/`mapped` are those of the
    /// first request). Walker assignment, TPreg probes and fills, heap
    /// order, retirements and all statistics go through the exact
    /// per-request machinery, one request at a time; a request that would
    /// be rejected (no idle walker) is *not* consumed, so the caller's next
    /// `translate_run` re-issues it through the full stall-retry path.
    #[allow(clippy::too_many_arguments)]
    fn replay_walk_run(
        &mut self,
        asid: Asid,
        page_number: u64,
        tag: PathTag,
        full_levels: u32,
        mapped: bool,
        first_accept: u64,
        want: u64,
    ) -> u64 {
        let TranslationEngine {
            config,
            walkers,
            tlb,
            energy,
            stats,
            hot,
            tap,
            faults: _,
        } = self;
        debug_assert!(
            !config.tpreg_enabled,
            "walk replays require constant per-walk levels (no TPreg)"
        );
        let last_cycle = first_accept + want;
        let mut cursor = first_accept;
        while cursor < last_cycle {
            let cycle = cursor + 1;
            if walkers.next_completion().is_some_and(|c| c <= cycle) {
                Self::retire_walks(walkers, tlb, energy, tap, cycle);
                if tlb.contains_tagged(asid, page_number) {
                    // A walk of this page retired: the request at `cycle`
                    // would hit. Stop; the caller's next call replays hits.
                    break;
                }
            }
            if !walkers.has_free_walker() {
                // The request at `cycle` would be rejected and stall.
                break;
            }
            tlb.record_run_misses(1);
            energy.record(EnergyEvent::TlbLookup, 1);
            match walkers.start_walk_tagged(asid, cycle, page_number, tag, full_levels, mapped) {
                WalkAdmission::Started {
                    completes_at,
                    levels_read,
                    ..
                } => {
                    stats.requests += 1;
                    stats.tlb_misses += 1;
                    stats.walks += 1;
                    stats.walk_memory_accesses += u64::from(levels_read);
                    energy.record(EnergyEvent::PageWalkMemoryAccess, u64::from(levels_read));
                    if !mapped {
                        stats.faults += 1;
                    }
                    stats.last_completion_cycle = stats.last_completion_cycle.max(completes_at);
                    cursor = cycle;
                }
                WalkAdmission::Merged { .. } | WalkAdmission::Rejected { .. } => {
                    unreachable!("a free walker accepts a walk when merging is disabled")
                }
            }
        }
        let replayed = cursor - first_accept;
        if replayed > 0 {
            hot.runs_coalesced += 1;
            hot.replayed_walks += replayed;
            tap.record(TAP_REPLAY_WALKS, asid, first_accept + 1, cursor, replayed);
        }
        replayed
    }

    /// Replays up to `want` same-page requests, one per cycle after
    /// `first_accept`, each of which merges into the in-flight walk the
    /// run's first request started or merged into. Returns how many were
    /// replayed.
    ///
    /// Merged requests touch no TLB entry (their lookups miss), so walks of
    /// other pages that complete mid-run retire in completion order exactly
    /// as the per-request path retires them. The replay stops — leaving the
    /// remainder to the caller's next `translate_run` call, whose first
    /// request takes the full path — as soon as anything non-arithmetic
    /// happens: the PRMB fills up, the shared walk's PTS entry disappears,
    /// or the run's page lands in the TLB (a duplicate walk retiring, or the
    /// shared walk itself completing inside the run).
    fn replay_merge_run(
        &mut self,
        asid: Asid,
        page_number: u64,
        first_accept: u64,
        want: u64,
    ) -> u64 {
        let TranslationEngine {
            walkers,
            tlb,
            energy,
            stats,
            hot,
            tap,
            ..
        } = self;
        let last_cycle = first_accept + want;
        let mut cursor = first_accept;
        loop {
            let next = walkers.next_completion();
            let segment_end = match next {
                Some(completes) if completes <= last_cycle => completes - 1,
                _ => last_cycle,
            };
            let segment = segment_end - cursor;
            if segment > 0 {
                let merged = walkers.merge_run_tagged(asid, page_number, segment);
                tlb.record_run_misses(merged);
                cursor += merged;
                if merged < segment {
                    break;
                }
            }
            match next {
                Some(completes) if completes <= last_cycle => {
                    Self::retire_walks(walkers, tlb, energy, tap, completes);
                    if tlb.contains_tagged(asid, page_number) {
                        // The page's translation just landed: the request at
                        // `completes` would hit, not merge.
                        break;
                    }
                }
                _ => break,
            }
        }
        let replayed = cursor - first_accept;
        if replayed > 0 {
            stats.requests += replayed;
            stats.tlb_misses += replayed;
            stats.merged += replayed;
            energy.record(EnergyEvent::TlbLookup, replayed);
            energy.record(EnergyEvent::PtsLookup, replayed);
            energy.record(EnergyEvent::PrmbWrite, replayed);
            hot.runs_coalesced += 1;
            hot.replayed_merges += replayed;
            tap.record(TAP_REPLAY_MERGES, asid, first_accept + 1, cursor, replayed);
        }
        replayed
    }
}

impl AddressTranslator for TranslationEngine {
    fn translate(
        &mut self,
        page_table: &PageTable,
        va: VirtAddr,
        cycle: u64,
    ) -> TranslationOutcome {
        self.translate_tagged(page_table, Asid::GLOBAL, va, cycle)
    }

    fn translate_tagged(
        &mut self,
        page_table: &PageTable,
        asid: Asid,
        va: VirtAddr,
        cycle: u64,
    ) -> TranslationOutcome {
        self.stats.requests += 1;
        let page_number = self.page_number_of(va);
        let mut now = cycle;
        // The page table is immutable for the duration of one translate call,
        // so the probe is computed at most once and reused across the
        // `Rejected → retry` iterations of the structural-stall loop.
        let mut cached_probe: Option<WalkProbe> = None;

        loop {
            // Retire walks that completed before this attempt so their
            // translations are visible in the TLB and their walkers are free.
            self.drain_completions(now);

            // 1. IOTLB lookup.
            self.energy.record(EnergyEvent::TlbLookup, 1);
            if self.tlb.lookup_tagged(asid, page_number) {
                self.stats.tlb_hits += 1;
                let complete = now + self.config.tlb_hit_latency;
                self.stats.last_completion_cycle = self.stats.last_completion_cycle.max(complete);
                self.stats.stall_cycles += now - cycle;
                self.tap.record(TAP_TLB_HIT, asid, now, complete, 1);
                return TranslationOutcome {
                    accept_cycle: now,
                    complete_cycle: complete,
                    source: TranslationSource::TlbHit,
                    fault: false,
                };
            }

            // 2. PTS lookup / PRMB merge.
            if self.config.merging_enabled() {
                self.energy.record(EnergyEvent::PtsLookup, 1);
                if let Some((_walker, completes_at)) =
                    self.walkers.try_merge_tagged(asid, page_number)
                {
                    self.stats.tlb_misses += 1;
                    self.stats.merged += 1;
                    self.energy.record(EnergyEvent::PrmbWrite, 1);
                    self.stats.last_completion_cycle =
                        self.stats.last_completion_cycle.max(completes_at);
                    self.stats.stall_cycles += now - cycle;
                    self.tap.record(TAP_MERGE, asid, now, completes_at, 1);
                    return TranslationOutcome {
                        accept_cycle: now,
                        complete_cycle: completes_at,
                        source: TranslationSource::Merged,
                        fault: false,
                    };
                }
            }

            // 3. Try to start a walk on a free walker.
            let probe = match cached_probe {
                Some(probe) => {
                    self.hot.retry_reprobes_saved += 1;
                    probe
                }
                None => {
                    self.hot.probes += 1;
                    let probe = page_table.probe(va);
                    cached_probe = Some(probe);
                    probe
                }
            };
            let mapped = probe.is_hit();
            // A fault is detected as soon as the walk reaches the missing
            // level; either way at least one entry is read.
            let full_levels = probe.memory_accesses().max(1);
            if let Some((fault, quarantine_until)) = self.fault_check(
                now,
                u64::from(full_levels) * self.config.walk_latency_per_level,
            ) {
                if let Some(outcome) = self.admit_perturbed(
                    asid,
                    page_number,
                    full_levels,
                    mapped,
                    fault,
                    quarantine_until,
                    now,
                    cycle,
                ) {
                    return outcome;
                }
                // Unreachable in practice — the gate drew only after
                // verifying a free walker — but degrade to a structural
                // stall rather than asserting.
                self.stats.structural_stalls += 1;
                now += 1;
                continue;
            }
            if self.config.tpreg_enabled {
                self.energy.record(EnergyEvent::TpregAccess, 1);
            }
            match self.walkers.start_walk_tagged(
                asid,
                now,
                page_number,
                PathTag::of(va),
                full_levels,
                mapped,
            ) {
                WalkAdmission::Started {
                    completes_at,
                    path_match,
                    levels_read,
                    ..
                } => {
                    self.stats.tlb_misses += 1;
                    self.stats.walks += 1;
                    self.stats.walk_memory_accesses += u64::from(levels_read);
                    self.energy
                        .record(EnergyEvent::PageWalkMemoryAccess, u64::from(levels_read));
                    if self.config.tpreg_enabled {
                        self.stats.tpreg_lookups += 1;
                        self.stats.tpreg_skipped_levels +=
                            u64::from(full_levels.saturating_sub(levels_read));
                        if path_match.l4 {
                            self.stats.tpreg_l4_hits += 1;
                        }
                        if path_match.l3 {
                            self.stats.tpreg_l3_hits += 1;
                        }
                        if path_match.l2 {
                            self.stats.tpreg_l2_hits += 1;
                        }
                    }
                    if !mapped {
                        self.stats.faults += 1;
                    }
                    self.stats.last_completion_cycle =
                        self.stats.last_completion_cycle.max(completes_at);
                    self.stats.stall_cycles += now - cycle;
                    self.tap.record(TAP_WALK, asid, now, completes_at, 1);
                    if !mapped {
                        self.tap.record(TAP_FAULT, asid, now, completes_at, 1);
                    }
                    return TranslationOutcome {
                        accept_cycle: now,
                        complete_cycle: completes_at,
                        source: TranslationSource::PageWalk { levels_read },
                        fault: !mapped,
                    };
                }
                WalkAdmission::Merged { completes_at, .. } => {
                    // Unreachable in practice (merging is attempted above),
                    // but handled for completeness.
                    self.stats.tlb_misses += 1;
                    self.stats.merged += 1;
                    self.stats.stall_cycles += now - cycle;
                    self.tap.record(TAP_MERGE, asid, now, completes_at, 1);
                    return TranslationOutcome {
                        accept_cycle: now,
                        complete_cycle: completes_at,
                        source: TranslationSource::Merged,
                        fault: false,
                    };
                }
                WalkAdmission::Rejected { retry_at } => {
                    // All walkers busy and no mergeable slot: the DMA stalls
                    // until translation bandwidth frees up, then retries.
                    self.stats.structural_stalls += 1;
                    now = retry_at.max(now + 1);
                }
            }
        }
    }

    fn translate_run(
        &mut self,
        page_table: &PageTable,
        va: VirtAddr,
        count: u64,
        cycle: u64,
    ) -> RunOutcome {
        self.translate_run_tagged(page_table, Asid::GLOBAL, va, count, cycle)
    }

    fn translate_run_tagged(
        &mut self,
        page_table: &PageTable,
        asid: Asid,
        va: VirtAddr,
        count: u64,
        cycle: u64,
    ) -> RunOutcome {
        debug_assert!(count >= 1, "a run has at least one request");
        let first = self.translate_tagged(page_table, asid, va, cycle);
        let mut out = RunOutcome::single(first);
        if count <= 1 || first.fault {
            return out;
        }
        let page_number = self.page_number_of(va);
        let want = count - 1;
        match first.source {
            TranslationSource::TlbHit => {
                let replayed = self.replay_hit_run(asid, page_number, first.accept_cycle, want);
                if replayed > 0 {
                    out.consumed += replayed;
                    out.complete_stride = 1;
                    out.replay_source = TranslationSource::TlbHit;
                    out.replay_fault = false;
                }
            }
            TranslationSource::Merged | TranslationSource::PageWalk { .. }
                if self.config.merging_enabled() =>
            {
                let replayed = self.replay_merge_run(asid, page_number, first.accept_cycle, want);
                if replayed > 0 {
                    out.consumed += replayed;
                    out.complete_stride = 0;
                    out.replay_source = TranslationSource::Merged;
                    out.replay_fault = false;
                }
            }
            TranslationSource::PageWalk { levels_read } if !self.config.tpreg_enabled => {
                // Merging disabled and no TPreg (the baseline-IOMMU shape):
                // every request of the run spends its own full walk, reading
                // the same number of levels — so the replayed walks complete
                // on the same one-cycle stride their accepts advance on.
                // (With a TPreg, later walks skip levels the first one read
                // and completions stop being arithmetic: no replay.)
                let tag = PathTag::of(va);
                let replayed = self.replay_walk_run(
                    asid,
                    page_number,
                    tag,
                    levels_read,
                    true,
                    first.accept_cycle,
                    want,
                );
                if replayed > 0 {
                    out.consumed += replayed;
                    out.complete_stride = 1;
                    out.replay_source = TranslationSource::PageWalk { levels_read };
                    out.replay_fault = false;
                }
            }
            // An oracle source (which the engine never produces) or a
            // TPreg-accelerated unmerged walk: nothing replays arithmetically.
            _ => {}
        }
        out
    }

    fn stats(&self) -> &TranslationStats {
        &self.stats
    }

    fn energy(&self) -> &EnergyMeter {
        &self.energy
    }

    fn page_size(&self) -> PageSize {
        self.config.page_size
    }

    fn reset(&mut self) {
        self.hot.flush();
        self.tap.flush();
        // An attached fault plan survives the reset but is rebuilt from its
        // config: a reset engine replays the exact same fault schedule from
        // the start, counters cleared — the same "fresh engine" semantics
        // every other field gets.
        let faults = self.faults.take().map(|f| {
            Box::new(EngineFaults {
                plan: DeviceFaultPlan::new(*f.plan.config())
                    .expect("an attached plan was already validated"),
                resilience: f.resilience,
            })
        });
        *self = TranslationEngine::new(self.config);
        self.faults = faults;
    }

    fn invalidate_page(&mut self, va: VirtAddr) {
        let page = self.page_number_of(va);
        // An untagged invalidation (page migration / unmap) is a broadcast
        // shootdown: the page's entry dies in every context.
        self.tlb.invalidate_all_contexts(page);
        self.walkers.invalidate_tpregs();
    }

    fn flush_asid(&mut self, asid: Asid) {
        // Drop the tenant's TLB entries AND discard its in-flight walks:
        // their PTS entries vanish (no later request can merge into a walk
        // of the torn-down page table) and their results retire as unmapped,
        // so a stale translation can never re-enter the TLB after the flush.
        // TPregs are per-walker physical hints refreshed by the next walk.
        self.tlb.flush_asid(asid);
        self.walkers.flush_asid(asid);
    }
}

impl Drop for TranslationEngine {
    fn drop(&mut self) {
        self.hot.flush();
        self.tap.flush();
    }
}

/// Hand-written (not derived) for the same reason as
/// [`OracleTranslator`]'s `Clone`: the tally must not be duplicated, or the
/// two drop-time flushes would double-count every event up to the clone.
/// The trace tap resets for the same reason — a copied bin would emit its
/// pending events once per flush of each copy.
impl Clone for TranslationEngine {
    fn clone(&self) -> Self {
        TranslationEngine {
            config: self.config,
            tlb: self.tlb.clone(),
            walkers: self.walkers.clone(),
            stats: self.stats,
            energy: self.energy.clone(),
            hot: HotTally::default(),
            tap: EngineTap::new(),
            faults: self.faults.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neummu_vmem::{MemNode, PhysFrameNum};

    /// Maps `pages` consecutive 4 KB pages starting at `base`.
    fn mapped_table(base: u64, pages: u64) -> PageTable {
        let mut pt = PageTable::new();
        for i in 0..pages {
            pt.map(
                VirtAddr::new(base + i * 4096),
                PageSize::Size4K,
                PhysFrameNum::new(0x10_0000 + i),
                MemNode::Npu(0),
            )
            .unwrap();
        }
        pt
    }

    #[test]
    fn oracle_translations_are_free() {
        let pt = mapped_table(0x100_0000, 4);
        let mut oracle = OracleTranslator::default();
        let out = oracle.translate(&pt, VirtAddr::new(0x100_0000), 123);
        assert_eq!(out.accept_cycle, 123);
        assert_eq!(out.complete_cycle, 123);
        assert!(!out.fault);
        assert_eq!(oracle.stats().requests, 1);
    }

    #[test]
    fn oracle_memo_survives_bursts_and_tracks_page_table_changes() {
        let mut pt = mapped_table(0x100_0000, 1);
        let mut oracle = OracleTranslator::default();
        // A DMA-style burst to one page: the memo answers the repeats.
        for i in 0..8u64 {
            let out = oracle.translate(&pt, VirtAddr::new(0x100_0000 + i * 512), i);
            assert!(!out.fault);
        }
        // A different, unmapped page re-primes the memo with a negative range.
        assert!(oracle.translate(&pt, VirtAddr::new(0x900_0000), 10).fault);
        assert!(oracle.translate(&pt, VirtAddr::new(0x900_0800), 11).fault);
        // Mapping that page changes the stats stamp: the stale negative memo
        // must not answer.
        pt.map(
            VirtAddr::new(0x900_0000),
            PageSize::Size4K,
            PhysFrameNum::new(0x77),
            MemNode::Npu(0),
        )
        .unwrap();
        assert!(!oracle.translate(&pt, VirtAddr::new(0x900_0800), 12).fault);
        // Unmapping likewise invalidates a stale positive memo.
        pt.unmap(VirtAddr::new(0x900_0000)).unwrap();
        assert!(oracle.translate(&pt, VirtAddr::new(0x900_0800), 13).fault);
        assert_eq!(oracle.stats().faults, 3);
    }

    #[test]
    fn oracle_memo_not_fooled_by_compensating_unmap_map_pairs() {
        // An unmap followed by a map of a different page in the same L1 table
        // returns the structural stats (table and leaf counts) to their prior
        // values; the revision stamp still advances, so the memo must not
        // claim the unmapped page.
        let mut pt = mapped_table(0x100_0000, 2);
        let mut oracle = OracleTranslator::default();
        assert!(!oracle.translate(&pt, VirtAddr::new(0x100_0000), 0).fault);
        let stats_before = pt.stats();
        pt.unmap(VirtAddr::new(0x100_0000)).unwrap();
        pt.map(
            VirtAddr::new(0x100_2000),
            PageSize::Size4K,
            PhysFrameNum::new(0x55),
            MemNode::Npu(0),
        )
        .unwrap();
        assert_eq!(pt.stats(), stats_before, "the pair must be compensating");
        let out = oracle.translate(&pt, VirtAddr::new(0x100_0000), 1);
        assert!(out.fault, "stale memo answered for an unmapped page");
    }

    #[test]
    fn oracle_memo_is_not_confused_by_a_second_page_table() {
        // Two tables with identical mutation counts; the address is mapped
        // only in the first. The memo's revision stamp is globally unique, so
        // switching tables mid-stream must re-probe rather than reuse it.
        let pt_a = mapped_table(0x100_0000, 1);
        let mut pt_b = PageTable::new();
        pt_b.map(
            VirtAddr::new(0x900_0000),
            PageSize::Size4K,
            PhysFrameNum::new(1),
            MemNode::Host,
        )
        .unwrap();
        let mut oracle = OracleTranslator::default();
        assert!(!oracle.translate(&pt_a, VirtAddr::new(0x100_0000), 0).fault);
        assert!(
            oracle.translate(&pt_b, VirtAddr::new(0x100_0000), 1).fault,
            "memo leaked across page tables"
        );
    }

    #[test]
    fn cloned_translators_start_with_an_empty_telemetry_tally() {
        // Both translators flush their tally into the process-global counters
        // on drop; a clone that copied the tally would double-count every
        // event up to the clone point.
        let pt = mapped_table(0xe00_0000, 1);
        let mut oracle = OracleTranslator::default();
        oracle.translate(&pt, VirtAddr::new(0xe00_0000), 0);
        assert_ne!(oracle.hot, HotTally::default());
        assert_eq!(oracle.clone().hot, HotTally::default());
        let mut engine = TranslationEngine::new(MmuConfig::neummu());
        engine.translate(&pt, VirtAddr::new(0xe00_0000), 0);
        assert_ne!(engine.hot, HotTally::default());
        assert_eq!(engine.clone().hot, HotTally::default());
    }

    #[test]
    fn oracle_memo_honors_invalidate_page() {
        let pt = mapped_table(0x200_0000, 1);
        let mut oracle = OracleTranslator::default();
        assert!(!oracle.translate(&pt, VirtAddr::new(0x200_0000), 0).fault);
        // invalidate_page drops the memo; the next request re-probes and
        // still sees the (unchanged) table.
        oracle.invalidate_page(VirtAddr::new(0x200_0000));
        assert!(!oracle.translate(&pt, VirtAddr::new(0x200_0100), 1).fault);
        oracle.reset();
        assert_eq!(oracle.stats().requests, 0);
        assert!(!oracle.translate(&pt, VirtAddr::new(0x200_0200), 2).fault);
    }

    #[test]
    fn first_access_walks_then_tlb_hits() {
        let pt = mapped_table(0x100_0000, 1);
        let mut mmu = TranslationEngine::new(MmuConfig::baseline_iommu());
        let first = mmu.translate(&pt, VirtAddr::new(0x100_0000), 0);
        assert!(matches!(
            first.source,
            TranslationSource::PageWalk { levels_read: 4 }
        ));
        assert_eq!(first.complete_cycle, 400);
        // After the walk completes, the same page hits in the TLB.
        let second = mmu.translate(&pt, VirtAddr::new(0x100_0040), first.complete_cycle + 1);
        assert_eq!(second.source, TranslationSource::TlbHit);
        assert_eq!(second.complete_cycle, second.accept_cycle + 5);
        assert_eq!(mmu.stats().walks, 1);
        assert_eq!(mmu.stats().tlb_hits, 1);
    }

    #[test]
    fn baseline_iommu_spends_redundant_walks_on_bursts_to_one_page() {
        // Back-to-back requests to the same page, issued before the first
        // walk completes: without a PRMB each one burns its own walker.
        let pt = mapped_table(0x200_0000, 1);
        let mut mmu = TranslationEngine::new(MmuConfig::baseline_iommu());
        for i in 0..8u64 {
            let out = mmu.translate(&pt, VirtAddr::new(0x200_0000 + i * 64), i);
            assert!(matches!(out.source, TranslationSource::PageWalk { .. }));
        }
        assert_eq!(mmu.stats().walks, 8);
        assert_eq!(mmu.stats().merged, 0);
        assert_eq!(mmu.stats().walk_memory_accesses, 32);
    }

    #[test]
    fn neummu_merges_bursts_to_one_page() {
        let pt = mapped_table(0x200_0000, 1);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let mut cycle = 0;
        for i in 0..8u64 {
            let out = mmu.translate(&pt, VirtAddr::new(0x200_0000 + i * 64), cycle);
            cycle = out.accept_cycle + 1;
        }
        assert_eq!(mmu.stats().walks, 1);
        assert_eq!(mmu.stats().merged, 7);
        assert!(mmu.stats().merge_rate() > 0.8);
    }

    #[test]
    fn structural_stall_blocks_the_requester() {
        // One walker, no merging: the second request to a *different* page
        // must wait for the first walk to finish.
        let config = MmuConfig::baseline_iommu().with_ptws(1);
        let pt = mapped_table(0x300_0000, 2);
        let mut mmu = TranslationEngine::new(config);
        let first = mmu.translate(&pt, VirtAddr::new(0x300_0000), 0);
        let second = mmu.translate(&pt, VirtAddr::new(0x300_1000), 1);
        assert_eq!(first.complete_cycle, 400);
        assert!(
            second.accept_cycle >= 400,
            "accept at {}",
            second.accept_cycle
        );
        assert_eq!(mmu.stats().structural_stalls, 1);
        assert!(mmu.stats().stall_cycles >= 399);
    }

    #[test]
    fn prmb_overflow_falls_back_to_stalling() {
        // One walker with a single mergeable slot: the third request to the
        // same page can neither merge nor start a walk.
        let config = MmuConfig::baseline_iommu().with_ptws(1).with_prmb_slots(1);
        let pt = mapped_table(0x400_0000, 1);
        let mut mmu = TranslationEngine::new(config);
        let a = mmu.translate(&pt, VirtAddr::new(0x400_0000), 0);
        let b = mmu.translate(&pt, VirtAddr::new(0x400_0100), 1);
        let c = mmu.translate(&pt, VirtAddr::new(0x400_0200), 2);
        assert!(matches!(a.source, TranslationSource::PageWalk { .. }));
        assert_eq!(b.source, TranslationSource::Merged);
        // The third request stalls until the walk retires, then hits the TLB.
        assert!(c.accept_cycle >= a.complete_cycle);
        assert_eq!(c.source, TranslationSource::TlbHit);
    }

    #[test]
    fn tpreg_reduces_walk_memory_accesses_for_streaming_pages() {
        let pages = 64;
        let pt = mapped_table(0x800_0000, pages);
        let with_tpreg = MmuConfig::neummu().with_ptws(1);
        let without_tpreg = MmuConfig::neummu().with_ptws(1).with_tpreg(false);
        let run = |config: MmuConfig| {
            let mut mmu = TranslationEngine::new(config);
            let mut cycle = 0;
            for i in 0..pages {
                let out = mmu.translate(&pt, VirtAddr::new(0x800_0000 + i * 4096), cycle);
                cycle = out.complete_cycle + 1;
            }
            mmu.stats().walk_memory_accesses
        };
        let accesses_with = run(with_tpreg);
        let accesses_without = run(without_tpreg);
        assert_eq!(accesses_without, pages * 4);
        // First walk reads 4 levels, the rest only the leaf.
        assert_eq!(accesses_with, 4 + (pages - 1));
        assert!(accesses_without > 2 * accesses_with);
    }

    #[test]
    fn tpreg_hit_rates_follow_the_figure13_shape() {
        // Stream many consecutive pages through a single walker: L4/L3 always
        // match after the first walk; L2 misses at every 2 MB boundary.
        let pages = 2048; // 8 MB of consecutive pages
        let pt = mapped_table(0x4000_0000, pages);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu().with_ptws(1).with_tlb_entries(16));
        let mut cycle = 0;
        for i in 0..pages {
            let out = mmu.translate(&pt, VirtAddr::new(0x4000_0000 + i * 4096), cycle);
            cycle = out.complete_cycle + 1;
        }
        let stats = mmu.stats();
        assert!(stats.tpreg_l4_rate() > 0.99);
        assert!(stats.tpreg_l3_rate() > 0.99);
        assert!(stats.tpreg_l2_rate() > 0.9);
        assert!(stats.tpreg_l2_rate() < stats.tpreg_l3_rate());
    }

    #[test]
    fn unmapped_page_reports_a_fault_after_a_partial_walk() {
        let pt = PageTable::new();
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let out = mmu.translate(&pt, VirtAddr::new(0x9999_0000), 0);
        assert!(out.fault);
        assert!(matches!(
            out.source,
            TranslationSource::PageWalk { levels_read: 1 }
        ));
        assert_eq!(mmu.stats().faults, 1);
        // A faulting walk never fills the TLB.
        let again = mmu.translate(&pt, VirtAddr::new(0x9999_0000), out.complete_cycle + 1);
        assert!(again.fault);
    }

    #[test]
    fn large_pages_walk_three_levels_and_cover_more_reach() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(0x4000_0000),
            PageSize::Size2M,
            PhysFrameNum::new(0x8_0000),
            MemNode::Npu(0),
        )
        .unwrap();
        let mut mmu =
            TranslationEngine::new(MmuConfig::baseline_iommu().with_page_size(PageSize::Size2M));
        let first = mmu.translate(&pt, VirtAddr::new(0x4000_0000), 0);
        assert!(matches!(
            first.source,
            TranslationSource::PageWalk { levels_read: 3 }
        ));
        assert_eq!(first.complete_cycle, 300);
        // An address 1 MB away is still in the same 2 MB page: TLB hit.
        let second = mmu.translate(&pt, VirtAddr::new(0x4010_0000), 400);
        assert_eq!(second.source, TranslationSource::TlbHit);
    }

    #[test]
    fn invalidate_page_forces_a_new_walk() {
        let pt = mapped_table(0xa00_0000, 1);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let first = mmu.translate(&pt, VirtAddr::new(0xa00_0000), 0);
        let hit = mmu.translate(&pt, VirtAddr::new(0xa00_0000), first.complete_cycle + 1);
        assert_eq!(hit.source, TranslationSource::TlbHit);
        mmu.invalidate_page(VirtAddr::new(0xa00_0000));
        let after = mmu.translate(&pt, VirtAddr::new(0xa00_0000), hit.complete_cycle + 1);
        assert!(matches!(after.source, TranslationSource::PageWalk { .. }));
    }

    #[test]
    fn tagged_contexts_do_not_share_tlb_entries() {
        // Two tenants, same VA, each with its own page table. Tenant A's
        // walk fills the TLB under its ASID; tenant B's request to the same
        // VA must miss and walk B's own table.
        let pt_a = mapped_table(0x500_0000, 1);
        let pt_b = mapped_table(0x500_0000, 1);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let first = mmu.translate_tagged(&pt_a, a, VirtAddr::new(0x500_0000), 0);
        assert!(matches!(first.source, TranslationSource::PageWalk { .. }));
        let hit = mmu.translate_tagged(
            &pt_a,
            a,
            VirtAddr::new(0x500_0000),
            first.complete_cycle + 1,
        );
        assert_eq!(hit.source, TranslationSource::TlbHit);
        let cross =
            mmu.translate_tagged(&pt_b, b, VirtAddr::new(0x500_0000), hit.complete_cycle + 1);
        assert!(
            matches!(cross.source, TranslationSource::PageWalk { .. }),
            "tenant B must not hit on tenant A's TLB entry, got {:?}",
            cross.source
        );
        // Once B's walk retires, both tenants hold their own entry.
        let hit_b = mmu.translate_tagged(
            &pt_b,
            b,
            VirtAddr::new(0x500_0000),
            cross.complete_cycle + 1,
        );
        assert_eq!(hit_b.source, TranslationSource::TlbHit);
        assert_eq!(mmu.tlb().occupancy_of(a), 1);
        assert_eq!(mmu.tlb().occupancy_of(b), 1);
    }

    #[test]
    fn tagged_contexts_do_not_merge_into_each_others_walks() {
        // Back-to-back requests to the same page number from two different
        // contexts, issued before the first walk completes: no cross-tenant
        // PRMB merge may happen.
        let pt_a = mapped_table(0x600_0000, 1);
        let pt_b = mapped_table(0x600_0000, 1);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let first = mmu.translate_tagged(&pt_a, a, VirtAddr::new(0x600_0000), 0);
        let second = mmu.translate_tagged(&pt_b, b, VirtAddr::new(0x600_0000), 1);
        assert!(matches!(first.source, TranslationSource::PageWalk { .. }));
        assert!(matches!(second.source, TranslationSource::PageWalk { .. }));
        assert_eq!(mmu.stats().merged, 0);
        // Same context *does* merge.
        let third = mmu.translate_tagged(&pt_a, a, VirtAddr::new(0x600_0040), 2);
        assert_eq!(third.source, TranslationSource::Merged);
    }

    #[test]
    fn flush_asid_only_evicts_the_flushed_tenant() {
        let pt = mapped_table(0x700_0000, 1);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let wa = mmu.translate_tagged(&pt, a, VirtAddr::new(0x700_0000), 0);
        let wb = mmu.translate_tagged(&pt, b, VirtAddr::new(0x700_0000), wa.complete_cycle + 1);
        let mut cycle = wb.complete_cycle + 1;
        mmu.flush_asid(a);
        let after_a = mmu.translate_tagged(&pt, a, VirtAddr::new(0x700_0000), cycle);
        assert!(matches!(after_a.source, TranslationSource::PageWalk { .. }));
        cycle = after_a.complete_cycle + 1;
        let after_b = mmu.translate_tagged(&pt, b, VirtAddr::new(0x700_0000), cycle);
        assert_eq!(after_b.source, TranslationSource::TlbHit);
    }

    #[test]
    fn untagged_translate_is_the_global_context() {
        let pt = mapped_table(0x800_0000, 1);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let walk = mmu.translate(&pt, VirtAddr::new(0x800_0000), 0);
        let hit = mmu.translate_tagged(
            &pt,
            Asid::GLOBAL,
            VirtAddr::new(0x800_0000),
            walk.complete_cycle + 1,
        );
        assert_eq!(hit.source, TranslationSource::TlbHit);
    }

    #[test]
    fn flush_asid_discards_in_flight_walks() {
        // Tenant A's walk for page P is in flight when A's context is torn
        // down (page-table switch). After the flush, a new same-page request
        // from A must neither merge into the stale walk nor ever see its
        // translation appear in the TLB.
        let pt_old = mapped_table(0x900_0000, 1);
        let pt_new = mapped_table(0x900_0000, 1);
        let a = Asid::new(1);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let stale = mmu.translate_tagged(&pt_old, a, VirtAddr::new(0x900_0000), 0);
        assert!(matches!(stale.source, TranslationSource::PageWalk { .. }));
        mmu.flush_asid(a);
        // Re-issued against the new table, before the stale walk completes:
        // a fresh walk, not a merge into the doomed one.
        let fresh = mmu.translate_tagged(&pt_new, a, VirtAddr::new(0x900_0000), 1);
        assert!(
            matches!(fresh.source, TranslationSource::PageWalk { .. }),
            "merged into a flushed walk: {:?}",
            fresh.source
        );
        // Let both walks retire; exactly one TLB entry (the fresh walk's) may
        // exist — the flushed walk's stale translation must not have landed.
        let after = mmu.translate_tagged(
            &pt_new,
            a,
            VirtAddr::new(0x900_0000),
            stale.complete_cycle.max(fresh.complete_cycle) + 1,
        );
        assert_eq!(after.source, TranslationSource::TlbHit);
        assert_eq!(mmu.tlb().occupancy_of(a), 1);
    }

    #[test]
    fn flush_asid_during_walk_spares_other_tenants_merges() {
        // Flushing tenant A while tenant B's walk is in flight must leave
        // B's PTS entry mergeable.
        let pt = mapped_table(0xf00_0000, 1);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        mmu.translate_tagged(&pt, b, VirtAddr::new(0xf00_0000), 0);
        mmu.flush_asid(a);
        let merged = mmu.translate_tagged(&pt, b, VirtAddr::new(0xf00_0040), 1);
        assert_eq!(merged.source, TranslationSource::Merged);
    }

    #[test]
    fn invalidate_page_is_a_broadcast_across_contexts() {
        // An untagged invalidation (migration/unmap) kills the page's entry
        // in every context, not just GLOBAL.
        let pt = mapped_table(0x110_0000, 2);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let wa = mmu.translate_tagged(&pt, a, VirtAddr::new(0x110_0000), 0);
        let wb = mmu.translate_tagged(&pt, b, VirtAddr::new(0x110_0000), wa.complete_cycle + 1);
        let wc = mmu.translate_tagged(&pt, b, VirtAddr::new(0x110_1000), wb.complete_cycle + 1);
        let mut cycle = wc.complete_cycle + 1;
        mmu.invalidate_page(VirtAddr::new(0x110_0000));
        for asid in [a, b] {
            let out = mmu.translate_tagged(&pt, asid, VirtAddr::new(0x110_0000), cycle);
            assert!(
                matches!(out.source, TranslationSource::PageWalk { .. }),
                "{asid}: stale entry survived the broadcast shootdown"
            );
            cycle = out.complete_cycle + 1;
        }
        // The *other* page's entry survives.
        let other = mmu.translate_tagged(&pt, b, VirtAddr::new(0x110_1000), cycle);
        assert_eq!(other.source, TranslationSource::TlbHit);
    }

    #[test]
    fn reset_clears_state_but_keeps_configuration() {
        let pt = mapped_table(0xb00_0000, 2);
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        mmu.translate(&pt, VirtAddr::new(0xb00_0000), 0);
        mmu.reset();
        assert_eq!(mmu.stats().requests, 0);
        assert_eq!(mmu.config().kind, MmuKind::NeuMmu);
        assert_eq!(mmu.energy().total_nj(), 0.0);
    }

    #[test]
    fn for_config_dispatches_oracle() {
        let pt = mapped_table(0xc00_0000, 1);
        let mut oracle = TranslationEngine::for_config(MmuConfig::oracle());
        let out = oracle.translate(&pt, VirtAddr::new(0xc00_0000), 7);
        assert_eq!(out.source, TranslationSource::Oracle);
        let mut engine = TranslationEngine::for_config(MmuConfig::neummu());
        let out = engine.translate(&pt, VirtAddr::new(0xc00_0000), 7);
        assert!(matches!(out.source, TranslationSource::PageWalk { .. }));
    }

    /// Drives the same DMA-shaped burst stream (runs of `txns_per_page`
    /// requests per page, one request per cycle after the previous accept)
    /// through a per-request engine and a run-coalesced engine, asserting
    /// bit-identical outcomes, statistics, energy and TLB counters.
    fn assert_run_path_matches_per_request(
        config: MmuConfig,
        pt: &PageTable,
        pages: &[u64],
        base: u64,
        txns_per_page: u64,
        passes: u32,
    ) {
        let mut reference = TranslationEngine::new(config);
        let mut coalesced = TranslationEngine::new(config);
        let mut ref_cycle = 0u64;
        let mut run_cycle = 0u64;
        let page_bytes = config.page_size.bytes();
        let txn_bytes = page_bytes / txns_per_page;
        for pass in 0..passes {
            for &page in pages {
                let va = VirtAddr::new(base + page * page_bytes);
                let mut expected = Vec::new();
                for i in 0..txns_per_page {
                    let out = reference.translate(pt, va.add(i * txn_bytes), ref_cycle);
                    ref_cycle = out.accept_cycle + 1;
                    expected.push(out);
                }
                let mut produced = Vec::new();
                let mut remaining = txns_per_page;
                while remaining > 0 {
                    let index = txns_per_page - remaining;
                    let out = coalesced.translate_run(
                        pt,
                        va.add(index * txn_bytes),
                        remaining,
                        run_cycle,
                    );
                    assert!(out.consumed >= 1 && out.consumed <= remaining);
                    for j in 0..out.consumed {
                        produced.push(out.outcome(j));
                    }
                    run_cycle = out.last_accept() + 1;
                    remaining -= out.consumed;
                }
                assert_eq!(produced, expected, "pass {pass} page {page:#x}");
            }
        }
        assert_eq!(ref_cycle, run_cycle);
        assert_eq!(reference.stats(), coalesced.stats());
        assert_eq!(reference.tlb().lookups(), coalesced.tlb().lookups());
        assert_eq!(reference.tlb().hits(), coalesced.tlb().hits());
        assert_eq!(reference.tlb().fills(), coalesced.tlb().fills());
        assert_eq!(reference.tlb().occupancy(), coalesced.tlb().occupancy());
        assert!((reference.energy().total_nj() - coalesced.energy().total_nj()).abs() < 1e-9);
        for event in [
            neummu_energy::EnergyEvent::TlbLookup,
            neummu_energy::EnergyEvent::TlbFill,
            neummu_energy::EnergyEvent::PtsLookup,
            neummu_energy::EnergyEvent::PrmbWrite,
            neummu_energy::EnergyEvent::PrmbRead,
            neummu_energy::EnergyEvent::PageWalkMemoryAccess,
        ] {
            assert_eq!(
                reference.energy().count(event),
                coalesced.energy().count(event),
                "{event:?}"
            );
        }
    }

    #[test]
    fn run_path_matches_per_request_for_streaming_merges() {
        // NeuMMU streaming: every page's first request walks, the other seven
        // merge. Two passes so the second pass exercises the TLB-hit replay
        // while earlier walks retire mid-run.
        let pt = mapped_table(0x100_0000, 64);
        let pages: Vec<u64> = (0..64).collect();
        assert_run_path_matches_per_request(MmuConfig::neummu(), &pt, &pages, 0x100_0000, 8, 2);
    }

    #[test]
    fn run_path_matches_per_request_when_merging_is_disabled() {
        // Baseline IOMMU: no PRMB, every request spends its own walk; the run
        // path must degenerate to the per-request sequence.
        let pt = mapped_table(0x200_0000, 16);
        let pages: Vec<u64> = (0..16).collect();
        assert_run_path_matches_per_request(
            MmuConfig::baseline_iommu(),
            &pt,
            &pages,
            0x200_0000,
            8,
            2,
        );
    }

    #[test]
    fn run_path_matches_per_request_under_prmb_exhaustion() {
        // One mergeable slot: runs exhaust the PRMB immediately and fall back
        // mid-run (structural stalls included).
        let config = MmuConfig::neummu().with_ptws(2).with_prmb_slots(1);
        let pt = mapped_table(0x300_0000, 16);
        let pages: Vec<u64> = (0..16).collect();
        assert_run_path_matches_per_request(config, &pt, &pages, 0x300_0000, 8, 2);
    }

    #[test]
    fn run_path_matches_per_request_under_tlb_thrashing() {
        // A tiny TLB with a working set larger than capacity: hit-regime
        // replays race against evictions from mid-run retirements.
        let config = MmuConfig::neummu().with_tlb_entries(4);
        let pt = mapped_table(0x400_0000, 32);
        let pages: Vec<u64> = (0..32).collect();
        assert_run_path_matches_per_request(config, &pt, &pages, 0x400_0000, 8, 3);
    }

    #[test]
    fn run_path_matches_per_request_with_2mb_pages() {
        let mut pt = PageTable::new();
        for i in 0..4u64 {
            pt.map(
                VirtAddr::new(0x4000_0000 + i * (2 << 20)),
                PageSize::Size2M,
                PhysFrameNum::new(0x8_0000 + i * 512),
                MemNode::Npu(0),
            )
            .unwrap();
        }
        let config = MmuConfig::neummu().with_page_size(PageSize::Size2M);
        let pages: Vec<u64> = (0..4).collect();
        // 64 transactions per 2 MB page keeps the test fast while spanning
        // walk completion inside each run.
        assert_run_path_matches_per_request(config, &pt, &pages, 0x4000_0000, 64, 2);
    }

    #[test]
    fn tagged_run_replays_do_not_cross_contexts() {
        let pt_a = mapped_table(0x500_0000, 1);
        let pt_b = mapped_table(0x500_0000, 1);
        let (a, b) = (Asid::new(1), Asid::new(2));
        let mut mmu = TranslationEngine::new(MmuConfig::neummu());
        let run_a = mmu.translate_run_tagged(&pt_a, a, VirtAddr::new(0x500_0000), 8, 0);
        assert_eq!(run_a.consumed, 8);
        assert_eq!(run_a.replay_source, TranslationSource::Merged);
        // Tenant B's run to the same page number cannot merge into A's walk:
        // its first request starts a fresh walk and its replays merge into
        // *that* walk only.
        let run_b = mmu.translate_run_tagged(
            &pt_b,
            b,
            VirtAddr::new(0x500_0000),
            8,
            run_a.last_accept() + 1,
        );
        assert_eq!(run_b.consumed, 8);
        assert!(matches!(
            run_b.first.source,
            TranslationSource::PageWalk { .. }
        ));
        assert_eq!(mmu.stats().walks, 2);
        assert_eq!(mmu.stats().merged, 14);
    }

    #[test]
    fn oracle_run_replays_memoized_bursts_and_partial_faults() {
        let pt = mapped_table(0x600_0000, 1);
        let mut oracle = OracleTranslator::default();
        let run = oracle.translate_run(&pt, VirtAddr::new(0x600_0000), 8, 5);
        assert_eq!(run.consumed, 8);
        assert_eq!(run.complete_stride, 1);
        assert_eq!(run.outcome(7).accept_cycle, 12);
        assert_eq!(run.outcome(7).complete_cycle, 12);
        assert!(!run.outcome(7).fault);
        assert_eq!(oracle.stats().requests, 8);
        assert_eq!(oracle.stats().last_completion_cycle, 12);
        // An unmapped page replays its faults from the negative memo.
        let faulting = oracle.translate_run(&pt, VirtAddr::new(0x900_0000), 4, 20);
        assert_eq!(faulting.consumed, 4);
        assert!(faulting.first.fault && faulting.replay_fault);
        assert_eq!(oracle.stats().faults, 4);
        // Same totals as four per-request faulting translates.
        let mut reference = OracleTranslator::default();
        let mut cycle = 20;
        for _ in 0..4 {
            let out = reference.translate(&pt, VirtAddr::new(0x900_0000), cycle);
            assert!(out.fault);
            cycle = out.accept_cycle + 1;
        }
        assert_eq!(reference.stats().faults, 4);
    }

    #[test]
    fn energy_accumulates_walk_accesses() {
        let pt = mapped_table(0xd00_0000, 4);
        let mut mmu = TranslationEngine::new(MmuConfig::baseline_iommu());
        let mut cycle = 0;
        for i in 0..4u64 {
            let out = mmu.translate(&pt, VirtAddr::new(0xd00_0000 + i * 4096), cycle);
            cycle = out.accept_cycle + 1;
        }
        assert_eq!(
            mmu.energy()
                .count(neummu_energy::EnergyEvent::PageWalkMemoryAccess),
            16
        );
        assert!(mmu.energy().total_nj() > 0.0);
    }

    #[test]
    fn zero_rate_fault_plan_is_bit_identical_to_no_plan() {
        let pt = mapped_table(0xa00_0000, 64);
        let mut plain = TranslationEngine::new(MmuConfig::neummu());
        let mut faulted = TranslationEngine::with_faults(
            MmuConfig::neummu(),
            DeviceFaultConfig::none(0xFEED),
            ResilienceConfig::all_on(),
        )
        .unwrap();
        let mut cycle = 0;
        for i in 0..512u64 {
            let va = VirtAddr::new(0xa00_0000 + (i % 64) * 4096);
            let a = plain.translate(&pt, va, cycle);
            let b = faulted.translate(&pt, va, cycle);
            assert_eq!(a, b, "request {i} diverged under a disarmed plan");
            cycle = a.accept_cycle + 1;
        }
        assert_eq!(plain.stats(), faulted.stats());
        assert_eq!(faulted.fault_counters(), Some(&FaultCounters::default()));
    }

    #[test]
    fn recovered_fault_delays_but_still_fills_the_tlb() {
        // Stuck-walker faults at rate 1.0 with the watchdog on: the first
        // touch of a page is a perturbed walk costing watchdog + walk
        // cycles, recovered — so the repeat touch must be a TLB hit.
        let pt = mapped_table(0xa00_0000, 4);
        let config = MmuConfig::neummu();
        let resilience = ResilienceConfig::all_on().with_quarantine(false);
        let mut mmu = TranslationEngine::with_faults(
            config,
            DeviceFaultConfig::none(1).with_kind(
                neummu_faults::FaultKind::WalkerStuck,
                neummu_faults::FaultRate::of(1.0),
            ),
            resilience,
        )
        .unwrap();
        let out = mmu.translate(&pt, VirtAddr::new(0xa00_0000), 0);
        assert!(!out.fault);
        let walk_latency = 4 * config.walk_latency_per_level;
        assert_eq!(
            out.complete_cycle,
            resilience.watchdog_cycles + walk_latency
        );
        let counters = mmu.fault_counters().unwrap();
        assert_eq!(counters.total_recovered(), 1);
        let repeat = mmu.translate(&pt, VirtAddr::new(0xa00_0000), out.complete_cycle + 1);
        assert_eq!(repeat.source, TranslationSource::TlbHit);
    }

    #[test]
    fn hung_fault_reports_a_translation_fault_and_never_fills_the_tlb() {
        // Dropped responses with retransmit off hang to the livelock bound
        // and retire unmapped even though the page is mapped.
        let pt = mapped_table(0xa00_0000, 4);
        let resilience = ResilienceConfig::all_off();
        let mut mmu = TranslationEngine::with_faults(
            MmuConfig::neummu(),
            DeviceFaultConfig::none(2).with_kind(
                neummu_faults::FaultKind::DroppedResponse,
                neummu_faults::FaultRate::of(1.0),
            ),
            resilience,
        )
        .unwrap();
        let out = mmu.translate(&pt, VirtAddr::new(0xa00_0000), 0);
        assert!(out.fault, "a hung walk yields no usable translation");
        assert_eq!(out.complete_cycle, resilience.livelock_bound_cycles);
        assert_eq!(mmu.fault_counters().unwrap().total_hung(), 1);
        // Past the livelock bound the walk has retired — unmapped, so the
        // TLB was never filled and the next touch walks again.
        let repeat = mmu.translate(&pt, VirtAddr::new(0xa00_0000), out.complete_cycle + 1);
        assert!(matches!(repeat.source, TranslationSource::PageWalk { .. }));
    }

    #[test]
    fn quarantine_shrinks_the_pool_and_readmits_after_cooldown() {
        // One walker, stuck fault with watchdog + quarantine: the walk
        // recovers, its walker parks, and until the cool-down expires the
        // only walker is gone — a second translation must stall until
        // readmission rather than hang or panic on an empty pool.
        let pt = mapped_table(0xa00_0000, 4);
        let config = MmuConfig::neummu().with_ptws(1);
        let resilience = ResilienceConfig::all_on();
        let mut mmu = TranslationEngine::with_faults(
            config,
            DeviceFaultConfig::none(3).with_kind(
                neummu_faults::FaultKind::WalkerStuck,
                neummu_faults::FaultRate::bursty(1.0, 1),
            ),
            resilience,
        )
        .unwrap();
        let first = mmu.translate(&pt, VirtAddr::new(0xa00_0000), 0);
        assert!(!first.fault);
        let quarantine_ends = first.complete_cycle + resilience.quarantine_cooldown_cycles;
        // Issued right after the first walk retires: every walker is parked,
        // so the request stalls until readmission (where rate 1.0 strikes
        // again and the perturbed walk starts at the readmission cycle).
        let second = mmu.translate(&pt, VirtAddr::new(0xa00_1000), first.complete_cycle + 1);
        assert!(second.accept_cycle >= quarantine_ends);
        assert!(mmu.stats().structural_stalls > 0);
    }

    #[test]
    fn fault_plan_survives_reset_and_replays_from_the_start() {
        let pt = mapped_table(0xa00_0000, 64);
        let config = MmuConfig::neummu();
        let faults = DeviceFaultConfig::uniform(7, 0.25);
        let resilience = ResilienceConfig::all_on();
        let mut mmu = TranslationEngine::with_faults(config, faults, resilience).unwrap();
        let run = |mmu: &mut TranslationEngine| {
            let mut cycle = 0;
            let mut outs = Vec::new();
            for i in 0..256u64 {
                let out = mmu.translate(&pt, VirtAddr::new(0xa00_0000 + (i % 64) * 4096), cycle);
                outs.push(out);
                cycle = out.accept_cycle + 1;
            }
            outs
        };
        let first = run(&mut mmu);
        let counters_first = mmu.fault_counters().unwrap().clone();
        assert!(counters_first.total_injected() > 0);
        AddressTranslator::reset(&mut mmu);
        assert_eq!(mmu.fault_counters(), Some(&FaultCounters::default()));
        let second = run(&mut mmu);
        assert_eq!(
            first, second,
            "a reset engine must replay the same schedule"
        );
        assert_eq!(mmu.fault_counters(), Some(&counters_first));
    }
}
