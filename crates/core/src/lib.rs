//! The NeuMMU core: address-translation hardware models for NPUs.
//!
//! This crate implements the paper's contribution (Section IV) and the
//! baselines it is compared against:
//!
//! * a GPU-style **baseline IOMMU**: a 2048-entry IOTLB in front of 8 shared
//!   hardware page-table walkers (Table I),
//! * **NeuMMU**: the same IOTLB plus
//!   - a *Pending Translation Scoreboard* (PTS) that detects translation
//!     requests to pages whose walk is already in flight,
//!   - a per-walker *Pending Request Merging Buffer* (PRMB) that merges such
//!     requests instead of spending another walk (Section IV-A),
//!   - a much larger pool of parallel page-table walkers, making the design
//!     throughput-centric (Section IV-B), and
//!   - a per-walker *Translation Path Register* (TPreg) that skips the upper
//!     levels of the radix walk when the L4/L3/L2 indices match the previous
//!     walk (Section IV-C),
//! * an **oracular MMU** in which every translation completes instantly — the
//!   normalization baseline of every figure,
//! * the **UPTC / TPC** MMU-cache design points used in the Section IV-C
//!   design-space discussion.
//!
//! The cycle-level behaviour is exposed through [`engine::TranslationEngine`],
//! which the NPU simulator drives with one translation request per DMA
//! transaction.
//!
//! # Example
//!
//! ```
//! use neummu_mmu::prelude::*;
//! use neummu_vmem::prelude::*;
//!
//! # fn main() -> Result<(), VmemError> {
//! // Map a small segment and translate a burst of addresses through NeuMMU.
//! let mut memory = PhysicalMemory::with_npus(1, 1 << 30);
//! let mut space = AddressSpace::new("npu0");
//! let seg = space.alloc_segment(
//!     "weights",
//!     1 << 20,
//!     SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
//!     &mut memory,
//! )?;
//! let mut mmu = TranslationEngine::new(MmuConfig::neummu());
//! let mut cycle = 0;
//! for i in 0..64 {
//!     let outcome = mmu.translate(space.page_table(), seg.start().add(i * 512), cycle);
//!     cycle = outcome.accept_cycle + 1;
//! }
//! assert_eq!(mmu.stats().requests, 64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod counters;
pub mod engine;
pub mod mmu_cache;
pub mod stats;
pub mod tlb;
pub mod tpreg;
pub mod walker;

pub use config::{MmuConfig, MmuKind};
pub use counters::HotPathCounters;
pub use engine::{
    AddressTranslator, OracleTranslator, RunOutcome, TranslationEngine, TranslationOutcome,
    TranslationSource,
};
pub use mmu_cache::{MmuCacheKind, TranslationPathCache, UnifiedPageTableCache, WalkCache};
// Fault-injection vocabulary, re-exported so downstream crates configuring a
// faulted engine need not depend on `neummu_faults` directly.
pub use neummu_faults::{
    DeviceFaultConfig, DeviceFaultPlan, FaultCounters, FaultError, FaultKind, FaultRate,
    InjectedFault, ResilienceConfig,
};
pub use stats::TranslationStats;
pub use tlb::Tlb;
pub use tpreg::TranslationPathRegister;
pub use walker::WalkerPool;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::config::{MmuConfig, MmuKind};
    pub use crate::engine::{
        AddressTranslator, OracleTranslator, RunOutcome, TranslationEngine, TranslationOutcome,
        TranslationSource,
    };
    pub use crate::mmu_cache::{
        MmuCacheKind, TranslationPathCache, UnifiedPageTableCache, WalkCache,
    };
    pub use crate::stats::TranslationStats;
    pub use crate::tlb::Tlb;
    pub use crate::tpreg::TranslationPathRegister;
    pub use crate::walker::WalkerPool;
}
