//! MMU-cache design points: the unified page-table cache (UPTC) and the
//! translation path cache (TPC).
//!
//! Section IV-C of the paper compares two classic translation-caching
//! organizations before settling on the single-entry-per-walker TPreg:
//!
//! * the **UPTC** keeps individual page-table entries, tagged by the entry's
//!   *physical* address, in one unified cache shared by all levels (the
//!   organization associated with AMD processors), and
//! * the **TPC** keeps whole upper paths (the L4/L3/L2 entries concatenated),
//!   tagged by the *virtual* L4/L3/L2 indices (the organization associated
//!   with Intel processors).
//!
//! Both are driven with the sequence of page-table walks an engine performs;
//! they report how many memory accesses each walk can skip and their hit
//! rates, reproducing the design-space numbers quoted in the paper (TPC is
//! more effective at capturing NPU translation locality and eliminates more
//! walks than UPTC).

use serde::{Deserialize, Serialize};

use neummu_vmem::{PathTag, VirtAddr, WalkIndexLevel, WalkPath};

/// Which MMU-cache organization a [`WalkCache`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MmuCacheKind {
    /// Unified page-table cache (physically tagged individual entries).
    Uptc,
    /// Translation path cache (virtually tagged upper paths).
    Tpc,
}

/// The outcome of probing an MMU cache with one walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkCacheOutcome {
    /// Page-table levels whose memory reads the cache eliminated.
    pub skipped_levels: u32,
    /// Page-table levels that still had to be read from memory.
    pub levels_read: u32,
}

/// Common interface of the UPTC and TPC models.
pub trait WalkCache {
    /// Probes the cache with a walk, updates its contents, and returns how
    /// many level reads were skipped.
    fn access(&mut self, walk: &WalkPath) -> WalkCacheOutcome;

    /// Which organization this cache implements.
    fn kind(&self) -> MmuCacheKind;

    /// Entry-lookup hit rate observed so far.
    fn hit_rate(&self) -> f64;

    /// Total page-table memory accesses eliminated so far.
    fn skipped_accesses(&self) -> u64;
}

/// Least-recently-used bookkeeping shared by both cache models.
///
/// Entries live in parallel vectors rather than a hash map: the capacities
/// modelled here are tiny (the study sweep uses 16 entries, the TPreg one),
/// linear probes are cheaper than hashing at that size, and — the property
/// `neummu_lint` rule D001 enforces — every traversal visits entries in a
/// deterministic order instead of `RandomState` hash order. Eviction picks
/// the unique stamp minimum, so victims are identical to the previous
/// hash-map implementation's.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct LruCore<K: PartialEq + Clone> {
    keys: Vec<K>,
    stamps: Vec<u64>,
    capacity: usize,
    stamp: u64,
}

impl<K: PartialEq + Clone> LruCore<K> {
    fn new(capacity: usize) -> Self {
        LruCore {
            keys: Vec::new(),
            stamps: Vec::new(),
            capacity,
            stamp: 0,
        }
    }

    fn position(&self, key: &K) -> Option<usize> {
        self.keys.iter().position(|k| k == key)
    }

    fn touch_at(&mut self, index: usize) {
        self.stamp += 1;
        self.stamps[index] = self.stamp;
    }

    fn contains_and_touch(&mut self, key: &K) -> bool {
        self.stamp += 1;
        match self.position(key) {
            Some(i) => {
                self.stamps[i] = self.stamp;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, key: K) {
        self.stamp += 1;
        if let Some(i) = self.position(&key) {
            self.stamps[i] = self.stamp;
            return;
        }
        if self.keys.len() >= self.capacity {
            if let Some(victim) = self
                .stamps
                .iter()
                .enumerate()
                .min_by_key(|(_, stamp)| **stamp)
                .map(|(i, _)| i)
            {
                self.keys.swap_remove(victim);
                self.stamps.swap_remove(victim);
            }
        }
        self.keys.push(key);
        self.stamps.push(self.stamp);
    }
}

/// A unified page-table cache: individual entries tagged by physical address.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnifiedPageTableCache {
    lru: LruCore<(u32, u16)>,
    lookups: u64,
    hits: u64,
    skipped: u64,
}

impl UnifiedPageTableCache {
    /// Creates a UPTC with the given entry count.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        UnifiedPageTableCache {
            lru: LruCore::new(entries.max(1)),
            lookups: 0,
            hits: 0,
            skipped: 0,
        }
    }
}

impl WalkCache for UnifiedPageTableCache {
    fn access(&mut self, walk: &WalkPath) -> WalkCacheOutcome {
        let mut skipped = 0u32;
        let mut read = 0u32;
        for step in &walk.steps {
            // The leaf (L1) entry is never cached by an MMU cache; it is what
            // the walk produces.
            if step.level == WalkIndexLevel::L1 {
                read += 1;
                continue;
            }
            let key = (step.table.index(), step.index);
            self.lookups += 1;
            if self.lru.contains_and_touch(&key) {
                self.hits += 1;
                skipped += 1;
            } else {
                read += 1;
                self.lru.insert(key);
            }
        }
        self.skipped += u64::from(skipped);
        WalkCacheOutcome {
            skipped_levels: skipped,
            levels_read: read,
        }
    }

    fn kind(&self) -> MmuCacheKind {
        MmuCacheKind::Uptc
    }

    fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    fn skipped_accesses(&self) -> u64 {
        self.skipped
    }
}

/// A translation path cache: whole upper paths tagged by virtual indices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TranslationPathCache {
    lru: LruCore<(u16, u16, u16)>,
    lookups: u64,
    /// Hits at each depth: [L4-only, L4+L3, full path].
    depth_hits: [u64; 3],
    skipped: u64,
}

impl TranslationPathCache {
    /// Creates a TPC with the given entry count (1 entry models the TPreg).
    #[must_use]
    pub fn new(entries: usize) -> Self {
        TranslationPathCache {
            lru: LruCore::new(entries.max(1)),
            lookups: 0,
            depth_hits: [0; 3],
            skipped: 0,
        }
    }

    /// Tag-match rates at the L4/L3/L2 indices (the quantities of Figure 13).
    #[must_use]
    pub fn depth_hit_rates(&self) -> (f64, f64, f64) {
        if self.lookups == 0 {
            return (0.0, 0.0, 0.0);
        }
        let total = self.lookups as f64;
        (
            self.depth_hits[0] as f64 / total,
            self.depth_hits[1] as f64 / total,
            self.depth_hits[2] as f64 / total,
        )
    }

    fn best_match(&mut self, tag: PathTag) -> u32 {
        // Probe the cache for the longest matching prefix among its entries.
        let mut best = 0u32;
        let mut full_match = None;
        for (i, key) in self.lru.keys.iter().enumerate() {
            let l4 = key.0 == tag.l4;
            let l3 = l4 && key.1 == tag.l3;
            let l2 = l3 && key.2 == tag.l2;
            let depth = u32::from(l4) + u32::from(l3) + u32::from(l2);
            if depth > best {
                best = depth;
            }
            if best == 3 {
                full_match = Some(i);
                break;
            }
        }
        if let Some(i) = full_match {
            // Touch the fully matching entry to keep it resident.
            self.lru.touch_at(i);
        }
        best
    }
}

impl WalkCache for TranslationPathCache {
    fn access(&mut self, walk: &WalkPath) -> WalkCacheOutcome {
        let tag = PathTag::of(walk.va);
        self.lookups += 1;
        let depth = self.best_match(tag);
        if depth >= 1 {
            self.depth_hits[0] += 1;
        }
        if depth >= 2 {
            self.depth_hits[1] += 1;
        }
        if depth >= 3 {
            self.depth_hits[2] += 1;
        }
        // The cache can skip at most the upper levels the walk would read
        // (never the leaf).
        let total_levels = walk.memory_accesses();
        let skippable = total_levels.saturating_sub(1);
        let skipped = depth.min(skippable);
        self.skipped += u64::from(skipped);
        self.lru.insert((tag.l4, tag.l3, tag.l2));
        WalkCacheOutcome {
            skipped_levels: skipped,
            levels_read: total_levels - skipped,
        }
    }

    fn kind(&self) -> MmuCacheKind {
        MmuCacheKind::Tpc
    }

    fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.depth_hits[0] as f64 / self.lookups as f64
        }
    }

    fn skipped_accesses(&self) -> u64 {
        self.skipped
    }
}

/// Convenience helper: runs a sequence of walked virtual addresses through a
/// cache against a page table and returns (skipped, read) totals.
pub fn replay_walks<C: WalkCache>(
    cache: &mut C,
    page_table: &neummu_vmem::PageTable,
    walked: impl IntoIterator<Item = VirtAddr>,
) -> (u64, u64) {
    let mut skipped = 0u64;
    let mut read = 0u64;
    for va in walked {
        let path = page_table.walk(va);
        let outcome = cache.access(&path);
        skipped += u64::from(outcome.skipped_levels);
        read += u64::from(outcome.levels_read);
    }
    (skipped, read)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neummu_vmem::{MemNode, PageSize, PageTable, PhysFrameNum};

    fn streaming_table(pages: u64) -> PageTable {
        let mut pt = PageTable::new();
        for i in 0..pages {
            pt.map(
                VirtAddr::new(0x4000_0000 + i * 4096),
                PageSize::Size4K,
                PhysFrameNum::new(0x100 + i),
                MemNode::Npu(0),
            )
            .unwrap();
        }
        pt
    }

    fn streaming_addrs(pages: u64) -> Vec<VirtAddr> {
        (0..pages)
            .map(|i| VirtAddr::new(0x4000_0000 + i * 4096))
            .collect()
    }

    #[test]
    fn tpc_captures_streaming_locality_better_than_a_cold_start() {
        let pages = 1024;
        let pt = streaming_table(pages);
        let mut tpc = TranslationPathCache::new(4);
        let (skipped, read) = replay_walks(&mut tpc, &pt, streaming_addrs(pages));
        // After the first walk, all upper levels hit: ~3 skips per walk.
        assert!(skipped > 3 * (pages - 10));
        assert!(read < pages + 40);
        assert!(tpc.hit_rate() > 0.99);
        let (l4, l3, l2) = tpc.depth_hit_rates();
        assert!(l4 >= l3 && l3 >= l2);
        assert!(l2 > 0.9);
    }

    #[test]
    fn uptc_needs_more_entries_for_the_same_stream() {
        let pages = 1024;
        let pt = streaming_table(pages);
        let mut uptc = UnifiedPageTableCache::new(4);
        let mut tpc = TranslationPathCache::new(4);
        let (uptc_skipped, _) = replay_walks(&mut uptc, &pt, streaming_addrs(pages));
        let (tpc_skipped, _) = replay_walks(&mut tpc, &pt, streaming_addrs(pages));
        // The paper's conclusion: TPC eliminates at least as many page-table
        // reads as UPTC on NPU-style streaming walks.
        assert!(tpc_skipped >= uptc_skipped);
        assert!(uptc.hit_rate() > 0.5);
    }

    #[test]
    fn single_entry_tpc_models_the_tpreg() {
        let pages = 2048; // crosses several 2 MB boundaries
        let pt = streaming_table(pages);
        let mut tpreg_like = TranslationPathCache::new(1);
        replay_walks(&mut tpreg_like, &pt, streaming_addrs(pages));
        let (l4, l3, l2) = tpreg_like.depth_hit_rates();
        assert!(l4 > 0.99);
        assert!(l3 > 0.99);
        assert!(l2 < l3);
    }

    #[test]
    fn random_far_apart_walks_defeat_both_caches() {
        let mut pt = PageTable::new();
        let mut addrs = Vec::new();
        for i in 0..64u64 {
            // Pages 1 GiB apart: different L3/L2 indices every time.
            let va = VirtAddr::new(i << 30);
            pt.map(
                va,
                PageSize::Size4K,
                PhysFrameNum::new(i + 1),
                MemNode::Host,
            )
            .unwrap();
            addrs.push(va);
        }
        let mut tpc = TranslationPathCache::new(1);
        let (skipped, _) = replay_walks(&mut tpc, &pt, addrs.clone());
        // Only the shared L4 entry can ever be skipped.
        assert!(skipped <= 64);
        let (_, _, l2) = tpc.depth_hit_rates();
        assert_eq!(l2, 0.0);
    }

    #[test]
    fn uptc_shares_entries_across_neighbouring_walks() {
        let pt = streaming_table(8);
        let mut uptc = UnifiedPageTableCache::new(64);
        let first = uptc.access(&pt.walk(VirtAddr::new(0x4000_0000)));
        // The first walk reads everything (cold).
        assert_eq!(first.skipped_levels, 0);
        let second = uptc.access(&pt.walk(VirtAddr::new(0x4000_1000)));
        // The second walk shares L4/L3/L2 entries with the first.
        assert_eq!(second.skipped_levels, 3);
        assert_eq!(second.levels_read, 1);
        assert_eq!(uptc.skipped_accesses(), 3);
    }

    #[test]
    fn cache_kinds_are_reported() {
        assert_eq!(UnifiedPageTableCache::new(8).kind(), MmuCacheKind::Uptc);
        assert_eq!(TranslationPathCache::new(8).kind(), MmuCacheKind::Tpc);
    }

    #[test]
    fn empty_caches_report_zero_rates() {
        let uptc = UnifiedPageTableCache::new(8);
        let tpc = TranslationPathCache::new(8);
        assert_eq!(uptc.hit_rate(), 0.0);
        assert_eq!(tpc.hit_rate(), 0.0);
        assert_eq!(tpc.depth_hit_rates(), (0.0, 0.0, 0.0));
    }
}
