//! Translation statistics collected by the engines.

use serde::{Deserialize, Serialize};

/// Counters describing one translation engine's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationStats {
    /// Translation requests presented to the engine.
    pub requests: u64,
    /// Requests satisfied by the IOTLB.
    pub tlb_hits: u64,
    /// Requests that missed the IOTLB.
    pub tlb_misses: u64,
    /// Requests merged into an in-flight walk by the PTS/PRMB.
    pub merged: u64,
    /// Page-table walks started.
    pub walks: u64,
    /// Page-table entry (DRAM) accesses performed by all walks.
    pub walk_memory_accesses: u64,
    /// Page-table levels skipped thanks to the TPreg.
    pub tpreg_skipped_levels: u64,
    /// Walks whose L4 index matched the walker's TPreg.
    pub tpreg_l4_hits: u64,
    /// Walks whose L4 and L3 indices matched the walker's TPreg.
    pub tpreg_l3_hits: u64,
    /// Walks whose L4, L3 and L2 indices all matched the walker's TPreg.
    pub tpreg_l2_hits: u64,
    /// Walks checked against a valid TPreg (the denominator of the hit rates).
    pub tpreg_lookups: u64,
    /// Requests that could not be accepted immediately because every walker
    /// and every mergeable slot was busy.
    pub structural_stalls: u64,
    /// Total cycles requests spent waiting for translation bandwidth.
    pub stall_cycles: u64,
    /// Requests that targeted an unmapped page (translation faults).
    pub faults: u64,
    /// Cycle at which the last translation completed.
    pub last_completion_cycle: u64,
}

impl TranslationStats {
    /// IOTLB hit rate (0.0 when no requests were made).
    #[must_use]
    pub fn tlb_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / self.requests as f64
        }
    }

    /// Fraction of TLB misses that were merged instead of walking.
    #[must_use]
    pub fn merge_rate(&self) -> f64 {
        if self.tlb_misses == 0 {
            0.0
        } else {
            self.merged as f64 / self.tlb_misses as f64
        }
    }

    /// Average page-table memory accesses per walk.
    #[must_use]
    pub fn accesses_per_walk(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.walk_memory_accesses as f64 / self.walks as f64
        }
    }

    /// TPreg tag-match rate at the L4 index (Figure 13).
    #[must_use]
    pub fn tpreg_l4_rate(&self) -> f64 {
        Self::rate(self.tpreg_l4_hits, self.tpreg_lookups)
    }

    /// TPreg tag-match rate at the L3 index (Figure 13).
    #[must_use]
    pub fn tpreg_l3_rate(&self) -> f64 {
        Self::rate(self.tpreg_l3_hits, self.tpreg_lookups)
    }

    /// TPreg tag-match rate at the L2 index (Figure 13).
    #[must_use]
    pub fn tpreg_l2_rate(&self) -> f64 {
        Self::rate(self.tpreg_l2_hits, self.tpreg_lookups)
    }

    fn rate(hits: u64, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Merges another stats block into this one (for aggregating per-layer
    /// results into per-workload results).
    pub fn merge(&mut self, other: &TranslationStats) {
        self.requests += other.requests;
        self.tlb_hits += other.tlb_hits;
        self.tlb_misses += other.tlb_misses;
        self.merged += other.merged;
        self.walks += other.walks;
        self.walk_memory_accesses += other.walk_memory_accesses;
        self.tpreg_skipped_levels += other.tpreg_skipped_levels;
        self.tpreg_l4_hits += other.tpreg_l4_hits;
        self.tpreg_l3_hits += other.tpreg_l3_hits;
        self.tpreg_l2_hits += other.tpreg_l2_hits;
        self.tpreg_lookups += other.tpreg_lookups;
        self.structural_stalls += other.structural_stalls;
        self.stall_cycles += other.stall_cycles;
        self.faults += other.faults;
        self.last_completion_cycle = self.last_completion_cycle.max(other.last_completion_cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let stats = TranslationStats::default();
        assert_eq!(stats.tlb_hit_rate(), 0.0);
        assert_eq!(stats.merge_rate(), 0.0);
        assert_eq!(stats.accesses_per_walk(), 0.0);
        assert_eq!(stats.tpreg_l2_rate(), 0.0);
    }

    #[test]
    fn rates_compute_fractions() {
        let stats = TranslationStats {
            requests: 100,
            tlb_hits: 25,
            tlb_misses: 75,
            merged: 50,
            walks: 25,
            walk_memory_accesses: 100,
            tpreg_lookups: 20,
            tpreg_l4_hits: 19,
            tpreg_l3_hits: 18,
            tpreg_l2_hits: 10,
            ..TranslationStats::default()
        };
        assert!((stats.tlb_hit_rate() - 0.25).abs() < 1e-12);
        assert!((stats.merge_rate() - 50.0 / 75.0).abs() < 1e-12);
        assert!((stats.accesses_per_walk() - 4.0).abs() < 1e-12);
        assert!((stats.tpreg_l4_rate() - 0.95).abs() < 1e-12);
        assert!((stats.tpreg_l2_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_counters() {
        let mut a = TranslationStats {
            requests: 10,
            walks: 2,
            last_completion_cycle: 50,
            ..Default::default()
        };
        let b = TranslationStats {
            requests: 5,
            walks: 1,
            last_completion_cycle: 40,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.requests, 15);
        assert_eq!(a.walks, 3);
        assert_eq!(a.last_completion_cycle, 50);
    }
}
