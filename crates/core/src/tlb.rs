//! The IOTLB: a set-associative, LRU translation lookaside buffer.
//!
//! The baseline IOMMU and NeuMMU share the same IOTLB front end (2048 entries
//! in Table I). The TLB is tagged by page number at the engine's configured
//! page size; a hit returns in a fixed 5-cycle latency. As the paper's
//! analysis shows (Section III-C), the TLB alone cannot absorb the NPU's
//! translation bursts — requests to the same page arrive back to back before
//! the first walk completes — which is exactly the behaviour the engine
//! reproduces on top of this structure.
//!
//! Entries are additionally tagged with the [`Asid`] of the owning tenant
//! context: identical page numbers from different contexts never alias, all
//! contexts compete for the shared capacity (LRU does not partition by
//! tenant), and one tenant's entries can be flushed without disturbing the
//! others ([`Tlb::flush_asid`]). The untagged methods operate on
//! [`Asid::GLOBAL`] and behave exactly like the pre-ASID single-tenant TLB:
//! the set index is computed from the page number alone, so a single-tenant
//! run is bit-identical either way.

use serde::{Deserialize, Serialize};

use neummu_vmem::Asid;

/// A set-associative TLB with true-LRU replacement within each set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    sets: Vec<Vec<TlbEntry>>,
    ways: usize,
    /// `num_sets - 1` when the set count is a power of two (every Table I
    /// geometry), so the per-lookup set-index computation is a mask rather
    /// than an integer divide; `None` falls back to modulo.
    set_mask: Option<u64>,
    stamp: u64,
    lookups: u64,
    hits: u64,
    fills: u64,
    /// Resident entries per ASID, indexed by [`Asid::index`] and grown on
    /// demand. Maintained incrementally at every fill/eviction/invalidation,
    /// so [`Tlb::occupancy_of`] is O(1) — cheap enough that a scheduling
    /// policy may consult it on every pick (the serving simulator's
    /// TLB-occupancy-aware throttling does exactly that).
    occupancy_by_asid: Vec<u64>,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct TlbEntry {
    asid: Asid,
    page_number: u64,
    last_used: u64,
}

impl TlbEntry {
    #[inline]
    fn matches(&self, asid: Asid, page_number: u64) -> bool {
        self.page_number == page_number && self.asid == asid
    }
}

impl Tlb {
    /// Creates a TLB with the given total entry count and associativity.
    ///
    /// The number of sets is `entries / ways`, rounded up to at least one.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `ways` is zero.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0, "TLB must have at least one entry");
        assert!(ways > 0, "TLB associativity must be at least one");
        let ways = ways.min(entries);
        let num_sets = (entries / ways).max(1);
        Tlb {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            set_mask: num_sets.is_power_of_two().then(|| num_sets as u64 - 1),
            stamp: 0,
            lookups: 0,
            hits: 0,
            fills: 0,
            occupancy_by_asid: Vec::new(),
        }
    }

    /// Adjusts the per-ASID occupancy counter by `delta` entries, growing the
    /// counter vector the first time a context is seen. Every entry
    /// fill/eviction/invalidation path funnels through here, which is what
    /// keeps [`Tlb::occupancy_of`] exact without scanning the sets.
    fn adjust_occupancy(occupancy_by_asid: &mut Vec<u64>, asid: Asid, delta: i64) {
        let index = asid.index();
        if index >= occupancy_by_asid.len() {
            occupancy_by_asid.resize(index + 1, 0);
        }
        let slot = &mut occupancy_by_asid[index];
        *slot = slot
            .checked_add_signed(delta)
            .expect("occupancy counters never go negative");
    }

    /// Total capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    #[inline]
    fn set_index(&self, page_number: u64) -> usize {
        match self.set_mask {
            Some(mask) => (page_number & mask) as usize,
            None => (page_number % self.sets.len() as u64) as usize,
        }
    }

    /// Looks up a page number in the [`Asid::GLOBAL`] context, updating LRU
    /// state. Returns `true` on a hit.
    pub fn lookup(&mut self, page_number: u64) -> bool {
        self.lookup_tagged(Asid::GLOBAL, page_number)
    }

    /// Looks up a page number in the given context, updating LRU state.
    /// Returns `true` on a hit. An entry hits only if both its page number
    /// *and* its ASID match — identical virtual pages of different tenants
    /// never alias.
    ///
    /// # Example
    ///
    /// ```
    /// use neummu_mmu::Tlb;
    /// use neummu_vmem::Asid;
    ///
    /// let mut tlb = Tlb::new(16, 4);
    /// let (a, b) = (Asid::new(1), Asid::new(2));
    /// tlb.insert_tagged(a, 42);
    /// assert!(tlb.lookup_tagged(a, 42));
    /// assert!(!tlb.lookup_tagged(b, 42)); // same page, other tenant: miss
    /// ```
    pub fn lookup_tagged(&mut self, asid: Asid, page_number: u64) -> bool {
        self.lookups += 1;
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_index(page_number);
        if let Some(entry) = self.sets[set]
            .iter_mut()
            .find(|e| e.matches(asid, page_number))
        {
            entry.last_used = stamp;
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Records `hits` back-to-back lookups of one resident entry as a single
    /// LRU touch — the run-coalesced replay of a same-page burst.
    ///
    /// Consecutive hits on one entry are idempotent on true LRU: after the
    /// first touch the entry is already most-recently-used in its set, so
    /// `hits` individual lookups and one batched touch leave the replacement
    /// state in exactly the same relative order. The recency stamp still
    /// advances by `hits` (as `hits` individual lookups would have advanced
    /// it), so the set's stamp arithmetic — and therefore every later
    /// eviction decision — is bit-identical to the per-lookup path.
    ///
    /// Returns `false` (recording nothing) if the entry is not resident; the
    /// caller's run replay is only valid while the entry survives.
    pub fn record_run_hits(&mut self, asid: Asid, page_number: u64, hits: u64) -> bool {
        if hits == 0 {
            return self.contains_tagged(asid, page_number);
        }
        let set = self.set_index(page_number);
        let stamp = self.stamp + hits;
        let Some(entry) = self.sets[set]
            .iter_mut()
            .find(|e| e.matches(asid, page_number))
        else {
            return false;
        };
        entry.last_used = stamp;
        self.stamp = stamp;
        self.lookups += hits;
        self.hits += hits;
        true
    }

    /// Records `misses` lookups that probed a set and found nothing (the
    /// run-coalesced replay of requests that merged into an in-flight walk):
    /// the lookup and stamp counters advance exactly as `misses` individual
    /// missing lookups would have advanced them, without scanning any set.
    pub fn record_run_misses(&mut self, misses: u64) {
        self.stamp += misses;
        self.lookups += misses;
    }

    /// Checks for presence in the [`Asid::GLOBAL`] context without updating
    /// LRU state or statistics.
    #[must_use]
    pub fn contains(&self, page_number: u64) -> bool {
        self.contains_tagged(Asid::GLOBAL, page_number)
    }

    /// Checks for presence in the given context without updating LRU state or
    /// statistics.
    #[must_use]
    pub fn contains_tagged(&self, asid: Asid, page_number: u64) -> bool {
        let set = self.set_index(page_number);
        self.sets[set].iter().any(|e| e.matches(asid, page_number))
    }

    /// Inserts a translation into the [`Asid::GLOBAL`] context, evicting the
    /// LRU entry of the set if needed.
    pub fn insert(&mut self, page_number: u64) {
        self.insert_tagged(Asid::GLOBAL, page_number);
    }

    /// Inserts a translation into the given context, evicting the LRU entry
    /// of the set if needed. Eviction ignores ASIDs: all tenants compete for
    /// the shared capacity, which is exactly the cross-tenant contention the
    /// multi-tenant experiments measure.
    pub fn insert_tagged(&mut self, asid: Asid, page_number: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = self.ways;
        let set_idx = self.set_index(page_number);
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|e| e.matches(asid, page_number)) {
            entry.last_used = stamp;
            return;
        }
        self.fills += 1;
        if set.len() < ways {
            set.push(TlbEntry {
                asid,
                page_number,
                last_used: stamp,
            });
            Self::adjust_occupancy(&mut self.occupancy_by_asid, asid, 1);
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| e.last_used)
            .expect("a full set always has a victim");
        let evicted = victim.asid;
        *victim = TlbEntry {
            asid,
            page_number,
            last_used: stamp,
        };
        Self::adjust_occupancy(&mut self.occupancy_by_asid, evicted, -1);
        Self::adjust_occupancy(&mut self.occupancy_by_asid, asid, 1);
    }

    /// Invalidates a single [`Asid::GLOBAL`] translation (used when a page is
    /// migrated or unmapped). Returns `true` if the entry was present.
    pub fn invalidate(&mut self, page_number: u64) -> bool {
        self.invalidate_tagged(Asid::GLOBAL, page_number)
    }

    /// Invalidates a single translation of the given context. Returns `true`
    /// if the entry was present.
    pub fn invalidate_tagged(&mut self, asid: Asid, page_number: u64) -> bool {
        let set_idx = self.set_index(page_number);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|e| e.matches(asid, page_number)) {
            set.swap_remove(pos);
            Self::adjust_occupancy(&mut self.occupancy_by_asid, asid, -1);
            true
        } else {
            false
        }
    }

    /// Invalidates every translation (full TLB shootdown across all ASIDs).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.occupancy_by_asid.fill(0);
    }

    /// Invalidates every translation of one context, leaving all other
    /// tenants' entries (and their LRU state) untouched. Returns the number
    /// of entries removed.
    ///
    /// # Example
    ///
    /// ```
    /// use neummu_mmu::Tlb;
    /// use neummu_vmem::Asid;
    ///
    /// let mut tlb = Tlb::new(16, 4);
    /// tlb.insert_tagged(Asid::new(1), 7);
    /// tlb.insert_tagged(Asid::new(2), 7);
    /// assert_eq!(tlb.flush_asid(Asid::new(1)), 1);
    /// assert!(!tlb.contains_tagged(Asid::new(1), 7));
    /// assert!(tlb.contains_tagged(Asid::new(2), 7)); // the neighbour survives
    /// ```
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let mut removed = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|e| e.asid != asid);
            removed += before - set.len();
        }
        Self::adjust_occupancy(&mut self.occupancy_by_asid, asid, -(removed as i64));
        removed
    }

    /// Invalidates the page's translation in *every* context (the broadcast
    /// shootdown an untagged invalidation performs in hardware). Returns the
    /// number of entries removed.
    pub fn invalidate_all_contexts(&mut self, page_number: u64) -> usize {
        let set_idx = self.set_index(page_number);
        let set = &mut self.sets[set_idx];
        let before = set.len();
        let occupancy_by_asid = &mut self.occupancy_by_asid;
        set.retain(|e| {
            if e.page_number == page_number {
                Self::adjust_occupancy(occupancy_by_asid, e.asid, -1);
                false
            } else {
                true
            }
        });
        before - set.len()
    }

    /// Number of resident entries belonging to the given context (a
    /// cross-tenant capacity-share snapshot for the contention breakdowns).
    /// O(1): read from the incrementally maintained per-ASID counters, not by
    /// scanning the sets — scheduling policies consult this per pick.
    #[must_use]
    pub fn occupancy_of(&self, asid: Asid) -> usize {
        self.occupancy_by_asid
            .get(asid.index())
            .copied()
            .unwrap_or(0) as usize
    }

    /// Number of valid entries currently resident.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Lifetime lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lifetime hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime fills.
    #[must_use]
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Lifetime hit rate.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tlb = Tlb::new(16, 4);
        assert!(!tlb.lookup(42));
        tlb.insert(42);
        assert!(tlb.lookup(42));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.lookups(), 2);
        assert!((tlb.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_and_occupancy() {
        let mut tlb = Tlb::new(2048, 8);
        assert_eq!(tlb.capacity(), 2048);
        for p in 0..100 {
            tlb.insert(p);
        }
        assert_eq!(tlb.occupancy(), 100);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_a_set() {
        // Single-set TLB makes the LRU order easy to reason about.
        let mut tlb = Tlb::new(2, 2);
        tlb.insert(10);
        tlb.insert(20);
        // Touch 10 so that 20 becomes the LRU victim.
        assert!(tlb.lookup(10));
        tlb.insert(30);
        assert!(tlb.contains(10));
        assert!(!tlb.contains(20));
        assert!(tlb.contains(30));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut tlb = Tlb::new(4, 4);
        tlb.insert(5);
        tlb.insert(5);
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.fills(), 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(1);
        tlb.insert(2);
        assert!(tlb.invalidate(1));
        assert!(!tlb.invalidate(1));
        assert!(!tlb.contains(1));
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn streaming_working_set_larger_than_capacity_thrashes() {
        // The key property the paper relies on: a streaming page sequence much
        // larger than the TLB yields a negligible hit rate when pages are not
        // revisited before eviction.
        let mut tlb = Tlb::new(256, 8);
        let mut hits = 0;
        for pass in 0..2 {
            for page in 0..4096u64 {
                if tlb.lookup(page) {
                    hits += 1;
                }
                tlb.insert(page);
                let _ = pass;
            }
        }
        assert_eq!(hits, 0, "streaming over 16x the capacity should never hit");
    }

    #[test]
    fn non_power_of_two_set_counts_use_the_modulo_path() {
        let mut tlb = Tlb::new(12, 2); // 6 sets: not a power of two
        for p in 0..24u64 {
            tlb.insert(p);
        }
        // The last two inserts of every set are resident.
        for p in 12..24u64 {
            assert!(tlb.contains(p), "page {p} missing");
        }
        assert_eq!(tlb.occupancy(), 12);
        assert!(tlb.lookup(23));
        assert!(!tlb.lookup(5));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(0, 1);
    }

    #[test]
    fn run_hit_recording_matches_individual_lookups_bit_for_bit() {
        // Drive two TLBs through the same traffic, one with per-lookup hits
        // and one with a batched run record; their externally visible state
        // (counters, eviction decisions) must be identical.
        let mut individual = Tlb::new(4, 2);
        let mut batched = Tlb::new(4, 2);
        for tlb in [&mut individual, &mut batched] {
            tlb.insert(0);
            tlb.insert(2); // same set as 0 in a 2-set TLB
        }
        for _ in 0..7 {
            assert!(individual.lookup(0));
        }
        assert!(batched.record_run_hits(Asid::GLOBAL, 0, 7));
        assert_eq!(individual.lookups(), batched.lookups());
        assert_eq!(individual.hits(), batched.hits());
        assert_eq!(individual.fills(), batched.fills());
        // Both evict the same victim: 2 is LRU after the touches on 0.
        individual.insert(4);
        batched.insert(4);
        assert!(individual.contains(0) && batched.contains(0));
        assert!(!individual.contains(2) && !batched.contains(2));
        // Missing entries record nothing.
        assert!(!batched.record_run_hits(Asid::GLOBAL, 99, 3));
        // A zero-hit record is presence-check only.
        assert!(batched.record_run_hits(Asid::GLOBAL, 0, 0));
    }

    #[test]
    fn run_miss_recording_advances_lookups_without_hits() {
        let mut tlb = Tlb::new(8, 2);
        tlb.record_run_misses(5);
        assert_eq!(tlb.lookups(), 5);
        assert_eq!(tlb.hits(), 0);
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn untagged_methods_are_the_global_asid() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(3);
        assert!(tlb.contains_tagged(Asid::GLOBAL, 3));
        assert!(tlb.lookup_tagged(Asid::GLOBAL, 3));
        assert!(tlb.invalidate_tagged(Asid::GLOBAL, 3));
        tlb.insert_tagged(Asid::GLOBAL, 4);
        assert!(tlb.contains(4));
        assert!(tlb.lookup(4));
        assert!(tlb.invalidate(4));
    }

    #[test]
    fn identical_pages_in_different_asids_never_alias() {
        let mut tlb = Tlb::new(16, 4);
        let (a, b) = (Asid::new(1), Asid::new(2));
        tlb.insert_tagged(a, 42);
        assert!(!tlb.lookup_tagged(b, 42), "tenant B must miss on A's entry");
        tlb.insert_tagged(b, 42);
        assert_eq!(tlb.occupancy(), 2, "both tenants hold their own entry");
        assert!(tlb.lookup_tagged(a, 42));
        assert!(tlb.lookup_tagged(b, 42));
        // Invalidating one tenant's page leaves the twin intact.
        assert!(tlb.invalidate_tagged(a, 42));
        assert!(!tlb.contains_tagged(a, 42));
        assert!(tlb.contains_tagged(b, 42));
    }

    #[test]
    fn per_asid_flush_leaves_other_tenants_intact() {
        let mut tlb = Tlb::new(64, 4);
        let (a, b, c) = (Asid::new(1), Asid::new(2), Asid::new(3));
        for page in 0..10u64 {
            tlb.insert_tagged(a, page);
            tlb.insert_tagged(b, page);
        }
        tlb.insert_tagged(c, 99);
        assert_eq!(tlb.occupancy_of(a), 10);
        assert_eq!(tlb.flush_asid(a), 10);
        assert_eq!(tlb.occupancy_of(a), 0);
        assert_eq!(tlb.occupancy_of(b), 10);
        assert_eq!(tlb.occupancy_of(c), 1);
        for page in 0..10u64 {
            assert!(!tlb.contains_tagged(a, page));
            assert!(tlb.contains_tagged(b, page));
        }
        // Flushing an absent tenant is a no-op.
        assert_eq!(tlb.flush_asid(Asid::new(9)), 0);
    }

    /// Reference implementation of `occupancy_of`: scan every set. The
    /// incremental counters must agree with it after any mutation sequence.
    fn scanned_occupancy(tlb: &Tlb, asid: Asid) -> usize {
        tlb.sets
            .iter()
            .map(|set| set.iter().filter(|e| e.asid == asid).count())
            .sum()
    }

    #[test]
    fn occupancy_counters_track_fills_evictions_and_invalidations() {
        // A tiny TLB forces evictions quickly; three tenants interleave
        // inserts, targeted invalidations, broadcast shootdowns and per-ASID
        // flushes. After every mutation the O(1) counter must equal the scan.
        let mut tlb = Tlb::new(8, 2);
        let tenants = [Asid::new(0), Asid::new(1), Asid::new(5)];
        let check = |tlb: &Tlb| {
            for &asid in &tenants {
                assert_eq!(
                    tlb.occupancy_of(asid),
                    scanned_occupancy(tlb, asid),
                    "{asid} counter drifted from the scan"
                );
            }
        };
        for round in 0..6u64 {
            for (lane, &asid) in tenants.iter().enumerate() {
                tlb.insert_tagged(asid, round * 3 + lane as u64);
                check(&tlb);
            }
        }
        tlb.invalidate_tagged(tenants[1], 4);
        check(&tlb);
        tlb.invalidate_all_contexts(4);
        check(&tlb);
        let resident = scanned_occupancy(&tlb, tenants[2]);
        assert_eq!(tlb.flush_asid(tenants[2]), resident);
        check(&tlb);
        tlb.flush();
        for &asid in &tenants {
            assert_eq!(tlb.occupancy_of(asid), 0);
        }
        check(&tlb);
        // Unknown contexts read zero without growing anything.
        assert_eq!(tlb.occupancy_of(Asid::new(999)), 0);
    }

    #[test]
    fn occupancy_counter_handles_cross_asid_eviction() {
        // Single-set TLB: tenant B's insert evicts tenant A's LRU entry, so
        // A's counter must drop and B's must rise in the same operation.
        let mut tlb = Tlb::new(2, 2);
        let (a, b) = (Asid::new(1), Asid::new(2));
        tlb.insert_tagged(a, 10);
        tlb.insert_tagged(a, 20);
        assert_eq!(tlb.occupancy_of(a), 2);
        tlb.insert_tagged(b, 30);
        assert_eq!(tlb.occupancy_of(a), 1);
        assert_eq!(tlb.occupancy_of(b), 1);
        assert_eq!(tlb.occupancy(), 2);
    }

    #[test]
    fn tenants_share_capacity_and_lru_is_asid_blind() {
        // Single-set TLB: tenant B's streaming inserts evict tenant A's cold
        // entry (shared capacity), but A's recently touched entry survives.
        let mut tlb = Tlb::new(2, 2);
        let (a, b) = (Asid::new(1), Asid::new(2));
        tlb.insert_tagged(a, 10);
        tlb.insert_tagged(a, 20);
        assert!(tlb.lookup_tagged(a, 20)); // 10 becomes LRU
        tlb.insert_tagged(b, 30);
        assert!(
            !tlb.contains_tagged(a, 10),
            "cold entry evicted by tenant B"
        );
        assert!(tlb.contains_tagged(a, 20));
        assert!(tlb.contains_tagged(b, 30));
    }
}
