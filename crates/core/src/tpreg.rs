//! The Translation Path Register (TPreg).
//!
//! Each page-table walker carries one 16-byte register holding the L4/L3/L2
//! entries of its most recent walk, tagged by the corresponding virtual-address
//! indices (a single-entry, Intel-TPC-style translation path cache,
//! Section IV-C). When a new walk's upper indices match the register, the
//! walker skips reading those levels from memory, which is where the paper's
//! 2.5×+ reduction in walk-invoked memory transactions comes from.

use serde::{Deserialize, Serialize};

use neummu_vmem::PathTag;

/// How much of a walk's upper path matched the register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathMatch {
    /// The L4 index matched.
    pub l4: bool,
    /// The L4 and L3 indices matched.
    pub l3: bool,
    /// The L4, L3 and L2 indices all matched.
    pub l2: bool,
}

impl PathMatch {
    /// Number of upper page-table levels (out of L4/L3/L2) whose memory reads
    /// can be skipped.
    #[must_use]
    pub fn skippable_levels(&self) -> u32 {
        u32::from(self.l4) + u32::from(self.l3) + u32::from(self.l2)
    }

    /// A miss on every level.
    #[must_use]
    pub fn miss() -> Self {
        PathMatch {
            l4: false,
            l3: false,
            l2: false,
        }
    }
}

/// A single-entry translation path register.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationPathRegister {
    tag: Option<PathTag>,
}

impl TranslationPathRegister {
    /// Creates an empty (invalid) register.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the register holds a valid path.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.tag.is_some()
    }

    /// Compares a new walk's path tag against the register.
    ///
    /// Matching is hierarchical (as in a translation path cache): the L3 entry
    /// is only usable if the L4 index also matches, and the L2 entry only if
    /// L4 and L3 match.
    #[must_use]
    pub fn probe(&self, tag: PathTag) -> PathMatch {
        match self.tag {
            None => PathMatch::miss(),
            Some(held) => {
                let l4 = held.l4 == tag.l4;
                let l3 = l4 && held.l3 == tag.l3;
                let l2 = l3 && held.l2 == tag.l2;
                PathMatch { l4, l3, l2 }
            }
        }
    }

    /// Updates the register with the path of the walk that just completed.
    pub fn fill(&mut self, tag: PathTag) {
        self.tag = Some(tag);
    }

    /// Invalidates the register (page-table update / TLB shootdown).
    pub fn invalidate(&mut self) {
        self.tag = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neummu_vmem::VirtAddr;

    fn tag(l4: u64, l3: u64, l2: u64) -> PathTag {
        PathTag::of(VirtAddr::new((l4 << 39) | (l3 << 30) | (l2 << 21)))
    }

    #[test]
    fn empty_register_misses() {
        let reg = TranslationPathRegister::new();
        assert!(!reg.is_valid());
        assert_eq!(reg.probe(tag(1, 2, 3)), PathMatch::miss());
        assert_eq!(PathMatch::miss().skippable_levels(), 0);
    }

    #[test]
    fn full_match_skips_three_levels() {
        let mut reg = TranslationPathRegister::new();
        reg.fill(tag(1, 2, 3));
        let m = reg.probe(tag(1, 2, 3));
        assert!(m.l4 && m.l3 && m.l2);
        assert_eq!(m.skippable_levels(), 3);
    }

    #[test]
    fn matching_is_hierarchical() {
        let mut reg = TranslationPathRegister::new();
        reg.fill(tag(1, 2, 3));
        // Same L4/L3, different L2: can skip two levels.
        let m = reg.probe(tag(1, 2, 9));
        assert!(m.l4 && m.l3 && !m.l2);
        assert_eq!(m.skippable_levels(), 2);
        // Different L4: nothing can be skipped, even though L3/L2 match
        // numerically.
        let m = reg.probe(tag(7, 2, 3));
        assert_eq!(m, PathMatch::miss());
    }

    #[test]
    fn fill_replaces_and_invalidate_clears() {
        let mut reg = TranslationPathRegister::new();
        reg.fill(tag(1, 1, 1));
        reg.fill(tag(2, 2, 2));
        assert_eq!(reg.probe(tag(1, 1, 1)), PathMatch::miss());
        assert_eq!(reg.probe(tag(2, 2, 2)).skippable_levels(), 3);
        reg.invalidate();
        assert!(!reg.is_valid());
        assert_eq!(reg.probe(tag(2, 2, 2)), PathMatch::miss());
    }

    #[test]
    fn consecutive_pages_share_paths_until_a_2mb_boundary() {
        // Pages within the same 2 MB region share the full path; crossing the
        // boundary loses only the L2 component.
        let mut reg = TranslationPathRegister::new();
        let page_a = VirtAddr::new(0x4000_0000);
        let page_b = page_a.add(4096);
        let page_c = page_a.add(2 << 20);
        reg.fill(PathTag::of(page_a));
        assert_eq!(reg.probe(PathTag::of(page_b)).skippable_levels(), 3);
        assert_eq!(reg.probe(PathTag::of(page_c)).skippable_levels(), 2);
    }
}
