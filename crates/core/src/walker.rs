//! The page-table walker pool, pending translation scoreboard (PTS) and
//! pending request merging buffers (PRMB).
//!
//! The pool tracks every in-flight page-table walk with its completion time,
//! the virtual page it is translating and how many requests have been merged
//! into it. The PTS is modelled functionally as a lookup from virtual page
//! number to the in-flight walk (the hardware structure is a fully-associative
//! CAM with one entry per walker, Section IV-A / Figure 9); the PRMB is the
//! per-walker budget of mergeable slots.
//!
//! Walkers are assigned to new walks in FIFO (round-robin) order, which is
//! what distributes consecutive walks across walkers and gives the per-walker
//! TPreg its characteristic L4/L3 ≫ L2 hit-rate profile (Figure 13).

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

use crate::tpreg::{PathMatch, TranslationPathRegister};
use neummu_vmem::{Asid, PathTag};

/// A two-multiply mixing hasher for the PTS map.
///
/// The PTS is probed on every TLB miss and updated on every walk start and
/// retirement — the hottest map in the whole engine. Its keys are
/// `(Asid, page number)` pairs drawn from the simulated address stream, not
/// from an adversary, so SipHash's collision-attack resistance buys nothing
/// here while costing a large fraction of each probe. The map is never
/// iterated, so hash order cannot reach any observable result (statistics,
/// artifacts, retirement order all flow through the completion heap).
#[derive(Debug, Clone, Copy, Default)]
struct PtsHasher(u64);

/// `floor(2^64 / phi)`, the multiplicative-mixing constant of Fibonacci
/// hashing: consecutive page numbers spread across the whole hash space.
const PTS_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for PtsHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so high state bits reach the table index.
        let mixed = (self.0 ^ (self.0 >> 32)).wrapping_mul(PTS_MIX);
        mixed ^ (mixed >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(PTS_MIX);
        }
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.write_u64(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.0 = (self.0.rotate_left(5) ^ value).wrapping_mul(PTS_MIX);
    }
}

type PtsMap = HashMap<(Asid, u64), usize, BuildHasherDefault<PtsHasher>>;

/// The result of asking the pool to start or join a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkAdmission {
    /// The request was merged into the in-flight walk of the given walker;
    /// it will complete when that walk completes.
    Merged {
        /// Walker whose PRMB absorbed the request.
        walker: usize,
        /// Completion cycle of the in-flight walk.
        completes_at: u64,
    },
    /// A new walk was started on the given walker.
    Started {
        /// Walker that accepted the walk.
        walker: usize,
        /// Completion cycle of the new walk.
        completes_at: u64,
        /// How much of the upper path the walker's TPreg matched.
        path_match: PathMatch,
        /// Page-table levels actually read from memory by this walk.
        levels_read: u32,
    },
    /// Every walker is busy and no mergeable slot is available; the requester
    /// must retry at or after the given cycle.
    Rejected {
        /// Earliest cycle at which capacity may become available.
        retry_at: u64,
    },
}

/// A walk that has completed and should be retired (its translation inserted
/// into the TLB and its merged requests released).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedWalk {
    /// Context the walk belongs to.
    pub asid: Asid,
    /// Page number (at the engine's page size) that was translated.
    pub page_number: u64,
    /// Cycle at which the walk finished.
    pub completed_at: u64,
    /// Number of requests that were merged into the walk.
    pub merged_requests: u32,
    /// Whether the walked page was actually mapped.
    pub mapped: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct InFlightWalk {
    asid: Asid,
    page_number: u64,
    walker: usize,
    completes_at: u64,
    merged_requests: u32,
    mapped: bool,
    /// Set by [`WalkerPool::flush_asid`]: the walk's context was torn down
    /// while it was in flight. Its PTS entry is already gone (a fresh
    /// same-key walk may own that key now), and its result must be
    /// discarded at retirement.
    flushed: bool,
    /// When nonzero, the serving walker hard-failed during this walk and is
    /// parked (not returned to the free list) at retirement until this
    /// cycle. Set only by [`WalkerPool::start_walk_perturbed`].
    quarantine_until: u64,
}

/// Min-heap ordering by completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct HeapEntry {
    completes_at: u64,
    walk_slot: usize,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .completes_at
            .cmp(&self.completes_at)
            .then_with(|| other.walk_slot.cmp(&self.walk_slot))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The pool of hardware page-table walkers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalkerPool {
    num_walkers: usize,
    prmb_slots: usize,
    walk_latency_per_level: u64,
    tpreg_enabled: bool,
    tpregs: Vec<TranslationPathRegister>,
    /// FIFO of idle walker indices (round-robin assignment).
    free_walkers: VecDeque<usize>,
    /// In-flight walks, indexed by slot id.
    walks: Vec<Option<InFlightWalk>>,
    free_slots: Vec<usize>,
    /// PTS: (context, page number) -> in-flight walk slot. Tagging the key
    /// with the ASID keeps one tenant's requests from merging into another
    /// tenant's in-flight walk of the same virtual page.
    pts: PtsMap,
    /// Completion order.
    heap: BinaryHeap<HeapEntry>,
    /// Hard-failed walkers parked until their cool-down expires, as
    /// `(walker, readmit_at)`. Empty unless fault injection quarantined a
    /// walker; healthy runs never touch it.
    quarantined: Vec<(usize, u64)>,
}

impl WalkerPool {
    /// Creates a pool of `num_walkers` walkers, each with `prmb_slots`
    /// mergeable PRMB slots (0 disables merging) and a per-level walk latency.
    ///
    /// # Panics
    ///
    /// Panics if `num_walkers` is zero.
    #[must_use]
    pub fn new(
        num_walkers: usize,
        prmb_slots: usize,
        walk_latency_per_level: u64,
        tpreg_enabled: bool,
    ) -> Self {
        assert!(num_walkers > 0, "the walker pool needs at least one walker");
        WalkerPool {
            num_walkers,
            prmb_slots,
            walk_latency_per_level,
            tpreg_enabled,
            tpregs: vec![TranslationPathRegister::new(); num_walkers],
            free_walkers: (0..num_walkers).collect(),
            walks: Vec::new(),
            free_slots: Vec::new(),
            pts: PtsMap::default(),
            heap: BinaryHeap::new(),
            quarantined: Vec::new(),
        }
    }

    /// Number of walkers in the pool.
    #[must_use]
    pub fn num_walkers(&self) -> usize {
        self.num_walkers
    }

    /// Number of walks currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.num_walkers - self.free_walkers.len()
    }

    /// True if a new walk could start right now (a walker is idle).
    #[must_use]
    pub fn has_free_walker(&self) -> bool {
        !self.free_walkers.is_empty()
    }

    /// Retires every walk that has completed by `cycle`, invoking `retire`
    /// for each in completion order, without allocating. The caller is
    /// responsible for filling the TLB. Returns the number of walks retired.
    ///
    /// This runs once per translate attempt, and on the overwhelming majority
    /// of calls nothing has completed: that case costs a single heap peek and
    /// returns 0 (the engine tallies these fast exits in its hot-path
    /// telemetry).
    pub fn drain_completed(&mut self, cycle: u64, mut retire: impl FnMut(CompletedWalk)) -> usize {
        let mut retired = 0usize;
        while let Some(top) = self.heap.peek() {
            if top.completes_at > cycle {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            let walk = self.walks[entry.walk_slot]
                .take()
                .expect("heap entries always reference live walks");
            self.free_slots.push(entry.walk_slot);
            if !walk.flushed {
                self.pts.remove(&(walk.asid, walk.page_number));
            }
            if walk.quarantine_until > 0 {
                // The walker hard-failed during this walk: park it instead
                // of returning it to the free list. The pool shrinks until
                // the cool-down expires and readmit_quarantined runs.
                self.quarantined.push((walk.walker, walk.quarantine_until));
            } else {
                self.free_walkers.push_back(walk.walker);
            }
            retired += 1;
            retire(CompletedWalk {
                asid: walk.asid,
                page_number: walk.page_number,
                completed_at: walk.completes_at,
                merged_requests: walk.merged_requests,
                mapped: walk.mapped,
            });
        }
        retired
    }

    /// Retires every walk that has completed by `cycle`, returning them in
    /// completion order. Convenience wrapper around
    /// [`WalkerPool::drain_completed`] for tests and inspection; the engine
    /// hot path uses the drain form to avoid the `Vec`.
    pub fn retire_completed(&mut self, cycle: u64) -> Vec<CompletedWalk> {
        let mut retired = Vec::new();
        self.drain_completed(cycle, |walk| retired.push(walk));
        retired
    }

    /// Earliest cycle at which any in-flight walk completes (`None` if idle).
    #[must_use]
    pub fn next_completion(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.completes_at)
    }

    /// Number of walkers currently parked in quarantine.
    #[must_use]
    pub fn quarantined_walkers(&self) -> usize {
        self.quarantined.len()
    }

    /// Earliest cycle at which a quarantined walker becomes eligible for
    /// re-admission (`None` if the quarantine is empty).
    #[must_use]
    pub fn earliest_readmit(&self) -> Option<u64> {
        self.quarantined.iter().map(|&(_, at)| at).min()
    }

    /// Returns every quarantined walker whose cool-down expired by `cycle`
    /// to the free list. Allocation-free; a no-op (one emptiness check) when
    /// nothing is quarantined, which is every cycle of a fault-free run.
    pub fn readmit_quarantined(&mut self, cycle: u64) {
        let mut i = 0;
        while i < self.quarantined.len() {
            if self.quarantined[i].1 <= cycle {
                let (walker, _) = self.quarantined.swap_remove(i);
                self.free_walkers.push_back(walker);
            } else {
                i += 1;
            }
        }
    }

    /// Probes the PTS for an in-flight [`Asid::GLOBAL`] walk of
    /// `page_number` and, if present and a PRMB slot is free, merges the
    /// request into it.
    ///
    /// Returns the completion cycle of the walk the request was merged into,
    /// or `None` if no merge was possible (no in-flight walk, merging
    /// disabled, or the walker's PRMB is full).
    pub fn try_merge(&mut self, page_number: u64) -> Option<(usize, u64)> {
        self.try_merge_tagged(Asid::GLOBAL, page_number)
    }

    /// [`WalkerPool::try_merge`] in the given context: a request only merges
    /// into an in-flight walk with the same `(asid, page_number)` PTS key.
    pub fn try_merge_tagged(&mut self, asid: Asid, page_number: u64) -> Option<(usize, u64)> {
        if self.prmb_slots == 0 {
            return None;
        }
        let slot = *self.pts.get(&(asid, page_number))?;
        let walk = self.walks[slot]
            .as_mut()
            .expect("PTS entries reference live walks");
        if walk.merged_requests as usize >= self.prmb_slots {
            return None;
        }
        walk.merged_requests += 1;
        Some((walk.walker, walk.completes_at))
    }

    /// Merges up to `requests` same-context requests into the in-flight walk
    /// of `page_number` in one step — the run-coalesced bulk form of
    /// [`WalkerPool::try_merge_tagged`]. Returns how many requests were
    /// actually merged: the PRMB budget caps the count exactly as the same
    /// number of individual `try_merge_tagged` calls would (0 when there is
    /// no in-flight walk, merging is disabled, or the PRMB is already full).
    pub fn merge_run_tagged(&mut self, asid: Asid, page_number: u64, requests: u64) -> u64 {
        if self.prmb_slots == 0 || requests == 0 {
            return 0;
        }
        let Some(&slot) = self.pts.get(&(asid, page_number)) else {
            return 0;
        };
        let walk = self.walks[slot]
            .as_mut()
            .expect("PTS entries reference live walks");
        let free = (self.prmb_slots as u64).saturating_sub(u64::from(walk.merged_requests));
        let merged = requests.min(free);
        walk.merged_requests += u32::try_from(merged).expect("PRMB slots fit in u32");
        merged
    }

    /// Starts a new walk at `cycle` for `page_number`, whose full walk would
    /// read `full_levels` page-table entries and whose upper-path tag is
    /// `tag`. `mapped` records whether the page table actually holds a
    /// translation (an unmapped page still costs a partial walk).
    ///
    /// Returns [`WalkAdmission::Rejected`] when every walker is busy.
    pub fn start_walk(
        &mut self,
        cycle: u64,
        page_number: u64,
        tag: PathTag,
        full_levels: u32,
        mapped: bool,
    ) -> WalkAdmission {
        self.start_walk_tagged(Asid::GLOBAL, cycle, page_number, tag, full_levels, mapped)
    }

    /// [`WalkerPool::start_walk`] in the given context: the walk's PTS entry
    /// is keyed by `(asid, page_number)` so only same-context requests can
    /// merge into it.
    #[allow(clippy::too_many_arguments)]
    pub fn start_walk_tagged(
        &mut self,
        asid: Asid,
        cycle: u64,
        page_number: u64,
        tag: PathTag,
        full_levels: u32,
        mapped: bool,
    ) -> WalkAdmission {
        let Some(walker) = self.free_walkers.pop_front() else {
            return WalkAdmission::Rejected {
                retry_at: self.rejected_retry_at(),
            };
        };

        let path_match = if self.tpreg_enabled {
            self.tpregs[walker].probe(tag)
        } else {
            PathMatch::miss()
        };
        // The TPreg can only skip levels that the walk would otherwise read:
        // for a 4 KB page all of L4/L3/L2, for a 2 MB page only L4/L3 (its L2
        // entry is the leaf and must be read to obtain the translation).
        let skippable_by_size = full_levels.saturating_sub(1);
        let skipped = path_match.skippable_levels().min(skippable_by_size);
        let levels_read = (full_levels - skipped).max(1);
        let completes_at = cycle + u64::from(levels_read) * self.walk_latency_per_level;

        if self.tpreg_enabled {
            self.tpregs[walker].fill(tag);
        }

        let walk = InFlightWalk {
            asid,
            page_number,
            walker,
            completes_at,
            merged_requests: 0,
            mapped,
            flushed: false,
            quarantine_until: 0,
        };
        self.enqueue_walk(walk);
        WalkAdmission::Started {
            walker,
            completes_at,
            path_match,
            levels_read,
        }
    }

    /// Starts a walk whose latency was overridden by an injected device
    /// fault. The perturbed walk bypasses the TPreg entirely (a faulty walk
    /// reads the full path and must not pollute the path registers), costs
    /// exactly `total_latency` cycles, and — when `quarantine_until` is
    /// nonzero — parks its walker at retirement until that cycle. Everything
    /// else (PTS entry, PRMB merging, completion ordering) behaves exactly
    /// like [`WalkerPool::start_walk_tagged`], which is what makes request
    /// conservation hold under faults: a fault only ever changes a walk's
    /// latency and mapped-ness, never its riders.
    #[allow(clippy::too_many_arguments)]
    pub fn start_walk_perturbed(
        &mut self,
        asid: Asid,
        cycle: u64,
        page_number: u64,
        full_levels: u32,
        total_latency: u64,
        mapped: bool,
        quarantine_until: u64,
    ) -> WalkAdmission {
        let Some(walker) = self.free_walkers.pop_front() else {
            return WalkAdmission::Rejected {
                retry_at: self.rejected_retry_at(),
            };
        };
        let completes_at = cycle + total_latency;
        let walk = InFlightWalk {
            asid,
            page_number,
            walker,
            completes_at,
            merged_requests: 0,
            mapped,
            flushed: false,
            quarantine_until,
        };
        self.enqueue_walk(walk);
        WalkAdmission::Started {
            walker,
            completes_at,
            path_match: PathMatch::miss(),
            levels_read: full_levels,
        }
    }

    /// Retry cycle for a rejected admission: the earliest event that frees a
    /// walker — a walk completion or a quarantine re-admission.
    fn rejected_retry_at(&self) -> u64 {
        match (self.next_completion(), self.earliest_readmit()) {
            (Some(completion), Some(readmit)) => completion.min(readmit),
            (Some(completion), None) => completion,
            (None, Some(readmit)) => readmit,
            (None, None) => {
                unreachable!("no free walkers implies an in-flight or quarantined walker")
            }
        }
    }

    /// Slots the walk into storage, the PTS and the completion heap.
    fn enqueue_walk(&mut self, walk: InFlightWalk) {
        let key = (walk.asid, walk.page_number);
        let completes_at = walk.completes_at;
        let slot = if let Some(slot) = self.free_slots.pop() {
            self.walks[slot] = Some(walk);
            slot
        } else {
            self.walks.push(Some(walk));
            self.walks.len() - 1
        };
        if self.prmb_slots > 0 {
            self.pts.insert(key, slot);
        }
        self.heap.push(HeapEntry {
            completes_at,
            walk_slot: slot,
        });
    }

    /// Invalidates every walker's TPreg (page-table update).
    pub fn invalidate_tpregs(&mut self) {
        for reg in &mut self.tpregs {
            reg.invalidate();
        }
    }

    /// Discards every in-flight walk of one context (context teardown /
    /// page-table switch). The walks keep occupying their walkers until
    /// their completion time — hardware cannot recall a walk in flight —
    /// but their PTS entries vanish immediately, so no later request can
    /// merge into them, and they retire as unmapped, so their (stale)
    /// translations never fill the TLB. Returns the number of walks
    /// discarded.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let WalkerPool { walks, pts, .. } = self;
        let mut discarded = 0;
        for walk in walks.iter_mut().flatten() {
            if walk.asid == asid && !walk.flushed {
                pts.remove(&(walk.asid, walk.page_number));
                walk.mapped = false;
                walk.flushed = true;
                discarded += 1;
            }
        }
        discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neummu_vmem::VirtAddr;

    fn tag_of_page(page: u64) -> PathTag {
        PathTag::of(VirtAddr::new(page << 12))
    }

    fn start(pool: &mut WalkerPool, cycle: u64, page: u64) -> WalkAdmission {
        pool.start_walk(cycle, page, tag_of_page(page), 4, true)
    }

    #[test]
    fn walks_complete_after_per_level_latency() {
        let mut pool = WalkerPool::new(2, 0, 100, false);
        match start(&mut pool, 0, 7) {
            WalkAdmission::Started {
                completes_at,
                levels_read,
                ..
            } => {
                assert_eq!(levels_read, 4);
                assert_eq!(completes_at, 400);
            }
            other => panic!("expected Started, got {other:?}"),
        }
        assert_eq!(pool.in_flight(), 1);
        assert!(pool.retire_completed(399).is_empty());
        let retired = pool.retire_completed(400);
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].page_number, 7);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn pool_rejects_when_all_walkers_busy() {
        let mut pool = WalkerPool::new(2, 0, 100, false);
        start(&mut pool, 0, 1);
        start(&mut pool, 0, 2);
        match start(&mut pool, 0, 3) {
            WalkAdmission::Rejected { retry_at } => assert_eq!(retry_at, 400),
            other => panic!("expected Rejected, got {other:?}"),
        }
        // After retiring, capacity is available again.
        pool.retire_completed(400);
        assert!(matches!(
            start(&mut pool, 400, 3),
            WalkAdmission::Started { .. }
        ));
    }

    #[test]
    fn merging_requires_prmb_slots() {
        let mut no_merge = WalkerPool::new(4, 0, 100, false);
        start(&mut no_merge, 0, 9);
        assert!(no_merge.try_merge(9).is_none());

        let mut pool = WalkerPool::new(4, 2, 100, false);
        start(&mut pool, 0, 9);
        assert!(pool.try_merge(9).is_some());
        assert!(pool.try_merge(9).is_some());
        // PRMB full after two merges.
        assert!(pool.try_merge(9).is_none());
        // A different page has no in-flight walk to merge into.
        assert!(pool.try_merge(10).is_none());
        let retired = pool.retire_completed(1_000);
        assert_eq!(retired[0].merged_requests, 2);
    }

    #[test]
    fn bulk_merges_respect_the_prmb_budget_like_individual_merges() {
        let mut pool = WalkerPool::new(4, 8, 100, false);
        start(&mut pool, 0, 9);
        // Two individual merges, then a bulk request for ten more: only the
        // six remaining slots are granted.
        assert!(pool.try_merge(9).is_some());
        assert!(pool.try_merge(9).is_some());
        assert_eq!(pool.merge_run_tagged(Asid::GLOBAL, 9, 10), 6);
        assert_eq!(pool.merge_run_tagged(Asid::GLOBAL, 9, 1), 0);
        assert!(pool.try_merge(9).is_none());
        // No in-flight walk, zero requests, disabled merging: all zero.
        assert_eq!(pool.merge_run_tagged(Asid::GLOBAL, 10, 4), 0);
        assert_eq!(pool.merge_run_tagged(Asid::GLOBAL, 9, 0), 0);
        let mut no_merge = WalkerPool::new(4, 0, 100, false);
        start(&mut no_merge, 0, 9);
        assert_eq!(no_merge.merge_run_tagged(Asid::GLOBAL, 9, 4), 0);
        // The retired walk carries the bulk-merged count.
        let retired = pool.retire_completed(u64::MAX);
        assert_eq!(retired[0].merged_requests, 8);
    }

    #[test]
    fn merged_requests_complete_with_their_walk() {
        let mut pool = WalkerPool::new(1, 8, 50, false);
        let completes = match start(&mut pool, 10, 5) {
            WalkAdmission::Started { completes_at, .. } => completes_at,
            other => panic!("unexpected {other:?}"),
        };
        let (_, merged_completes) = pool.try_merge(5).unwrap();
        assert_eq!(merged_completes, completes);
    }

    #[test]
    fn tpreg_skips_levels_for_same_region_walks() {
        let mut pool = WalkerPool::new(1, 0, 100, true);
        // First walk of a region reads all four levels.
        match pool.start_walk(0, 0x1000, tag_of_page(0x1000), 4, true) {
            WalkAdmission::Started { levels_read, .. } => assert_eq!(levels_read, 4),
            other => panic!("unexpected {other:?}"),
        }
        pool.retire_completed(u64::MAX);
        // The next page in the same 2 MB region only reads the leaf level.
        match pool.start_walk(500, 0x1001, tag_of_page(0x1001), 4, true) {
            WalkAdmission::Started {
                levels_read,
                path_match,
                completes_at,
                ..
            } => {
                assert_eq!(levels_read, 1);
                assert!(path_match.l2);
                assert_eq!(completes_at, 600);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tpreg_cannot_skip_the_leaf_of_a_2mb_walk() {
        let mut pool = WalkerPool::new(1, 0, 100, true);
        // 2 MB pages walk three levels; even a full TPreg match must still
        // read the leaf (L2) entry.
        pool.start_walk(0, 0, tag_of_page(0), 3, true);
        pool.retire_completed(u64::MAX);
        match pool.start_walk(0, 1, tag_of_page(0), 3, true) {
            WalkAdmission::Started { levels_read, .. } => assert_eq!(levels_read, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_robin_assignment_spreads_walks_across_walkers() {
        let mut pool = WalkerPool::new(4, 0, 100, false);
        let mut walkers = Vec::new();
        for page in 0..4 {
            if let WalkAdmission::Started { walker, .. } = start(&mut pool, 0, page) {
                walkers.push(walker);
            }
        }
        walkers.sort_unstable();
        assert_eq!(walkers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn retire_order_is_completion_order() {
        let mut pool = WalkerPool::new(4, 0, 100, true);
        // Page 1 misses the TPreg (4 levels); page 2 walk on a different
        // walker also misses. Start them at different cycles.
        start(&mut pool, 100, 1);
        start(&mut pool, 0, 2);
        let retired = pool.retire_completed(u64::MAX);
        assert_eq!(retired.len(), 2);
        assert!(retired[0].completed_at <= retired[1].completed_at);
        assert_eq!(retired[0].page_number, 2);
    }

    #[test]
    fn drain_completed_matches_retire_completed() {
        let build = || {
            let mut pool = WalkerPool::new(4, 2, 100, true);
            start(&mut pool, 100, 1);
            start(&mut pool, 0, 2);
            start(&mut pool, 50, 3);
            pool.try_merge(2);
            pool
        };
        let mut drained = Vec::new();
        let mut a = build();
        let count = a.drain_completed(500, |walk| drained.push(walk));
        let retired = build().retire_completed(500);
        assert_eq!(count, drained.len());
        assert_eq!(drained, retired);
        assert_eq!(drained.len(), 3);
        // Nothing left: the fast path reports zero without invoking the sink.
        assert_eq!(a.drain_completed(u64::MAX, |_| panic!("empty pool")), 0);
    }

    #[test]
    fn pts_keys_are_asid_tagged() {
        let mut pool = WalkerPool::new(4, 8, 100, false);
        let (a, b) = (Asid::new(1), Asid::new(2));
        // Tenant A walks page 9; tenant B's request to the *same* page number
        // must not merge into it (different page tables!) and starts its own
        // walk instead.
        assert!(matches!(
            pool.start_walk_tagged(a, 0, 9, tag_of_page(9), 4, true),
            WalkAdmission::Started { .. }
        ));
        assert!(pool.try_merge_tagged(b, 9).is_none());
        assert!(pool.try_merge_tagged(a, 9).is_some());
        assert!(matches!(
            pool.start_walk_tagged(b, 0, 9, tag_of_page(9), 4, true),
            WalkAdmission::Started { .. }
        ));
        // Both walks retire carrying their own ASID.
        let retired = pool.retire_completed(u64::MAX);
        assert_eq!(retired.len(), 2);
        let mut asids: Vec<u16> = retired.iter().map(|w| w.asid.raw()).collect();
        asids.sort_unstable();
        assert_eq!(asids, vec![1, 2]);
        // The untagged entry points are the GLOBAL context.
        pool.start_walk(0, 5, tag_of_page(5), 4, true);
        assert!(pool.try_merge_tagged(Asid::GLOBAL, 5).is_some());
    }

    #[test]
    fn unmapped_pages_still_consume_a_walk() {
        let mut pool = WalkerPool::new(1, 4, 100, false);
        pool.start_walk(0, 77, tag_of_page(77), 1, false);
        let retired = pool.retire_completed(u64::MAX);
        assert!(!retired[0].mapped);
    }

    #[test]
    fn perturbed_walk_costs_exactly_its_total_latency() {
        let mut pool = WalkerPool::new(2, 4, 100, true);
        let WalkAdmission::Started {
            completes_at,
            path_match,
            levels_read,
            ..
        } = pool.start_walk_perturbed(Asid::GLOBAL, 10, 42, 4, 1_234, true, 0)
        else {
            panic!("perturbed walk must start");
        };
        assert_eq!(completes_at, 10 + 1_234);
        assert_eq!(levels_read, 4);
        assert_eq!(
            path_match.skippable_levels(),
            0,
            "perturbed walks bypass the TPreg"
        );
        assert!(pool.retire_completed(10 + 1_233).is_empty());
        let retired = pool.retire_completed(10 + 1_234);
        assert_eq!(retired.len(), 1);
        assert!(retired[0].mapped);
    }

    #[test]
    fn perturbed_walk_accepts_prmb_merges() {
        let mut pool = WalkerPool::new(2, 4, 100, false);
        pool.start_walk_perturbed(Asid::GLOBAL, 0, 42, 4, 5_000, true, 0);
        assert_eq!(pool.try_merge(42), Some((0, 5_000)));
        let retired = pool.retire_completed(5_000);
        assert_eq!(retired[0].merged_requests, 1);
    }

    #[test]
    fn quarantined_walker_is_parked_until_cooldown() {
        let mut pool = WalkerPool::new(1, 0, 100, false);
        pool.start_walk_perturbed(Asid::GLOBAL, 0, 42, 4, 400, true, 1_000);
        assert_eq!(pool.retire_completed(400).len(), 1);
        // The only walker is now quarantined: the pool has shrunk to zero.
        assert!(!pool.has_free_walker());
        assert_eq!(pool.quarantined_walkers(), 1);
        assert_eq!(pool.earliest_readmit(), Some(1_000));
        // A new walk is rejected with the readmission cycle, not a panic
        // (the heap is empty — there is no in-flight completion to wait on).
        let admission = pool.start_walk(500, 43, tag_of_page(43), 4, true);
        assert_eq!(admission, WalkAdmission::Rejected { retry_at: 1_000 });
        // Before the cool-down expires readmission is a no-op.
        pool.readmit_quarantined(999);
        assert!(!pool.has_free_walker());
        // At the cool-down boundary the walker rejoins the free list.
        pool.readmit_quarantined(1_000);
        assert!(pool.has_free_walker());
        assert_eq!(pool.quarantined_walkers(), 0);
        assert!(matches!(
            pool.start_walk(1_000, 43, tag_of_page(43), 4, true),
            WalkAdmission::Started { .. }
        ));
    }

    #[test]
    fn rejected_retry_at_is_min_of_completion_and_readmit() {
        let mut pool = WalkerPool::new(2, 0, 100, false);
        // Walker 0 quarantines until cycle 5_000; walker 1 walks until 700.
        pool.start_walk_perturbed(Asid::GLOBAL, 0, 1, 4, 300, true, 5_000);
        assert_eq!(pool.retire_completed(300).len(), 1);
        pool.start_walk(300, 2, tag_of_page(2), 4, true);
        let admission = pool.start_walk(350, 3, tag_of_page(3), 4, true);
        assert_eq!(admission, WalkAdmission::Rejected { retry_at: 700 });
    }
}
