//! Property-based tests for the MMU structures and the translation engine.

use proptest::prelude::*;

use neummu_mmu::prelude::*;
use neummu_vmem::{MemNode, PageSize, PageTable, PhysFrameNum, VirtAddr};

/// Builds a page table with the given 4 KB virtual pages mapped.
fn table_with_pages(pages: &[u64]) -> PageTable {
    let mut pt = PageTable::new();
    for (i, &vpn) in pages.iter().enumerate() {
        pt.map(
            VirtAddr::new(vpn << 12),
            PageSize::Size4K,
            PhysFrameNum::new(0x100_0000 + i as u64),
            MemNode::Npu(0),
        )
        .expect("test pages are distinct");
    }
    pt
}

/// Strategy: a monotonically increasing stream of (page, offset) accesses over
/// a small page range, mimicking a DMA sweep.
fn access_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..64, 0u64..4096), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The TLB never reports more hits than lookups and its occupancy never
    /// exceeds its capacity, for any interleaving of lookups and fills.
    #[test]
    fn tlb_invariants(ops in prop::collection::vec((0u64..512, any::<bool>()), 1..500),
                      entries in 1usize..512, ways in 1usize..16) {
        let mut tlb = Tlb::new(entries, ways);
        for (page, is_fill) in ops {
            if is_fill {
                tlb.insert(page);
            } else {
                let hit = tlb.lookup(page);
                if hit {
                    prop_assert!(tlb.contains(page));
                }
            }
            prop_assert!(tlb.occupancy() <= tlb.capacity());
            prop_assert!(tlb.hits() <= tlb.lookups());
        }
    }

    /// A lookup immediately after an insert always hits, regardless of prior
    /// history (the inserted entry is the most recently used in its set).
    #[test]
    fn tlb_insert_then_lookup_hits(history in prop::collection::vec(0u64..4096, 0..300), probe in 0u64..4096) {
        let mut tlb = Tlb::new(128, 4);
        for page in history {
            tlb.insert(page);
        }
        tlb.insert(probe);
        prop_assert!(tlb.lookup(probe));
    }

    /// Engine timing sanity: outcomes are accepted no earlier than issued,
    /// complete no earlier than accepted, and every request is accounted for
    /// as exactly one of {TLB hit, merged, walk}.
    #[test]
    fn engine_accounting_is_exact(stream in access_stream(), neummu in any::<bool>()) {
        let pages: Vec<u64> = (0..64).collect();
        let pt = table_with_pages(&pages);
        let config = if neummu { MmuConfig::neummu() } else { MmuConfig::baseline_iommu() };
        let mut engine = TranslationEngine::new(config);
        let mut cycle = 0u64;
        for (page, offset) in &stream {
            let va = VirtAddr::new((page << 12) | offset);
            let outcome = engine.translate(&pt, va, cycle);
            prop_assert!(outcome.accept_cycle >= cycle);
            prop_assert!(outcome.complete_cycle >= outcome.accept_cycle);
            prop_assert!(!outcome.fault);
            cycle = outcome.accept_cycle + 1;
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.requests, stream.len() as u64);
        prop_assert_eq!(stats.requests, stats.tlb_hits + stats.merged + stats.walks);
        prop_assert!(stats.walk_memory_accesses >= stats.walks);
        prop_assert!(stats.walk_memory_accesses <= stats.walks * 4);
    }

    /// The oracle is a lower bound: for any request stream, its last
    /// completion time never exceeds that of a real engine driven with the
    /// same stream.
    #[test]
    fn oracle_is_a_lower_bound(stream in access_stream()) {
        let pages: Vec<u64> = (0..64).collect();
        let pt = table_with_pages(&pages);
        let mut oracle = OracleTranslator::default();
        let mut engine = TranslationEngine::new(MmuConfig::baseline_iommu());
        let mut oracle_cycle = 0u64;
        let mut engine_cycle = 0u64;
        let mut oracle_last = 0u64;
        let mut engine_last = 0u64;
        for (page, offset) in &stream {
            let va = VirtAddr::new((page << 12) | offset);
            let o = oracle.translate(&pt, va, oracle_cycle);
            oracle_cycle = o.accept_cycle + 1;
            oracle_last = oracle_last.max(o.complete_cycle);
            let e = engine.translate(&pt, va, engine_cycle);
            engine_cycle = e.accept_cycle + 1;
            engine_last = engine_last.max(e.complete_cycle);
        }
        prop_assert!(oracle_last <= engine_last);
    }

    /// Merging never changes *what* is translated, only how much walk work is
    /// spent: with merging enabled the engine performs at most as many walks
    /// and walk memory accesses as without it.
    #[test]
    fn prmb_never_increases_walk_work(stream in access_stream()) {
        let pages: Vec<u64> = (0..64).collect();
        let pt = table_with_pages(&pages);
        let run = |prmb_slots: usize| {
            let mut engine = TranslationEngine::new(
                MmuConfig::baseline_iommu().with_ptws(16).with_prmb_slots(prmb_slots),
            );
            let mut cycle = 0u64;
            for (page, offset) in &stream {
                let va = VirtAddr::new((page << 12) | offset);
                let outcome = engine.translate(&pt, va, cycle);
                cycle = outcome.accept_cycle + 1;
            }
            (engine.stats().walks, engine.stats().walk_memory_accesses)
        };
        let (walks_without, accesses_without) = run(0);
        let (walks_with, accesses_with) = run(32);
        prop_assert!(walks_with <= walks_without);
        prop_assert!(accesses_with <= accesses_without);
    }

    /// The TPreg only removes upper-level reads: per walk, between 1 and 4
    /// levels are read, and enabling it never increases total accesses.
    #[test]
    fn tpreg_never_increases_walk_accesses(page_order in prop::collection::vec(0u64..256, 1..150)) {
        let pages: Vec<u64> = (0..256).collect();
        let pt = table_with_pages(&pages);
        let run = |tpreg: bool| {
            let mut engine = TranslationEngine::new(
                MmuConfig::neummu().with_tlb_entries(16).with_tpreg(tpreg),
            );
            let mut cycle = 0u64;
            for page in &page_order {
                let outcome = engine.translate(&pt, VirtAddr::new(page << 12), cycle);
                cycle = outcome.complete_cycle + 1;
            }
            engine.stats().walk_memory_accesses
        };
        let with_tpreg = run(true);
        let without_tpreg = run(false);
        prop_assert!(with_tpreg <= without_tpreg);
    }

    /// Engine timing invariant: driven in program order (each request issued
    /// at the previous accept + 1), accept cycles are strictly increasing,
    /// never earlier than the issue cycle, and every completion is at or
    /// after its accept.
    #[test]
    fn accept_cycles_are_monotone_and_completions_follow(stream in access_stream(),
                                                        neummu in any::<bool>()) {
        let pages: Vec<u64> = (0..64).collect();
        let pt = table_with_pages(&pages);
        let config = if neummu { MmuConfig::neummu() } else { MmuConfig::baseline_iommu() };
        let mut engine = TranslationEngine::new(config);
        let mut cycle = 0u64;
        let mut last_accept: Option<u64> = None;
        for (page, offset) in &stream {
            let outcome = engine.translate(&pt, VirtAddr::new((page << 12) | offset), cycle);
            prop_assert!(outcome.accept_cycle >= cycle);
            if let Some(prev) = last_accept {
                prop_assert!(outcome.accept_cycle > prev,
                             "accept {} did not advance past {}", outcome.accept_cycle, prev);
            }
            prop_assert!(outcome.complete_cycle >= outcome.accept_cycle);
            last_accept = Some(outcome.accept_cycle);
            cycle = outcome.accept_cycle + 1;
        }
    }

    /// PRMB capacity invariant: a walk can absorb at most `prmb_slots` merged
    /// requests, so the engine's total merge count never exceeds
    /// `walks * prmb_slots` for any stream and any slot count (including 0,
    /// where merging must never happen).
    #[test]
    fn merges_never_exceed_prmb_capacity(stream in access_stream(),
                                         slots in 0usize..8, ptws in 1usize..16) {
        let pages: Vec<u64> = (0..64).collect();
        let pt = table_with_pages(&pages);
        let mut engine = TranslationEngine::new(
            MmuConfig::baseline_iommu().with_ptws(ptws).with_prmb_slots(slots),
        );
        let mut cycle = 0u64;
        for (page, offset) in &stream {
            let outcome = engine.translate(&pt, VirtAddr::new((page << 12) | offset), cycle);
            cycle = outcome.accept_cycle + 1;
        }
        let stats = engine.stats();
        prop_assert!(stats.merged <= stats.walks * slots as u64,
                     "{} merges exceed {} walks x {} slots", stats.merged, stats.walks, slots);
        if slots == 0 {
            prop_assert_eq!(stats.merged, 0);
        }
    }

    /// `reset()` returns the engine to a state that replays identically: the
    /// same stream driven after a reset produces exactly the same outcome
    /// sequence and statistics as the first run.
    #[test]
    fn reset_replays_identically(stream in access_stream(), neummu in any::<bool>()) {
        let pages: Vec<u64> = (0..64).collect();
        let pt = table_with_pages(&pages);
        let config = if neummu { MmuConfig::neummu() } else { MmuConfig::baseline_iommu() };
        let mut engine = TranslationEngine::new(config);
        let drive = |engine: &mut TranslationEngine| {
            let mut cycle = 0u64;
            let mut outcomes = Vec::with_capacity(stream.len());
            for (page, offset) in &stream {
                let outcome = engine.translate(&pt, VirtAddr::new((page << 12) | offset), cycle);
                cycle = outcome.accept_cycle + 1;
                outcomes.push(outcome);
            }
            outcomes
        };
        let first = drive(&mut engine);
        let stats_first = *engine.stats();
        engine.reset();
        prop_assert_eq!(engine.stats().requests, 0);
        let second = drive(&mut engine);
        prop_assert_eq!(first, second);
        prop_assert_eq!(stats_first, *engine.stats());
    }

    /// A path tag always matches itself and the TPC/UPTC never skip the leaf
    /// level of a walk.
    #[test]
    fn walk_caches_never_skip_the_leaf(pages_accessed in prop::collection::vec(0u64..1024, 1..100)) {
        let pages: Vec<u64> = (0..1024).collect();
        let pt = table_with_pages(&pages);
        let mut tpc = TranslationPathCache::new(4);
        let mut uptc = UnifiedPageTableCache::new(16);
        for page in pages_accessed {
            let walk = pt.walk(VirtAddr::new(page << 12));
            let total = walk.memory_accesses();
            for outcome in [tpc.access(&walk), uptc.access(&walk)] {
                prop_assert!(outcome.levels_read >= 1);
                prop_assert_eq!(outcome.levels_read + outcome.skipped_levels, total);
            }
        }
    }
}
