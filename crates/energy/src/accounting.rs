//! The [`EnergyMeter`]: event counting and energy aggregation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::tables::EnergyTable;

/// An energy-relevant event in the translation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyEvent {
    /// One DRAM access performed by a page-table walk (one visited level).
    PageWalkMemoryAccess,
    /// One IOTLB lookup.
    TlbLookup,
    /// One IOTLB fill.
    TlbFill,
    /// One pending-translation-scoreboard lookup.
    PtsLookup,
    /// One PRMB slot write (request merged into an in-flight walk).
    PrmbWrite,
    /// One PRMB slot read (merged request returned to the DMA).
    PrmbRead,
    /// One TPreg access (tag compare or fill).
    TpregAccess,
    /// One multi-entry MMU-cache lookup (UPTC/TPC design points).
    MmuCacheLookup,
}

impl EnergyEvent {
    /// All event kinds.
    pub const ALL: [EnergyEvent; 8] = [
        EnergyEvent::PageWalkMemoryAccess,
        EnergyEvent::TlbLookup,
        EnergyEvent::TlbFill,
        EnergyEvent::PtsLookup,
        EnergyEvent::PrmbWrite,
        EnergyEvent::PrmbRead,
        EnergyEvent::TpregAccess,
        EnergyEvent::MmuCacheLookup,
    ];
}

impl fmt::Display for EnergyEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EnergyEvent::PageWalkMemoryAccess => "page-walk DRAM access",
            EnergyEvent::TlbLookup => "TLB lookup",
            EnergyEvent::TlbFill => "TLB fill",
            EnergyEvent::PtsLookup => "PTS lookup",
            EnergyEvent::PrmbWrite => "PRMB write",
            EnergyEvent::PrmbRead => "PRMB read",
            EnergyEvent::TpregAccess => "TPreg access",
            EnergyEvent::MmuCacheLookup => "MMU-cache lookup",
        };
        f.write_str(name)
    }
}

/// Per-event-kind energy totals, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy spent on page-walk DRAM accesses.
    pub dram_nj: f64,
    /// Energy spent on all SRAM structures (TLB, PTS, PRMB, TPreg, MMU caches).
    pub sram_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.dram_nj + self.sram_nj
    }
}

/// Counts translation-pipeline events and converts them to energy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyMeter {
    table: EnergyTable,
    counts: [u64; EnergyEvent::ALL.len()],
}

impl Default for EnergyMeter {
    fn default() -> Self {
        Self::new(EnergyTable::default())
    }
}

impl EnergyMeter {
    /// Creates a meter using the given energy table.
    #[must_use]
    pub fn new(table: EnergyTable) -> Self {
        EnergyMeter {
            table,
            counts: [0; EnergyEvent::ALL.len()],
        }
    }

    /// Index of `event` in [`EnergyEvent::ALL`]. A direct match rather than a
    /// scan: `record` sits on the per-translation hot path (two to three
    /// events per request).
    const fn index(event: EnergyEvent) -> usize {
        match event {
            EnergyEvent::PageWalkMemoryAccess => 0,
            EnergyEvent::TlbLookup => 1,
            EnergyEvent::TlbFill => 2,
            EnergyEvent::PtsLookup => 3,
            EnergyEvent::PrmbWrite => 4,
            EnergyEvent::PrmbRead => 5,
            EnergyEvent::TpregAccess => 6,
            EnergyEvent::MmuCacheLookup => 7,
        }
    }

    /// Records `count` occurrences of `event`.
    #[inline]
    pub fn record(&mut self, event: EnergyEvent, count: u64) {
        self.counts[Self::index(event)] += count;
    }

    /// Number of recorded occurrences of `event`.
    #[must_use]
    pub fn count(&self, event: EnergyEvent) -> u64 {
        self.counts[Self::index(event)]
    }

    /// Energy cost of a single occurrence of `event`, in nanojoules.
    #[must_use]
    pub fn unit_cost_nj(&self, event: EnergyEvent) -> f64 {
        match event {
            EnergyEvent::PageWalkMemoryAccess => self.table.dram_access_nj,
            EnergyEvent::TlbLookup => self.table.tlb_lookup_nj,
            EnergyEvent::TlbFill => self.table.tlb_fill_nj,
            EnergyEvent::PtsLookup => self.table.pts_lookup_nj,
            EnergyEvent::PrmbWrite => self.table.prmb_write_nj,
            EnergyEvent::PrmbRead => self.table.prmb_read_nj,
            EnergyEvent::TpregAccess => self.table.tpreg_access_nj,
            EnergyEvent::MmuCacheLookup => self.table.mmu_cache_lookup_nj,
        }
    }

    /// Total translation energy in nanojoules.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        EnergyEvent::ALL
            .iter()
            .map(|e| self.count(*e) as f64 * self.unit_cost_nj(*e))
            .sum()
    }

    /// DRAM-vs-SRAM breakdown of the total energy.
    #[must_use]
    pub fn breakdown(&self) -> EnergyBreakdown {
        let dram_nj = self.count(EnergyEvent::PageWalkMemoryAccess) as f64
            * self.unit_cost_nj(EnergyEvent::PageWalkMemoryAccess);
        EnergyBreakdown {
            dram_nj,
            sram_nj: self.total_nj() - dram_nj,
        }
    }

    /// Merges another meter's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two meters use different energy tables.
    pub fn merge(&mut self, other: &EnergyMeter) {
        assert!(
            self.table == other.table,
            "cannot merge energy meters that use different energy tables"
        );
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.counts = [0; EnergyEvent::ALL.len()];
    }

    /// Ratio of this meter's total energy to `baseline`'s total energy.
    ///
    /// Returns `None` if the baseline recorded zero energy.
    #[must_use]
    pub fn relative_to(&self, baseline: &EnergyMeter) -> Option<f64> {
        let base = baseline.total_nj();
        if base == 0.0 {
            None
        } else {
            Some(self.total_nj() / base)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_total() {
        let mut m = EnergyMeter::default();
        assert_eq!(m.total_nj(), 0.0);
        m.record(EnergyEvent::PageWalkMemoryAccess, 4);
        m.record(EnergyEvent::TlbLookup, 100);
        assert_eq!(m.count(EnergyEvent::PageWalkMemoryAccess), 4);
        assert_eq!(m.count(EnergyEvent::TlbLookup), 100);
        let expected = 4.0 * m.unit_cost_nj(EnergyEvent::PageWalkMemoryAccess)
            + 100.0 * m.unit_cost_nj(EnergyEvent::TlbLookup);
        assert!((m.total_nj() - expected).abs() < 1e-12);
    }

    #[test]
    fn breakdown_splits_dram_and_sram() {
        let mut m = EnergyMeter::default();
        m.record(EnergyEvent::PageWalkMemoryAccess, 10);
        m.record(EnergyEvent::PrmbWrite, 10);
        let b = m.breakdown();
        assert!(b.dram_nj > b.sram_nj);
        assert!((b.total_nj() - m.total_nj()).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyMeter::default();
        let mut b = EnergyMeter::default();
        a.record(EnergyEvent::TlbLookup, 5);
        b.record(EnergyEvent::TlbLookup, 7);
        b.record(EnergyEvent::TpregAccess, 2);
        a.merge(&b);
        assert_eq!(a.count(EnergyEvent::TlbLookup), 12);
        assert_eq!(a.count(EnergyEvent::TpregAccess), 2);
    }

    #[test]
    fn relative_to_baseline() {
        let mut neummu = EnergyMeter::default();
        let mut iommu = EnergyMeter::default();
        neummu.record(EnergyEvent::PageWalkMemoryAccess, 10);
        iommu.record(EnergyEvent::PageWalkMemoryAccess, 163);
        let ratio = iommu.relative_to(&neummu).unwrap();
        assert!((ratio - 16.3).abs() < 0.01);
        let empty = EnergyMeter::default();
        assert!(neummu.relative_to(&empty).is_none());
    }

    #[test]
    fn reset_clears_counts() {
        let mut m = EnergyMeter::default();
        m.record(EnergyEvent::PrmbRead, 3);
        m.reset();
        assert_eq!(m.total_nj(), 0.0);
        assert_eq!(m.count(EnergyEvent::PrmbRead), 0);
    }

    #[test]
    fn index_matches_all_order() {
        for (i, e) in EnergyEvent::ALL.iter().enumerate() {
            assert_eq!(EnergyMeter::index(*e), i);
        }
    }

    #[test]
    fn event_display_names_are_nonempty() {
        for e in EnergyEvent::ALL {
            assert!(!e.to_string().is_empty());
        }
    }
}
