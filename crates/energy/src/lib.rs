//! Energy accounting for address translation.
//!
//! The NeuMMU paper quantifies the energy cost of address translation with two
//! ingredients (Section IV-B/IV-C, Figure 12b):
//!
//! 1. the **DRAM accesses performed by page-table walks** (each walked level is
//!    one memory access), costed with a 45 nm-class energy table, and
//! 2. the **SRAM accesses of the MMU structures themselves** (TLB, PTS, PRMB,
//!    TPreg), costed with CACTI-style per-access constants.
//!
//! All headline energy results in the paper are *ratios* between design points
//! (e.g. "7.1× more energy without PRMB", "16.3× less energy than the baseline
//! IOMMU"), so what matters is counting events consistently; the absolute
//! constants only set the scale.
//!
//! # Example
//!
//! ```
//! use neummu_energy::{EnergyEvent, EnergyMeter};
//!
//! let mut meter = EnergyMeter::default();
//! meter.record(EnergyEvent::PageWalkMemoryAccess, 4); // one full 4-level walk
//! meter.record(EnergyEvent::TlbLookup, 1);
//! assert!(meter.total_nj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accounting;
pub mod tables;

pub use accounting::{EnergyBreakdown, EnergyEvent, EnergyMeter};
pub use tables::EnergyTable;
