//! Per-event energy constants.
//!
//! The paper uses Horowitz's 45 nm energy table for DRAM accesses incurred by
//! page-table walks and CACTI 6.5 for the SRAM structures it adds (PRMB, PTS,
//! TPreg). The constants below follow the commonly cited 45 nm numbers: a DRAM
//! access costs on the order of nanojoules while small SRAM lookups cost
//! picojoules — a three-orders-of-magnitude gap, which is what makes redundant
//! page-table walks so expensive (Figure 12b).

use serde::{Deserialize, Serialize};

/// Per-event energy constants, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// One DRAM access performed by a page-table walk (one level).
    pub dram_access_nj: f64,
    /// One lookup in the 2048-entry IOTLB.
    pub tlb_lookup_nj: f64,
    /// One fill (insertion) into the IOTLB.
    pub tlb_fill_nj: f64,
    /// One lookup of the fully-associative pending translation scoreboard.
    pub pts_lookup_nj: f64,
    /// One PRMB slot write (merging a pending request).
    pub prmb_write_nj: f64,
    /// One PRMB slot read (returning a merged request to the DMA).
    pub prmb_read_nj: f64,
    /// One TPreg comparison/read (16-byte register per PTW).
    pub tpreg_access_nj: f64,
    /// One lookup in a multi-entry MMU cache (UPTC/TPC design points).
    pub mmu_cache_lookup_nj: f64,
}

impl EnergyTable {
    /// The default 45 nm-class constants used throughout the reproduction.
    #[must_use]
    pub const fn cmos_45nm() -> Self {
        EnergyTable {
            // Horowitz ISSCC'14 tutorial table: DRAM access ≈ 1.3–2.6 nJ.
            dram_access_nj: 2.0,
            // 2048-entry, ~16 KB SRAM lookup (CACTI-class estimate).
            tlb_lookup_nj: 0.012,
            tlb_fill_nj: 0.012,
            // 128-entry fully associative CAM.
            pts_lookup_nj: 0.006,
            // 8-byte PRMB slot access.
            prmb_write_nj: 0.002,
            prmb_read_nj: 0.002,
            // 16-byte register comparison.
            tpreg_access_nj: 0.0005,
            // Small (16–64 entry) MMU cache lookup.
            mmu_cache_lookup_nj: 0.004,
        }
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self::cmos_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_dominates_sram_by_orders_of_magnitude() {
        let t = EnergyTable::cmos_45nm();
        assert!(t.dram_access_nj > 100.0 * t.tlb_lookup_nj);
        assert!(t.dram_access_nj > 100.0 * t.prmb_write_nj);
        assert!(t.dram_access_nj > 1000.0 * t.tpreg_access_nj);
    }

    #[test]
    fn all_constants_positive() {
        let t = EnergyTable::default();
        for v in [
            t.dram_access_nj,
            t.tlb_lookup_nj,
            t.tlb_fill_nj,
            t.pts_lookup_nj,
            t.prmb_write_nj,
            t.prmb_read_nj,
            t.tpreg_access_nj,
            t.mmu_cache_lookup_nj,
        ] {
            assert!(v > 0.0);
        }
    }
}
