//! Seeded, cycle-deterministic device-fault model for the NeuMMU translation
//! stack.
//!
//! The paper's evaluation assumes a *perfect* device: every page walk
//! completes, every fault response arrives, every walker stays healthy
//! forever. This crate supplies the turbulence. A [`DeviceFaultPlan`] is pure
//! data plus a splitmix64 counter — no wall clock, no environment, no
//! `RandomState` — so the same seed produces the same fault schedule on every
//! run, every thread count, every platform. That is what lets the
//! `resilience` experiment family demand byte-identical artifacts across
//! `--threads 1` and `--threads 4`.
//!
//! Four fault kinds are modeled (see [`FaultKind`]):
//!
//! * **Walk timeouts** — a page walk stops making progress and the timeout
//!   detector fires after a configured number of cycles.
//! * **Dropped responses** — the walk completes but its completion response
//!   to the host fault-handling path is lost in transit.
//! * **Transient translation errors** — the walker reads a wrong-but-detected
//!   PTE (caught by an integrity check, so always *detected*, never silent).
//! * **Stuck walkers** — a walker lane hard-fails mid-walk and holds its walk
//!   until a watchdog (if enabled) requeues it.
//!
//! Each kind has an independent Bernoulli rate and a burst knob: when a draw
//! strikes with `burst = n`, the next `n - 1` draws of the same kind strike
//! unconditionally, modeling correlated fault storms rather than memoryless
//! noise.
//!
//! # Analytic resolution
//!
//! The translation engine resolves every injected fault *at walk-admission
//! time*: [`DeviceFaultPlan::draw_walk`] combines the struck fault kind with
//! the enabled [`ResilienceConfig`] mechanisms and returns an
//! [`InjectedFault`] carrying the walk's final total latency, whether it
//! ultimately failed, whether it hung until the livelock bound, whether a
//! mechanism recovered it, and whether the walker must be quarantined. The
//! engine then admits a single walk with that perturbed latency. Because the
//! perturbed completion cycle is fixed before any request (or PRMB merge)
//! attaches to the walk, conservation — no request lost, no request
//! duplicated — holds structurally under every fault mix: a fault can only
//! ever *delay* or *fail* a walk, never detach its riders.
//!
//! Accounting is exact: [`FaultCounters`] tracks injected / detected /
//! recovered / hung per kind, plus a recovery-latency histogram (extra cycles
//! beyond the fault-free walk latency) keyed by exact cycle counts.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of distinct fault kinds; the length of [`FaultKind::ALL`].
pub const FAULT_KINDS: usize = 4;

/// A kind of injectable device fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A page walk stops making progress; the timeout detector (if the retry
    /// mechanism is enabled) notices after `timeout_cycles`.
    WalkTimeout,
    /// The walk completes but its page-fault-handling response to the host is
    /// dropped in transit; only a retransmit bounds the stall.
    DroppedResponse,
    /// A wrong-but-detected PTE read: an integrity check catches the bad
    /// entry, so this kind is always detected even with every mechanism off.
    TransientError,
    /// A walker lane hard-fails and holds its walk; only the watchdog can
    /// requeue it, and quarantine (if enabled) parks the lane afterwards.
    WalkerStuck,
}

impl FaultKind {
    /// Every fault kind, in stable index order.
    pub const ALL: [FaultKind; FAULT_KINDS] = [
        FaultKind::WalkTimeout,
        FaultKind::DroppedResponse,
        FaultKind::TransientError,
        FaultKind::WalkerStuck,
    ];

    /// Stable index of this kind into per-kind counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultKind::WalkTimeout => 0,
            FaultKind::DroppedResponse => 1,
            FaultKind::TransientError => 2,
            FaultKind::WalkerStuck => 3,
        }
    }

    /// Short stable label, used in trace event kinds (`fault/<label>/...`)
    /// and report tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::WalkTimeout => "timeout",
            FaultKind::DroppedResponse => "dropped",
            FaultKind::TransientError => "transient",
            FaultKind::WalkerStuck => "stuck",
        }
    }
}

/// Per-kind injection knobs: a Bernoulli rate and a burst length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRate {
    /// Probability in `[0.0, 1.0]` that a walk admission draws this fault.
    pub rate: f64,
    /// Burst length: when a draw strikes, the next `burst - 1` draws of the
    /// same kind strike unconditionally. `1` means memoryless injection.
    pub burst: u32,
}

impl FaultRate {
    /// A disarmed rate: never strikes.
    pub const ZERO: FaultRate = FaultRate {
        rate: 0.0,
        burst: 1,
    };

    /// Memoryless injection at `rate`.
    pub fn of(rate: f64) -> FaultRate {
        FaultRate { rate, burst: 1 }
    }

    /// Bursty injection: `rate` to open a burst of `burst` strikes.
    pub fn bursty(rate: f64, burst: u32) -> FaultRate {
        FaultRate { rate, burst }
    }
}

impl Default for FaultRate {
    fn default() -> Self {
        FaultRate::ZERO
    }
}

/// Validation failure for a fault or resilience configuration.
///
/// Mirrors the shape of `SimError::InvalidConfig`: a single human-readable
/// reason naming the offending knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Why the configuration was rejected.
    pub reason: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault config: {}", self.reason)
    }
}

impl std::error::Error for FaultError {}

fn invalid<T>(reason: String) -> Result<T, FaultError> {
    Err(FaultError { reason })
}

/// Seeded device-fault injection rates, one [`FaultRate`] per kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceFaultConfig {
    /// Seed for the per-kind splitmix64 draw streams.
    pub seed: u64,
    /// Rate/burst for [`FaultKind::WalkTimeout`].
    pub walk_timeout: FaultRate,
    /// Rate/burst for [`FaultKind::DroppedResponse`].
    pub dropped_response: FaultRate,
    /// Rate/burst for [`FaultKind::TransientError`].
    pub transient_error: FaultRate,
    /// Rate/burst for [`FaultKind::WalkerStuck`].
    pub walker_stuck: FaultRate,
}

impl DeviceFaultConfig {
    /// A disarmed config: all rates zero. A plan built from this never
    /// injects and a simulation running it is bit-identical to one with no
    /// plan attached at all.
    pub fn none(seed: u64) -> DeviceFaultConfig {
        DeviceFaultConfig {
            seed,
            walk_timeout: FaultRate::ZERO,
            dropped_response: FaultRate::ZERO,
            transient_error: FaultRate::ZERO,
            walker_stuck: FaultRate::ZERO,
        }
    }

    /// Memoryless injection of every kind at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> DeviceFaultConfig {
        DeviceFaultConfig {
            seed,
            walk_timeout: FaultRate::of(rate),
            dropped_response: FaultRate::of(rate),
            transient_error: FaultRate::of(rate),
            walker_stuck: FaultRate::of(rate),
        }
    }

    /// Builder: replace the rate for one kind.
    pub fn with_kind(mut self, kind: FaultKind, rate: FaultRate) -> DeviceFaultConfig {
        match kind {
            FaultKind::WalkTimeout => self.walk_timeout = rate,
            FaultKind::DroppedResponse => self.dropped_response = rate,
            FaultKind::TransientError => self.transient_error = rate,
            FaultKind::WalkerStuck => self.walker_stuck = rate,
        }
        self
    }

    /// The rate configured for `kind`.
    pub fn rate_for(&self, kind: FaultKind) -> FaultRate {
        match kind {
            FaultKind::WalkTimeout => self.walk_timeout,
            FaultKind::DroppedResponse => self.dropped_response,
            FaultKind::TransientError => self.transient_error,
            FaultKind::WalkerStuck => self.walker_stuck,
        }
    }

    /// True when every rate is exactly zero (the plan is disarmed).
    pub fn is_zero(&self) -> bool {
        FaultKind::ALL.iter().all(|&k| self.rate_for(k).rate == 0.0)
    }

    /// Reject NaN, negative and above-unity rates, and zero burst lengths.
    pub fn validate(&self) -> Result<(), FaultError> {
        for kind in FaultKind::ALL {
            let FaultRate { rate, burst } = self.rate_for(kind);
            if !rate.is_finite() {
                return invalid(format!(
                    "{} fault rate must be finite, got {rate}",
                    kind.label()
                ));
            }
            if !(0.0..=1.0).contains(&rate) {
                return invalid(format!(
                    "{} fault rate must be in [0, 1], got {rate}",
                    kind.label()
                ));
            }
            if burst == 0 {
                return invalid(format!(
                    "{} fault burst must be at least 1, got 0",
                    kind.label()
                ));
            }
        }
        Ok(())
    }
}

/// Which recovery mechanisms are armed and their cycle budgets.
///
/// Every cycle knob must be positive — a zero-cycle timeout or backoff would
/// model an impossible instantaneous detector — and the livelock bound must
/// exceed both detection delays, because an *undetected* fault is by
/// definition the one the enabled mechanisms never noticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Bounded retry with exponential backoff for timed-out walks and
    /// transient PTE errors.
    pub retry: bool,
    /// Maximum retry (and retransmit) attempts after the initial try.
    pub max_retries: u32,
    /// Backoff before retry attempt `n` is `backoff_base_cycles << n`.
    pub backoff_base_cycles: u64,
    /// Cycles before a non-progressing walk is declared timed out.
    pub timeout_cycles: u64,
    /// Walker-pool watchdog: detects stuck walks and requeues their
    /// PRMB-merged requests onto a healthy re-walk.
    pub watchdog: bool,
    /// Cycles of no progress before the watchdog requeues a stuck walk.
    pub watchdog_cycles: u64,
    /// Park a hard-failed walker after its walk retires; the pool shrinks
    /// and the PTS routes around it until the cool-down expires.
    pub quarantine: bool,
    /// Cycles a quarantined walker stays parked before re-admission.
    pub quarantine_cooldown_cycles: u64,
    /// Retransmit the completion response when the host's copy was dropped.
    pub retransmit: bool,
    /// Cycles per retransmit attempt of a dropped response.
    pub retransmit_cycles: u64,
    /// With the relevant mechanism disabled, an unrecoverable fault stalls
    /// for this many cycles before the simulation's livelock detector gives
    /// up on the walk and reports it hung. Must exceed both detection
    /// delays.
    pub livelock_bound_cycles: u64,
}

impl ResilienceConfig {
    fn base() -> ResilienceConfig {
        ResilienceConfig {
            retry: false,
            max_retries: 3,
            backoff_base_cycles: 100,
            timeout_cycles: 400,
            watchdog: false,
            watchdog_cycles: 800,
            quarantine: false,
            quarantine_cooldown_cycles: 10_000,
            retransmit: false,
            retransmit_cycles: 300,
            livelock_bound_cycles: 100_000,
        }
    }

    /// Every mechanism disabled: the baseline that may livelock-detect.
    pub fn all_off() -> ResilienceConfig {
        ResilienceConfig::base()
    }

    /// Every mechanism enabled with the default cycle budgets.
    pub fn all_on() -> ResilienceConfig {
        ResilienceConfig {
            retry: true,
            watchdog: true,
            quarantine: true,
            retransmit: true,
            ..ResilienceConfig::base()
        }
    }

    /// Builder: toggle bounded retry.
    pub fn with_retry(mut self, on: bool) -> ResilienceConfig {
        self.retry = on;
        self
    }

    /// Builder: toggle the walker-pool watchdog.
    pub fn with_watchdog(mut self, on: bool) -> ResilienceConfig {
        self.watchdog = on;
        self
    }

    /// Builder: toggle walker quarantine.
    pub fn with_quarantine(mut self, on: bool) -> ResilienceConfig {
        self.quarantine = on;
        self
    }

    /// Builder: toggle response retransmit.
    pub fn with_retransmit(mut self, on: bool) -> ResilienceConfig {
        self.retransmit = on;
        self
    }

    /// Reject zero-cycle budgets, out-of-range retry counts, and a livelock
    /// bound that would fire before the detectors it backstops.
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.max_retries == 0 || self.max_retries > 16 {
            return invalid(format!(
                "max_retries must be in 1..=16, got {}",
                self.max_retries
            ));
        }
        let cycles = [
            ("backoff_base_cycles", self.backoff_base_cycles),
            ("timeout_cycles", self.timeout_cycles),
            ("watchdog_cycles", self.watchdog_cycles),
            (
                "quarantine_cooldown_cycles",
                self.quarantine_cooldown_cycles,
            ),
            ("retransmit_cycles", self.retransmit_cycles),
            ("livelock_bound_cycles", self.livelock_bound_cycles),
        ];
        for (name, value) in cycles {
            if value == 0 {
                return invalid(format!("{name} must be positive, got 0"));
            }
        }
        if self.livelock_bound_cycles <= self.timeout_cycles {
            return invalid(format!(
                "livelock_bound_cycles ({}) must exceed timeout_cycles ({})",
                self.livelock_bound_cycles, self.timeout_cycles
            ));
        }
        if self.livelock_bound_cycles <= self.watchdog_cycles {
            return invalid(format!(
                "livelock_bound_cycles ({}) must exceed watchdog_cycles ({})",
                self.livelock_bound_cycles, self.watchdog_cycles
            ));
        }
        Ok(())
    }
}

/// The resolved outcome of one injected fault, computed at walk admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Which kind struck.
    pub kind: FaultKind,
    /// Total walk latency in cycles, replacing the fault-free latency. For a
    /// recovered fault this folds in detection delay, backoff and re-walk
    /// time; for a hung fault it is the livelock bound.
    pub total_latency: u64,
    /// The walk ultimately produced no usable translation (implied by
    /// `hung`).
    pub failed: bool,
    /// No enabled mechanism ever noticed the fault; the walk stalled until
    /// the livelock bound expired.
    pub hung: bool,
    /// An enabled mechanism detected the fault and the walk still produced a
    /// usable translation.
    pub recovered: bool,
    /// The serving walker must be parked for the quarantine cool-down once
    /// this walk retires.
    pub quarantine: bool,
}

/// Exact per-kind fault accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Faults injected, indexed by [`FaultKind::index`].
    pub injected: [u64; FAULT_KINDS],
    /// Faults noticed by an enabled mechanism or an intrinsic check.
    pub detected: [u64; FAULT_KINDS],
    /// Detected faults from which the walk still produced a translation.
    pub recovered: [u64; FAULT_KINDS],
    /// Faults no mechanism noticed: the walk stalled to the livelock bound.
    pub hung: [u64; FAULT_KINDS],
    /// Recovery latency (extra cycles beyond the fault-free walk latency)
    /// → occurrence count, exact to the cycle.
    pub recovery_latency: BTreeMap<u64, u64>,
}

impl FaultCounters {
    /// Total faults injected across every kind.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Total faults detected across every kind.
    pub fn total_detected(&self) -> u64 {
        self.detected.iter().sum()
    }

    /// Total faults recovered across every kind.
    pub fn total_recovered(&self) -> u64 {
        self.recovered.iter().sum()
    }

    /// Total faults that hung to the livelock bound across every kind.
    pub fn total_hung(&self) -> u64 {
        self.hung.iter().sum()
    }

    fn record(&mut self, fault: &InjectedFault, walk_latency: u64) {
        let k = fault.kind.index();
        self.injected[k] += 1;
        if fault.hung {
            self.hung[k] += 1;
        } else {
            self.detected[k] += 1;
        }
        if fault.recovered {
            self.recovered[k] += 1;
            let extra = fault.total_latency.saturating_sub(walk_latency);
            *self.recovery_latency.entry(extra).or_insert(0) += 1;
        }
    }
}

/// One per-kind draw stream: a splitmix64 counter, a strike threshold and
/// burst state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Lane {
    state: u64,
    threshold: u64,
    armed: bool,
    burst: u32,
    burst_left: u32,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Lane {
    fn new(seed: u64, index: usize, rate: FaultRate) -> Lane {
        // Two mixing steps decorrelate the per-kind streams from the shared
        // seed (same idiom as the arrival generators' derive_seed).
        let mut state = seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut state);
        Lane {
            state,
            threshold: (rate.rate * u64::MAX as f64) as u64,
            armed: rate.rate > 0.0,
            burst: rate.burst,
            burst_left: 0,
        }
    }

    #[inline]
    fn draw(&mut self) -> bool {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            return true;
        }
        if !self.armed {
            return false;
        }
        let strike = splitmix64(&mut self.state) <= self.threshold;
        if strike {
            self.burst_left = self.burst - 1;
        }
        strike
    }
}

/// A deterministic schedule of device faults plus its exact accounting.
///
/// Plans are pure data: draws consume splitmix64 counters seeded from
/// [`DeviceFaultConfig::seed`], so two plans built from the same config
/// produce identical fault schedules regardless of host, thread count or
/// wall-clock time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceFaultPlan {
    config: DeviceFaultConfig,
    lanes: [Lane; FAULT_KINDS],
    counters: FaultCounters,
    armed: bool,
}

impl DeviceFaultPlan {
    /// Build a plan, rejecting invalid rates (see
    /// [`DeviceFaultConfig::validate`]).
    pub fn new(config: DeviceFaultConfig) -> Result<DeviceFaultPlan, FaultError> {
        config.validate()?;
        let lanes = [
            Lane::new(config.seed, 0, config.walk_timeout),
            Lane::new(config.seed, 1, config.dropped_response),
            Lane::new(config.seed, 2, config.transient_error),
            Lane::new(config.seed, 3, config.walker_stuck),
        ];
        let armed = !config.is_zero();
        Ok(DeviceFaultPlan {
            config,
            lanes,
            counters: FaultCounters::default(),
            armed,
        })
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &DeviceFaultConfig {
        &self.config
    }

    /// Exact injected/detected/recovered/hung accounting so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// True when every rate is zero: [`DeviceFaultPlan::draw_walk`] can never
    /// return a fault.
    #[inline]
    pub fn is_disarmed(&self) -> bool {
        !self.armed
    }

    /// Draw the fault outcome for one walk admission.
    ///
    /// All four kind lanes advance in a fixed priority order (stuck →
    /// timeout → transient → dropped) so the streams stay aligned regardless
    /// of which kind strikes; the first strike wins. `walk_latency` is the
    /// walk's fault-free latency in cycles — the returned
    /// [`InjectedFault::total_latency`] replaces it.
    pub fn draw_walk(
        &mut self,
        resilience: &ResilienceConfig,
        walk_latency: u64,
    ) -> Option<InjectedFault> {
        if !self.armed {
            return None;
        }
        let stuck = self.lanes[FaultKind::WalkerStuck.index()].draw();
        let timeout = self.lanes[FaultKind::WalkTimeout.index()].draw();
        let transient = self.lanes[FaultKind::TransientError.index()].draw();
        let dropped = self.lanes[FaultKind::DroppedResponse.index()].draw();
        let kind = if stuck {
            FaultKind::WalkerStuck
        } else if timeout {
            FaultKind::WalkTimeout
        } else if transient {
            FaultKind::TransientError
        } else if dropped {
            FaultKind::DroppedResponse
        } else {
            return None;
        };
        let fault = self.resolve(kind, resilience, walk_latency);
        self.counters.record(&fault, walk_latency);
        Some(fault)
    }

    /// Combine a struck kind with the enabled mechanisms into the walk's
    /// final outcome. Retries/retransmits redraw the same kind's lane, so
    /// bursts make recovery attempts fail too.
    fn resolve(
        &mut self,
        kind: FaultKind,
        r: &ResilienceConfig,
        walk_latency: u64,
    ) -> InjectedFault {
        let hung = |total| InjectedFault {
            kind,
            total_latency: total,
            failed: true,
            hung: true,
            recovered: false,
            quarantine: kind == FaultKind::WalkerStuck && r.quarantine,
        };
        let outcome = |total: u64, recovered: bool| InjectedFault {
            kind,
            total_latency: total,
            failed: !recovered,
            hung: false,
            recovered,
            quarantine: kind == FaultKind::WalkerStuck && r.quarantine,
        };
        match kind {
            FaultKind::WalkerStuck => {
                if r.watchdog {
                    // Watchdog notices the stalled walk after watchdog_cycles
                    // and requeues its merged requests onto a clean re-walk.
                    outcome(r.watchdog_cycles.saturating_add(walk_latency), true)
                } else {
                    hung(r.livelock_bound_cycles)
                }
            }
            FaultKind::WalkTimeout => {
                if !r.retry {
                    return hung(r.livelock_bound_cycles);
                }
                // First attempt burns the full detection window, then each
                // retry backs off exponentially and redraws the lane.
                let mut total = r.timeout_cycles;
                let lane = FaultKind::WalkTimeout.index();
                for attempt in 0..r.max_retries {
                    let backoff = r
                        .backoff_base_cycles
                        .checked_shl(attempt)
                        .unwrap_or(u64::MAX);
                    total = total.saturating_add(backoff);
                    if self.lanes[lane].draw() {
                        total = total.saturating_add(r.timeout_cycles);
                    } else {
                        return outcome(total.saturating_add(walk_latency), true);
                    }
                }
                outcome(total, false)
            }
            FaultKind::TransientError => {
                // The bad read is always caught by the integrity check, so
                // even with retry off this is detected (reported as a
                // translation fault), never hung.
                let mut total = walk_latency;
                if !r.retry {
                    return outcome(total, false);
                }
                let lane = FaultKind::TransientError.index();
                for attempt in 0..r.max_retries {
                    let backoff = r
                        .backoff_base_cycles
                        .checked_shl(attempt)
                        .unwrap_or(u64::MAX);
                    total = total.saturating_add(backoff).saturating_add(walk_latency);
                    if !self.lanes[lane].draw() {
                        return outcome(total, true);
                    }
                }
                outcome(total, false)
            }
            FaultKind::DroppedResponse => {
                if !r.retransmit {
                    return hung(r.livelock_bound_cycles);
                }
                // The walk itself completed; each retransmit attempt redraws
                // whether the response is dropped again.
                let mut total = walk_latency;
                let lane = FaultKind::DroppedResponse.index();
                for _ in 0..r.max_retries {
                    total = total.saturating_add(r.retransmit_cycles);
                    if !self.lanes[lane].draw() {
                        return outcome(total, true);
                    }
                }
                outcome(total, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(
        plan: &mut DeviceFaultPlan,
        r: &ResilienceConfig,
        draws: usize,
    ) -> Vec<Option<InjectedFault>> {
        (0..draws).map(|_| plan.draw_walk(r, 400)).collect()
    }

    #[test]
    fn zero_rate_plan_never_injects() {
        let mut plan = DeviceFaultPlan::new(DeviceFaultConfig::none(7)).unwrap();
        assert!(plan.is_disarmed());
        let r = ResilienceConfig::all_on();
        assert!(drain(&mut plan, &r, 10_000).iter().all(|f| f.is_none()));
        assert_eq!(plan.counters(), &FaultCounters::default());
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = DeviceFaultConfig::uniform(0xDEAD_BEEF, 0.05);
        let r = ResilienceConfig::all_on();
        let mut a = DeviceFaultPlan::new(config).unwrap();
        let mut b = DeviceFaultPlan::new(config).unwrap();
        assert_eq!(drain(&mut a, &r, 5_000), drain(&mut b, &r, 5_000));
        assert_eq!(a.counters(), b.counters());
        assert!(
            a.counters().total_injected() > 0,
            "5% over 5k draws must strike"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let r = ResilienceConfig::all_on();
        let mut a = DeviceFaultPlan::new(DeviceFaultConfig::uniform(1, 0.05)).unwrap();
        let mut b = DeviceFaultPlan::new(DeviceFaultConfig::uniform(2, 0.05)).unwrap();
        assert_ne!(drain(&mut a, &r, 5_000), drain(&mut b, &r, 5_000));
    }

    #[test]
    fn rate_one_always_strikes() {
        let config =
            DeviceFaultConfig::none(3).with_kind(FaultKind::TransientError, FaultRate::of(1.0));
        let mut plan = DeviceFaultPlan::new(config).unwrap();
        let r = ResilienceConfig::all_off();
        for fault in drain(&mut plan, &r, 100) {
            let fault = fault.expect("rate 1.0 must strike every draw");
            assert_eq!(fault.kind, FaultKind::TransientError);
        }
        assert_eq!(
            plan.counters().injected[FaultKind::TransientError.index()],
            100
        );
    }

    #[test]
    fn burst_extends_a_strike() {
        // Rate 1.0 with burst 4 on one kind: after any strike the next three
        // draws of that kind strike from burst state, leaving the rng
        // untouched — verified by comparing against a burst-1 twin that
        // consumes one rng value per draw.
        let bursty = DeviceFaultConfig::none(11)
            .with_kind(FaultKind::DroppedResponse, FaultRate::bursty(0.2, 4));
        let mut plan = DeviceFaultPlan::new(bursty).unwrap();
        let r = ResilienceConfig::all_off();
        let outcomes: Vec<bool> = (0..2_000)
            .map(|_| plan.draw_walk(&r, 400).is_some())
            .collect();
        // Every strike opens a burst: the two draws after a fresh strike must
        // also strike.
        let mut i = 0;
        while i < outcomes.len() {
            if outcomes[i] {
                for j in 1..4 {
                    if i + j < outcomes.len() {
                        assert!(outcomes[i + j], "draw {} inside burst must strike", i + j);
                    }
                }
                i += 4;
            } else {
                i += 1;
            }
        }
        let hit = outcomes.iter().filter(|&&s| s).count();
        assert!(hit > 0, "20% over 2k draws must strike");
    }

    #[test]
    fn counters_conserve_injected() {
        let config = DeviceFaultConfig::uniform(42, 0.2);
        let r = ResilienceConfig::all_on().with_retransmit(false);
        let mut plan = DeviceFaultPlan::new(config).unwrap();
        drain(&mut plan, &r, 10_000);
        let c = plan.counters();
        assert!(c.total_injected() > 0);
        assert_eq!(c.total_injected(), c.total_detected() + c.total_hung());
        assert!(c.total_recovered() <= c.total_detected());
        let histogram_total: u64 = c.recovery_latency.values().sum();
        assert_eq!(histogram_total, c.total_recovered());
    }

    #[test]
    fn watchdog_recovers_stuck_walks() {
        let config =
            DeviceFaultConfig::none(5).with_kind(FaultKind::WalkerStuck, FaultRate::of(1.0));
        let r = ResilienceConfig::all_on();
        let mut plan = DeviceFaultPlan::new(config).unwrap();
        let fault = plan.draw_walk(&r, 400).unwrap();
        assert_eq!(fault.kind, FaultKind::WalkerStuck);
        assert!(fault.recovered && !fault.failed && !fault.hung);
        assert!(fault.quarantine, "quarantine enabled must park the walker");
        assert_eq!(fault.total_latency, r.watchdog_cycles + 400);
        assert_eq!(
            plan.counters().recovery_latency.get(&r.watchdog_cycles),
            Some(&1)
        );
    }

    #[test]
    fn no_watchdog_means_hung_at_livelock_bound() {
        let config =
            DeviceFaultConfig::none(5).with_kind(FaultKind::WalkerStuck, FaultRate::of(1.0));
        let r = ResilienceConfig::all_off();
        let mut plan = DeviceFaultPlan::new(config).unwrap();
        let fault = plan.draw_walk(&r, 400).unwrap();
        assert!(fault.hung && fault.failed && !fault.recovered);
        assert!(!fault.quarantine);
        assert_eq!(fault.total_latency, r.livelock_bound_cycles);
        assert_eq!(plan.counters().total_hung(), 1);
        assert_eq!(plan.counters().total_detected(), 0);
    }

    #[test]
    fn timeout_retry_exhaustion_is_detected_failure() {
        // Timeout at rate 1.0: every retry times out again, so retry
        // exhausts and the fault is a detected (not hung) failure with the
        // exact backoff chain latency.
        let config =
            DeviceFaultConfig::none(9).with_kind(FaultKind::WalkTimeout, FaultRate::of(1.0));
        let r = ResilienceConfig::all_on();
        let mut plan = DeviceFaultPlan::new(config).unwrap();
        let fault = plan.draw_walk(&r, 400).unwrap();
        assert!(fault.failed && !fault.hung && !fault.recovered);
        let backoffs: u64 = (0..r.max_retries).map(|a| r.backoff_base_cycles << a).sum();
        let expected = r.timeout_cycles * u64::from(r.max_retries + 1) + backoffs;
        assert_eq!(fault.total_latency, expected);
    }

    #[test]
    fn transient_without_retry_fails_fast_but_detected() {
        let config =
            DeviceFaultConfig::none(13).with_kind(FaultKind::TransientError, FaultRate::of(1.0));
        let r = ResilienceConfig::all_off();
        let mut plan = DeviceFaultPlan::new(config).unwrap();
        let fault = plan.draw_walk(&r, 400).unwrap();
        assert!(
            fault.failed && !fault.hung,
            "integrity check always detects"
        );
        assert_eq!(fault.total_latency, 400);
        assert_eq!(plan.counters().total_detected(), 1);
    }

    #[test]
    fn dropped_response_without_retransmit_hangs() {
        let config =
            DeviceFaultConfig::none(17).with_kind(FaultKind::DroppedResponse, FaultRate::of(1.0));
        let r = ResilienceConfig::all_off();
        let mut plan = DeviceFaultPlan::new(config).unwrap();
        let fault = plan.draw_walk(&r, 400).unwrap();
        assert!(fault.hung);
        assert_eq!(fault.total_latency, r.livelock_bound_cycles);
    }

    #[test]
    fn retransmit_exhaustion_under_persistent_drops() {
        // Rate 1.0: the admission draw strikes and every retransmit redraw
        // strikes again, so retransmit exhausts into a detected failure with
        // the exact chain latency (walk + max_retries retransmits).
        let config =
            DeviceFaultConfig::none(21).with_kind(FaultKind::DroppedResponse, FaultRate::of(1.0));
        let r = ResilienceConfig::all_on();
        let mut plan = DeviceFaultPlan::new(config).unwrap();
        let fault = plan.draw_walk(&r, 400).unwrap();
        assert!(fault.failed && !fault.hung && !fault.recovered);
        assert_eq!(
            fault.total_latency,
            400 + r.retransmit_cycles * u64::from(r.max_retries)
        );
    }

    #[test]
    fn retransmit_first_attempt_recovery_latency() {
        // Strike once via burst=1 rate=1.0 on the first draw, then rebuild
        // the lane as disarmed for redraws is impossible within one plan; so
        // verify the recovered path arithmetic with a 50% rate and scan for
        // a one-retransmit recovery.
        let config =
            DeviceFaultConfig::none(33).with_kind(FaultKind::DroppedResponse, FaultRate::of(0.5));
        let r = ResilienceConfig::all_on();
        let mut plan = DeviceFaultPlan::new(config).unwrap();
        let mut saw_first_attempt_recovery = false;
        for _ in 0..10_000 {
            if let Some(fault) = plan.draw_walk(&r, 400) {
                if fault.recovered && fault.total_latency == 400 + r.retransmit_cycles {
                    saw_first_attempt_recovery = true;
                    break;
                }
            }
        }
        assert!(saw_first_attempt_recovery);
    }

    #[test]
    fn priority_order_is_stuck_first() {
        let config = DeviceFaultConfig::uniform(99, 1.0);
        let r = ResilienceConfig::all_on();
        let mut plan = DeviceFaultPlan::new(config).unwrap();
        let fault = plan.draw_walk(&r, 400).unwrap();
        assert_eq!(fault.kind, FaultKind::WalkerStuck);
    }

    // --- validation rejections -------------------------------------------

    fn rejects(config: DeviceFaultConfig, needle: &str) {
        let err = config.validate().expect_err("config must be rejected");
        assert!(
            err.reason.contains(needle),
            "reason {:?} must mention {:?}",
            err.reason,
            needle
        );
        assert!(DeviceFaultPlan::new(config).is_err());
    }

    fn rejects_resilience(config: ResilienceConfig, needle: &str) {
        let err = config.validate().expect_err("config must be rejected");
        assert!(
            err.reason.contains(needle),
            "reason {:?} must mention {:?}",
            err.reason,
            needle
        );
    }

    #[test]
    fn rejects_nan_rate() {
        rejects(
            DeviceFaultConfig::none(1).with_kind(FaultKind::WalkTimeout, FaultRate::of(f64::NAN)),
            "finite",
        );
    }

    #[test]
    fn rejects_infinite_rate() {
        rejects(
            DeviceFaultConfig::none(1)
                .with_kind(FaultKind::WalkerStuck, FaultRate::of(f64::INFINITY)),
            "finite",
        );
    }

    #[test]
    fn rejects_negative_rate() {
        rejects(
            DeviceFaultConfig::none(1).with_kind(FaultKind::DroppedResponse, FaultRate::of(-0.1)),
            "[0, 1]",
        );
    }

    #[test]
    fn rejects_rate_above_one() {
        rejects(
            DeviceFaultConfig::none(1).with_kind(FaultKind::TransientError, FaultRate::of(1.5)),
            "[0, 1]",
        );
    }

    #[test]
    fn rejects_zero_burst() {
        rejects(
            DeviceFaultConfig::none(1).with_kind(FaultKind::WalkTimeout, FaultRate::bursty(0.1, 0)),
            "burst",
        );
    }

    #[test]
    fn rejects_zero_max_retries() {
        let mut r = ResilienceConfig::all_on();
        r.max_retries = 0;
        rejects_resilience(r, "max_retries");
    }

    #[test]
    fn rejects_excessive_max_retries() {
        let mut r = ResilienceConfig::all_on();
        r.max_retries = 17;
        rejects_resilience(r, "max_retries");
    }

    #[test]
    fn rejects_zero_cycle_budgets() {
        for field in [
            "backoff_base_cycles",
            "timeout_cycles",
            "watchdog_cycles",
            "quarantine_cooldown_cycles",
            "retransmit_cycles",
            "livelock_bound_cycles",
        ] {
            let mut r = ResilienceConfig::all_on();
            match field {
                "backoff_base_cycles" => r.backoff_base_cycles = 0,
                "timeout_cycles" => r.timeout_cycles = 0,
                "watchdog_cycles" => r.watchdog_cycles = 0,
                "quarantine_cooldown_cycles" => r.quarantine_cooldown_cycles = 0,
                "retransmit_cycles" => r.retransmit_cycles = 0,
                _ => r.livelock_bound_cycles = 0,
            }
            rejects_resilience(r, field);
        }
    }

    #[test]
    fn rejects_livelock_bound_below_detectors() {
        let mut r = ResilienceConfig::all_on();
        r.livelock_bound_cycles = r.timeout_cycles;
        rejects_resilience(r, "timeout_cycles");
        let mut r = ResilienceConfig::all_on();
        r.livelock_bound_cycles = r.watchdog_cycles;
        rejects_resilience(r, "watchdog_cycles");
    }

    #[test]
    fn valid_configs_pass() {
        DeviceFaultConfig::uniform(1, 0.5).validate().unwrap();
        DeviceFaultConfig::none(1).validate().unwrap();
        ResilienceConfig::all_on().validate().unwrap();
        ResilienceConfig::all_off().validate().unwrap();
    }
}
