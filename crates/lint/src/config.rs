//! `lint.toml` — rule configuration, hot-path registration and waivers.
//!
//! The workspace is offline, so rather than pulling in a TOML crate this
//! module parses the small dialect the config actually uses: `[section]`
//! headers, `[[array]]` tables, string values and single- or multi-line
//! string arrays. Unknown sections and keys are rejected loudly — a typo in
//! a waiver must not silently disable it.

use std::fmt;
use std::fs;
use std::path::Path;

/// One registered hot function: allocation is banned in its body (rule H001).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotFn {
    /// Path suffix of the file holding the function.
    pub file: String,
    /// `impl` type the method lives on; `None` registers a free function.
    pub type_name: Option<String>,
    /// Method-name patterns; a trailing `*` matches any suffix
    /// (`translate*` covers `translate`, `translate_run_tagged`, ...).
    pub functions: Vec<String>,
}

/// A per-site waiver. Findings matching all three selectors are reported as
/// waived (and do not fail the run); the reason is mandatory and non-empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule id the waiver applies to (`D001`, `D002`, `H001`, `C001`).
    pub rule: String,
    /// Path suffix of the waived file.
    pub file: String,
    /// Substring that must appear in the flagged source line.
    pub contains: String,
    /// Why the finding is acceptable. Must be non-empty.
    pub reason: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Crates (by package name) whose non-test code rule D001 scans.
    pub d001_crates: Vec<String>,
    /// Path prefixes where rule D002's nondeterminism sources are allowed
    /// (runner self-profiling, the experiment driver's progress timer).
    pub d002_allow: Vec<String>,
    /// Hot-function registrations for rule H001.
    pub hot: Vec<HotFn>,
    /// Per-site waivers.
    pub waivers: Vec<Waiver>,
}

/// A configuration parse/validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Human-readable description, with the offending line number.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        message: format!("line {}: {}", line, message.into()),
    }
}

impl Config {
    /// Reads and parses a config file.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the file cannot be read, contains syntax
    /// the dialect does not know, names an unknown section or key, or holds a
    /// waiver with an empty reason.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let text = fs::read_to_string(path).map_err(|e| ConfigError {
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::parse(&text)
    }

    /// Parses config text. See [`Config::load`] for the error contract.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on malformed or unknown input.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section = Section::None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx + 1;
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                section = match header.trim() {
                    "hot" => {
                        config.hot.push(HotFn {
                            file: String::new(),
                            type_name: None,
                            functions: Vec::new(),
                        });
                        Section::Hot
                    }
                    "waiver" => {
                        config.waivers.push(Waiver {
                            rule: String::new(),
                            file: String::new(),
                            contains: String::new(),
                            reason: String::new(),
                        });
                        Section::Waiver
                    }
                    other => return Err(err(line_no, format!("unknown table `[[{other}]]`"))),
                };
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = match header.trim() {
                    "rules.D001" => Section::D001,
                    "rules.D002" => Section::D002,
                    other => return Err(err(line_no, format!("unknown section `[{other}]`"))),
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(
                    line_no,
                    format!("expected `key = value`, got `{line}`"),
                ));
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // A multi-line array keeps consuming lines until brackets balance.
            while value.starts_with('[') && !brackets_balance(&value) {
                let Some((_, next)) = lines.next() else {
                    return Err(err(line_no, "unterminated array"));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            match (&section, key) {
                (Section::D001, "crates") => {
                    config.d001_crates = parse_string_array(&value, line_no)?;
                }
                (Section::D002, "allow") => {
                    config.d002_allow = parse_string_array(&value, line_no)?;
                }
                (Section::Hot, "file") => {
                    config.hot.last_mut().expect("section open").file =
                        parse_string(&value, line_no)?;
                }
                (Section::Hot, "type") => {
                    config.hot.last_mut().expect("section open").type_name =
                        Some(parse_string(&value, line_no)?);
                }
                (Section::Hot, "functions") => {
                    config.hot.last_mut().expect("section open").functions =
                        parse_string_array(&value, line_no)?;
                }
                (Section::Waiver, "rule") => {
                    config.waivers.last_mut().expect("section open").rule =
                        parse_string(&value, line_no)?;
                }
                (Section::Waiver, "file") => {
                    config.waivers.last_mut().expect("section open").file =
                        parse_string(&value, line_no)?;
                }
                (Section::Waiver, "contains") => {
                    config.waivers.last_mut().expect("section open").contains =
                        parse_string(&value, line_no)?;
                }
                (Section::Waiver, "reason") => {
                    config.waivers.last_mut().expect("section open").reason =
                        parse_string(&value, line_no)?;
                }
                (_, key) => {
                    return Err(err(line_no, format!("unknown key `{key}` in this section")));
                }
            }
        }
        config.validate()?;
        Ok(config)
    }

    /// Structural checks beyond syntax: every waiver carries a non-empty
    /// reason and complete selectors; every hot registration names a file
    /// and at least one function pattern.
    fn validate(&self) -> Result<(), ConfigError> {
        for (i, waiver) in self.waivers.iter().enumerate() {
            if waiver.reason.trim().is_empty() {
                return Err(ConfigError {
                    message: format!(
                        "waiver #{} ({} in {}): empty reason — every waiver must say why",
                        i + 1,
                        if waiver.rule.is_empty() {
                            "?"
                        } else {
                            &waiver.rule
                        },
                        if waiver.file.is_empty() {
                            "?"
                        } else {
                            &waiver.file
                        },
                    ),
                });
            }
            if waiver.rule.is_empty() || waiver.file.is_empty() || waiver.contains.is_empty() {
                return Err(ConfigError {
                    message: format!(
                        "waiver #{}: `rule`, `file` and `contains` are all required",
                        i + 1
                    ),
                });
            }
        }
        for (i, hot) in self.hot.iter().enumerate() {
            if hot.file.is_empty() || hot.functions.is_empty() {
                return Err(ConfigError {
                    message: format!(
                        "hot registration #{}: `file` and `functions` are required",
                        i + 1
                    ),
                });
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    D001,
    D002,
    Hot,
    Waiver,
}

/// Strips a `#` comment, respecting `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn brackets_balance(value: &str) -> bool {
    let mut depth = 0i64;
    let mut in_string = false;
    for c in value.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(value: &str, line_no: usize) -> Result<String, ConfigError> {
    let value = value.trim();
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| err(line_no, format!("expected a quoted string, got `{value}`")))?;
    Ok(inner.to_string())
}

fn parse_string_array(value: &str, line_no: usize) -> Result<Vec<String>, ConfigError> {
    let value = value.trim();
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| err(line_no, format!("expected an array, got `{value}`")))?;
    let mut items = Vec::new();
    for piece in split_top_level(inner) {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        items.push(parse_string(piece, line_no)?);
    }
    Ok(items)
}

/// Splits on commas outside string literals.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut pieces = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in text.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                pieces.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&text[start..]);
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_dialect() {
        let config = Config::parse(
            r#"
# comment
[rules.D001]
crates = ["a", "b"] # trailing comment

[rules.D002]
allow = [
    "crates/sim/src/runner/",
    "crates/bench/src/bin/",
]

[[hot]]
file = "crates/core/src/engine.rs"
type = "TranslationEngine"
functions = ["translate*"]

[[hot]]
file = "crates/sim/src/embedding.rs"
functions = ["translate_gather_run"]

[[waiver]]
rule = "D001"
file = "crates/vmem/src/frame_alloc.rs"
contains = "nodes: HashMap"
reason = "keyed lookups only"
"#,
        )
        .unwrap();
        assert_eq!(config.d001_crates, vec!["a", "b"]);
        assert_eq!(config.d002_allow.len(), 2);
        assert_eq!(config.hot.len(), 2);
        assert_eq!(
            config.hot[0].type_name.as_deref(),
            Some("TranslationEngine")
        );
        assert_eq!(config.hot[1].type_name, None);
        assert_eq!(config.waivers.len(), 1);
    }

    #[test]
    fn empty_waiver_reason_is_rejected() {
        let result = Config::parse(
            r#"
[[waiver]]
rule = "D001"
file = "x.rs"
contains = "HashMap"
reason = ""
"#,
        );
        let message = result.unwrap_err().message;
        assert!(message.contains("empty reason"), "{message}");
    }

    #[test]
    fn unknown_sections_and_keys_are_rejected() {
        assert!(Config::parse("[rules.D009]\n").is_err());
        assert!(Config::parse("[rules.D001]\ncrate = [\"x\"]\n").is_err());
        assert!(Config::parse("[[hots]]\n").is_err());
    }

    #[test]
    fn incomplete_registrations_are_rejected() {
        assert!(Config::parse("[[hot]]\nfile = \"x.rs\"\n").is_err());
        let missing_contains = "[[waiver]]\nrule = \"D001\"\nfile = \"x\"\nreason = \"r\"\n";
        assert!(Config::parse(missing_contains).is_err());
    }

    #[test]
    fn hash_inside_strings_survives_comment_stripping() {
        let config = Config::parse(
            "[[waiver]]\nrule = \"D001\"\nfile = \"x\"\ncontains = \"a # b\"\nreason = \"r\"\n",
        )
        .unwrap();
        assert_eq!(config.waivers[0].contains, "a # b");
    }
}
