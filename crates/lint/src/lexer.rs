//! A hand-rolled token-level Rust lexer.
//!
//! The linter's rules are token-pattern checks, so the lexer only has to get
//! the *boundaries* right: comments and string/char literals must never leak
//! braces or identifiers into the token stream (brace matching and banned-call
//! scans would otherwise misfire), and every token must carry its source line
//! for reporting. It deliberately does not build an AST — the same offline
//! constraint that led to the vendored `serde_derive` rules out `syn`/`quote`.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `translate_run`, ...).
    Ident,
    /// A single punctuation character (`{`, `.`, `:`, `!`, ...).
    Punct,
    /// A string, raw-string, byte-string, char or numeric literal.
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Punct`] this is a single character;
    /// for literals it is the raw source text including quotes.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if the token is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True if the token is the punctuation character `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// Lexes `source` into a flat token stream, discarding comments and
/// whitespace. Never fails: unrecognized bytes are emitted as punctuation so
/// that downstream brace matching stays conservative.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.skip_line_comment(),
                '/' if self.peek(1) == Some('*') => self.skip_block_comment(),
                '"' => self.lex_string(),
                '\'' => self.lex_quote(),
                'r' | 'b' if self.starts_string_prefix() => self.lex_prefixed_string(),
                c if c.is_alphabetic() || c == '_' => self.lex_ident(),
                c if c.is_ascii_digit() => self.lex_number(),
                c => {
                    self.push(TokenKind::Punct, c.to_string());
                    self.pos += 1;
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String) {
        self.tokens.push(Token {
            kind,
            text,
            line: self.line,
        });
    }

    fn bump_counting_lines(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn skip_line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
    }

    fn skip_block_comment(&mut self) {
        // Rust block comments nest.
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump_counting_lines();
            }
        }
    }

    /// True if the cursor sits on a string prefix: `r"`, `r#"`, `b"`, `b'`,
    /// `br"`, `br#"` (otherwise `r`/`b` begin an ordinary identifier).
    fn starts_string_prefix(&self) -> bool {
        let mut i = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        }
        loop {
            match self.peek(i) {
                Some('#') => i += 1,
                Some('"') => return true,
                Some('\'') => return i == 1 && self.peek(0) == Some('b'),
                _ => return false,
            }
        }
    }

    fn lex_prefixed_string(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        let raw = {
            let mut raw = false;
            while let Some(c) = self.peek(0) {
                if c == 'r' {
                    raw = true;
                }
                if c == 'r' || c == 'b' {
                    text.push(c);
                    self.pos += 1;
                } else {
                    break;
                }
            }
            raw
        };
        if self.peek(0) == Some('\'') {
            // A byte char literal `b'x'`.
            self.lex_quote();
            return;
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                text.push('#');
                self.pos += 1;
            }
            text.push('"');
            self.pos += 1; // opening quote
            loop {
                match self.bump_counting_lines() {
                    None => break,
                    Some('"') => {
                        text.push('"');
                        let mut close = 0usize;
                        while close < hashes && self.peek(0) == Some('#') {
                            close += 1;
                            text.push('#');
                            self.pos += 1;
                        }
                        if close == hashes {
                            break;
                        }
                    }
                    Some(c) => text.push(c),
                }
            }
        } else {
            self.lex_string_into(&mut text);
        }
        self.tokens.push(Token {
            kind: TokenKind::Literal,
            text,
            line: start_line,
        });
    }

    fn lex_string(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        self.lex_string_into(&mut text);
        self.tokens.push(Token {
            kind: TokenKind::Literal,
            text,
            line: start_line,
        });
    }

    /// Consumes a `"..."` string (cursor on the opening quote), appending the
    /// raw text (quotes included) to `text`. Handles `\"` and `\\` escapes.
    fn lex_string_into(&mut self, text: &mut String) {
        text.push('"');
        self.pos += 1;
        while let Some(c) = self.bump_counting_lines() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(escaped) = self.bump_counting_lines() {
                        text.push(escaped);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// A `'` is either a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`, `'}'`). Distinguishing them matters: a char literal
    /// `'{'` leaking a brace would corrupt brace matching.
    fn lex_quote(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        if self.peek(0) == Some('b') {
            text.push('b');
            self.pos += 1;
        }
        text.push('\'');
        self.pos += 1;
        let first = self.peek(0);
        let second = self.peek(1);
        let is_lifetime =
            matches!(first, Some(c) if c.is_alphabetic() || c == '_') && second != Some('\'');
        if is_lifetime {
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.tokens.push(Token {
                kind: TokenKind::Lifetime,
                text,
                line: start_line,
            });
            return;
        }
        // Char literal: consume up to the closing quote, honoring escapes.
        while let Some(c) = self.bump_counting_lines() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(escaped) = self.bump_counting_lines() {
                        text.push(escaped);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Literal,
            text,
            line: start_line,
        });
    }

    fn lex_ident(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Ident,
            text,
            line: start_line,
        });
    }

    fn lex_number(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.pos += 1;
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                // `1.5` continues the number; `0..10` and `1.max(2)` do not.
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Literal,
            text,
            line: start_line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let tokens = lex("fn main() {\n  x.y();\n}");
        assert!(tokens[0].is_ident("fn"));
        assert!(tokens[1].is_ident("main"));
        let closing = tokens.last().unwrap();
        assert!(closing.is_punct('}'));
        assert_eq!(closing.line, 3);
    }

    #[test]
    fn char_literals_do_not_leak_braces() {
        let tokens = lex("let b = '{'; let l: &'a str = \"}{\";");
        let braces: Vec<_> = tokens
            .iter()
            .filter(|t| t.is_punct('{') || t.is_punct('}'))
            .collect();
        assert!(braces.is_empty(), "braces leaked: {braces:?}");
        assert!(tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
    }

    #[test]
    fn comments_and_raw_strings_are_opaque_and_lines_tracked() {
        let src = "a /* {{ \n nested /* deeper */ }} */ b // {\nc r#\"fake \" }\"# d";
        let tokens = lex(src);
        let idents: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(idents, vec![("a", 1), ("b", 2), ("c", 3), ("d", 3)]);
        assert!(!tokens.iter().any(|t| t.is_punct('{')));
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        assert_eq!(texts("0..10"), vec!["0", ".", ".", "10"]);
        assert_eq!(texts("1.5e3"), vec!["1.5e3"]);
        assert_eq!(texts("1.max(2)"), vec!["1", ".", "max", "(", "2", ")"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let tokens = lex("b\"{\" b'}' br#\"{\"#");
        assert!(tokens.iter().all(|t| t.kind == TokenKind::Literal));
        assert_eq!(tokens.len(), 3);
    }
}
