//! `neummu_lint` — the workspace's determinism and hot-path static-analysis
//! pass.
//!
//! The simulator's whole value proposition is bit-reproducible artifacts
//! (`--threads 1` and `--threads 4` must produce byte-identical output), and
//! its performance story rests on an allocation-free translation hot path.
//! Both properties are invisible to `rustc` and easy to regress with a
//! one-line change. This crate makes them mechanical: a token-level scan of
//! the workspace enforcing four rules, configured by `lint.toml` at the
//! repository root, run in CI before the benchmarks.
//!
//! | Rule | What it catches |
//! |------|-----------------|
//! | `D001` | default-hashed `HashMap`/`HashSet` declarations and any hash-order iteration in artifact-producing crates |
//! | `D002` | `Instant::now` / `SystemTime` / `RandomState` / `env::*` reads outside allowlisted profiling modules |
//! | `H001` | allocation inside registered hot-path functions (and stale registrations that match nothing) |
//! | `C001` | types owning a `HotTally` without a `Drop` impl that flushes it |
//!
//! Findings can be waived per site in `lint.toml`; every waiver must carry a
//! non-empty reason. See the repository `README.md` for the workflow.

#![deny(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use std::io;
use std::path::Path;

use config::Config;
use report::Report;
use rules::FileContext;
use workspace::SourceFile;

/// Lints an in-memory set of files (the library entry point used by tests
/// and fixtures).
#[must_use]
pub fn lint_files(files: &[SourceFile], config: &Config) -> Report {
    let contexts: Vec<FileContext> = files
        .iter()
        .map(|f| FileContext::new(f.rel_path.clone(), f.crate_name.clone(), &f.source))
        .collect();
    rules::run(&contexts, config)
}

/// Discovers and lints every workspace source file under `root`.
///
/// # Errors
///
/// Returns an error if the workspace walk or a file read fails.
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<Report> {
    let files = workspace::discover(root)?;
    Ok(lint_files(&files, config))
}
