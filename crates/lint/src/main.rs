//! CLI driver for the workspace lint pass.
//!
//! ```text
//! neummu_lint --workspace [--root DIR] [--config FILE] [--json]
//! neummu_lint [--root DIR] [--config FILE] [--json] FILE...
//! ```
//!
//! Exit codes: `0` clean, `1` live findings, `2` configuration/usage error.

#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use neummu_lint::config::Config;
use neummu_lint::workspace::{self, SourceFile};
use neummu_lint::{lint_files, lint_workspace};

const USAGE: &str = "\
usage: neummu_lint [--workspace] [--root DIR] [--config FILE] [--json] [FILE...]

  --workspace    lint every workspace member's src/ tree under the root
  --root DIR     workspace root (default: current directory)
  --config FILE  lint configuration (default: <root>/lint.toml)
  --json         emit machine-readable JSON instead of the table
  FILE...        lint specific files instead of the whole workspace

exit codes: 0 clean, 1 findings, 2 configuration or usage error";

struct Cli {
    workspace: bool,
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    files: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        workspace: false,
        root: PathBuf::from("."),
        config: None,
        json: false,
        files: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workspace" => cli.workspace = true,
            "--json" => cli.json = true,
            "--root" => {
                cli.root = iter
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--root requires a directory argument")?;
            }
            "--config" => {
                cli.config = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or("--config requires a file argument")?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            file => cli.files.push(PathBuf::from(file)),
        }
    }
    if !cli.workspace && cli.files.is_empty() {
        return Err("nothing to lint: pass --workspace or explicit files".to_string());
    }
    Ok(cli)
}

/// Loads the explicitly listed files, attributing each to the crate whose
/// `crates/<member>/Cargo.toml` it sits under (or `adhoc` otherwise).
fn load_explicit_files(cli: &Cli) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for path in &cli.files {
        let rel = workspace::rel_path(&cli.root, path);
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .and_then(|member| {
                workspace::package_name(&cli.root.join("crates").join(member).join("Cargo.toml"))
            })
            .unwrap_or_else(|| "adhoc".to_string());
        files.push(SourceFile {
            rel_path: rel,
            crate_name,
            source: std::fs::read_to_string(path)?,
        });
    }
    Ok(files)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("neummu_lint: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let config_path = cli
        .config
        .clone()
        .unwrap_or_else(|| cli.root.join("lint.toml"));
    let config = match Config::load(&config_path) {
        Ok(config) => config,
        Err(error) => {
            eprintln!("neummu_lint: {error}");
            return ExitCode::from(2);
        }
    };
    let report = if cli.workspace {
        match lint_workspace(&cli.root, &config) {
            Ok(report) => report,
            Err(error) => {
                eprintln!("neummu_lint: workspace walk failed: {error}");
                return ExitCode::from(2);
            }
        }
    } else {
        match load_explicit_files(&cli) {
            Ok(files) => lint_files(&files, &config),
            Err(error) => {
                eprintln!("neummu_lint: cannot read input: {error}");
                return ExitCode::from(2);
            }
        }
    };
    if cli.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_table());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
