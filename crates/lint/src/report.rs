//! Findings, the human-readable table and the `--json` machine output.

use std::fmt::Write as _;

/// One rule violation (possibly waived).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D001`, `D002`, `H001`, `C001`).
    pub rule: &'static str,
    /// Workspace-relative path of the flagged file.
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    /// What is wrong and why it matters.
    pub message: String,
    /// `Some(reason)` if a `lint.toml` waiver covers this site.
    pub waived: Option<String>,
}

impl Finding {
    /// True if the finding counts against the exit code.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.waived.is_none()
    }
}

/// The result of one lint run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, waived ones included, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of Rust files scanned.
    pub files_checked: usize,
}

impl Report {
    /// Findings not covered by a waiver.
    pub fn live(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_live())
    }

    /// True if the run should exit zero.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.live().count() == 0
    }

    /// Renders the human-readable table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let live: Vec<&Finding> = self.live().collect();
        if live.is_empty() {
            let _ = writeln!(
                out,
                "neummu_lint: {} files checked, no findings ({} waived)",
                self.files_checked,
                self.findings.len()
            );
        } else {
            let loc_width = live
                .iter()
                .map(|f| f.file.len() + 1 + digits(f.line))
                .max()
                .unwrap_or(8)
                .max("LOCATION".len());
            let _ = writeln!(out, "{:<5} {:<loc_width$} MESSAGE", "RULE", "LOCATION");
            for finding in &live {
                let location = format!("{}:{}", finding.file, finding.line);
                let _ = writeln!(
                    out,
                    "{:<5} {:<loc_width$} {}",
                    finding.rule, location, finding.message
                );
            }
            let _ = writeln!(
                out,
                "\nneummu_lint: {} finding(s) in {} files ({} waived)",
                live.len(),
                self.files_checked,
                self.findings.len() - live.len()
            );
        }
        for finding in self.findings.iter().filter(|f| !f.is_live()) {
            let _ = writeln!(
                out,
                "waived {} {}:{} — {}",
                finding.rule,
                finding.file,
                finding.line,
                finding.waived.as_deref().unwrap_or_default()
            );
        }
        out
    }

    /// Renders the machine-readable JSON document.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"waived\": {}}}",
                json_string(finding.rule),
                json_string(&finding.file),
                finding.line,
                json_string(&finding.message),
                match &finding.waived {
                    Some(reason) => json_string(reason),
                    None => "null".to_string(),
                }
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"files_checked\": {},\n  \"live\": {},\n  \"waived\": {}\n}}\n",
            self.files_checked,
            self.live().count(),
            self.findings.len() - self.live().count()
        );
        out
    }
}

fn digits(n: u32) -> usize {
    (n.max(1).ilog10() + 1) as usize
}

/// Escapes a string for JSON output.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: "D001",
                    file: "crates/x/src/lib.rs".into(),
                    line: 7,
                    message: "iterates a HashMap".into(),
                    waived: None,
                },
                Finding {
                    rule: "D002",
                    file: "crates/y/src/lib.rs".into(),
                    line: 12,
                    message: "reads \"wall clock\"".into(),
                    waived: Some("profiling only".into()),
                },
            ],
            files_checked: 2,
        }
    }

    #[test]
    fn table_lists_live_and_waived_findings() {
        let table = sample().render_table();
        assert!(table.contains("D001"));
        assert!(table.contains("crates/x/src/lib.rs:7"));
        assert!(table.contains("waived D002"));
        assert!(table.contains("1 finding(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = sample().render_json();
        assert!(json.contains("\\\"wall clock\\\""));
        assert!(json.contains("\"live\": 1"));
        assert!(json.contains("\"waived\": 1"));
        assert!(json.contains("\"waived\": \"profiling only\""));
    }

    #[test]
    fn clean_report_renders_summary_only() {
        let report = Report {
            findings: vec![],
            files_checked: 3,
        };
        assert!(report.is_clean());
        assert!(report.render_table().contains("no findings"));
    }
}
