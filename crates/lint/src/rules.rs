//! The four project-specific rules.
//!
//! * **D001 nondeterministic-iteration** — in non-test code of
//!   artifact-producing crates, (a) declaring a std `HashMap`/`HashSet` with
//!   the default `RandomState` hasher is a finding unless waived with a
//!   proof it is never iterated, and (b) iterating, `find`-ing over,
//!   `retain`-ing or draining *any* tracked hash map/set (custom hashers
//!   included) is a finding: hash-order traversal is exactly how artifact
//!   bytes stop being reproducible. This mechanically re-proves the PR 5
//!   "PTS map is never iterated" claim on every run.
//! * **D002 nondeterminism-source** — `Instant::now`, `SystemTime`,
//!   `RandomState` and `std::env` reads outside the allowlisted
//!   runner-profiling / bench-timer modules.
//! * **H001 hot-path-allocation** — functions registered in `lint.toml` must
//!   not allocate (`Vec::new`, `vec!`, `collect`, `format!`, `to_string`,
//!   `Box::new`, ...), locking in the PR 3 allocation-free guarantee.
//! * **C001 counter-flush** — any type with a `HotTally` field must have a
//!   `Drop` impl that flushes it (the PR 3 drop-flush telemetry contract).

use crate::config::Config;
use crate::lexer::{lex, Token, TokenKind};
use crate::report::{Finding, Report};

/// Methods whose receiver traversal is hash-order-dependent.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// `std::env` functions that read ambient process state.
const ENV_READS: &[&str] = &[
    "var", "var_os", "vars", "vars_os", "args", "args_os", "temp_dir",
];

/// Owning types whose `::new`/`::from`/`::with_capacity` allocate.
const ALLOCATING_TYPES: &[&str] = &[
    "Vec",
    "Box",
    "String",
    "VecDeque",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "BinaryHeap",
];

/// Method calls that allocate on the spot.
const ALLOCATING_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect"];

/// One parsed source file ready for rule scans.
#[derive(Debug)]
pub struct FileContext {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Package name of the owning crate.
    pub crate_name: String,
    /// Token stream (comments and whitespace stripped).
    pub tokens: Vec<Token>,
    /// `test_mask[i]` is true if token `i` sits in `#[cfg(test)]` /
    /// `#[test]`-attributed code.
    pub test_mask: Vec<bool>,
    /// Raw source lines (1-indexed via `line - 1`), used to match waiver
    /// `contains` selectors.
    pub lines: Vec<String>,
}

impl FileContext {
    /// Lexes `source` and precomputes the test-code mask.
    #[must_use]
    pub fn new(rel_path: impl Into<String>, crate_name: impl Into<String>, source: &str) -> Self {
        let tokens = lex(source);
        let test_mask = compute_test_mask(&tokens);
        FileContext {
            rel_path: rel_path.into(),
            crate_name: crate_name.into(),
            tokens,
            test_mask,
            lines: source.lines().map(str::to_string).collect(),
        }
    }

    fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map_or("", String::as_str)
    }
}

/// Facts rule C001 aggregates across a crate before judging.
#[derive(Debug, Default)]
struct CrateFacts {
    /// `(struct name, field name, file, line)` of every `HotTally` field.
    tally_structs: Vec<(String, String, String, u32)>,
    /// Type names with a `Drop` impl whose body calls `flush`.
    drop_flush_types: Vec<String>,
}

/// Runs every rule over the given files and applies waivers.
#[must_use]
pub fn run(files: &[FileContext], config: &Config) -> Report {
    let mut findings = Vec::new();
    let mut facts: Vec<(String, CrateFacts)> = Vec::new();
    for ctx in files {
        d001(ctx, config, &mut findings);
        d002(ctx, config, &mut findings);
        let crate_facts = match facts.iter_mut().find(|(name, _)| *name == ctx.crate_name) {
            Some((_, f)) => f,
            None => {
                facts.push((ctx.crate_name.clone(), CrateFacts::default()));
                &mut facts.last_mut().expect("just pushed").1
            }
        };
        c001_collect(ctx, crate_facts);
    }
    h001(files, config, &mut findings);
    for (_, crate_facts) in &facts {
        c001_judge(crate_facts, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    apply_waivers(files, config, &mut findings);
    Report {
        findings,
        files_checked: files.len(),
    }
}

/// Marks findings covered by a `lint.toml` waiver (rule + file suffix +
/// line-content substring all matching).
fn apply_waivers(files: &[FileContext], config: &Config, findings: &mut [Finding]) {
    for finding in findings.iter_mut() {
        let Some(ctx) = files.iter().find(|c| c.rel_path == finding.file) else {
            continue;
        };
        let line_text = ctx.line_text(finding.line);
        for waiver in &config.waivers {
            if waiver.rule == finding.rule
                && finding.file.ends_with(&waiver.file)
                && line_text.contains(&waiver.contains)
            {
                finding.waived = Some(waiver.reason.clone());
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

/// Index of the `}` matching the `{` at `open`, if any.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, token) in tokens.iter().enumerate().skip(open) {
        if token.is_punct('{') {
            depth += 1;
        } else if token.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Skips a balanced `<...>` generic-argument list starting at `open`
/// (which must be `<`), returning the index just past the closing `>`.
fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('<') {
            depth += 1;
        } else if tokens[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Skips a balanced `(...)` list starting at `open` (which must be `(`),
/// returning the index just past the closing `)`.
fn skip_parens(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('(') {
            depth += 1;
        } else if tokens[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// True if tokens `i` and `i + 1` form `::`.
fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    i + 1 < tokens.len() && tokens[i].is_punct(':') && tokens[i + 1].is_punct(':')
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` items (including
/// `mod tests { ... }` bodies) and everything they enclose.
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') || !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Scan this and any directly following attributes; remember whether
        // one of them gates on test.
        let attr_start = i;
        let mut is_test = false;
        while tokens.get(i).is_some_and(|t| t.is_punct('#'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut depth = 0i64;
            let mut j = i + 1;
            let mut idents: Vec<&str> = Vec::new();
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokenKind::Ident {
                    idents.push(&t.text);
                }
                j += 1;
            }
            let bare_test = idents == ["test"];
            let cfg_test = idents.first() == Some(&"cfg") && idents.contains(&"test");
            is_test = is_test || bare_test || cfg_test;
            i = j + 1;
        }
        if !is_test {
            continue;
        }
        // Mark the attributed item: up to its `;`, or through its matching
        // closing brace if a body opens first.
        let mut end = tokens.len().saturating_sub(1);
        for (k, token) in tokens.iter().enumerate().skip(i) {
            if token.is_punct(';') {
                end = k;
                break;
            }
            if token.is_punct('{') {
                end = matching_brace(tokens, k).unwrap_or(end);
                break;
            }
        }
        for flag in &mut mask[attr_start..=end.min(tokens.len() - 1)] {
            *flag = true;
        }
        i = end + 1;
    }
    mask
}

/// Marks tokens inside `use ...;` statements.
fn compute_use_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("use") {
            let start = i;
            while i < tokens.len() && !tokens[i].is_punct(';') {
                i += 1;
            }
            for flag in &mut mask[start..=i.min(tokens.len() - 1)] {
                *flag = true;
            }
        }
        i += 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// D001 — nondeterministic iteration
// ---------------------------------------------------------------------------

fn d001(ctx: &FileContext, config: &Config, findings: &mut Vec<Finding>) {
    if !config.d001_crates.contains(&ctx.crate_name) {
        return;
    }
    let tokens = &ctx.tokens;
    let use_mask = compute_use_mask(tokens);
    // Pass A: declaration findings + name tracking.
    let mut tracked_names: Vec<String> = Vec::new();
    let mut tracked_aliases: Vec<String> = Vec::new();
    for i in 0..tokens.len() {
        if ctx.test_mask[i] || use_mask[i] {
            continue;
        }
        let is_map = tokens[i].is_ident("HashMap");
        let is_set = tokens[i].is_ident("HashSet");
        if !is_map && !is_set {
            continue;
        }
        if is_path_sep(tokens, i + 1) {
            // `HashMap::new()` / `HashMap::with_capacity(..)`: a constructor
            // for a binding; track the binding name if recognizable.
            if let Some(name) = binding_name_before_path(tokens, i) {
                track(&mut tracked_names, name);
            }
            continue;
        }
        // Type position: count top-level generic arguments.
        let args = if tokens.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            count_generic_args(tokens, i + 1)
        } else {
            0
        };
        let default_hashed = (is_map && args <= 2) || (is_set && args <= 1);
        if default_hashed {
            findings.push(Finding {
                rule: "D001",
                file: ctx.rel_path.clone(),
                line: tokens[i].line,
                message: format!(
                    "std `{}` with the default RandomState hasher in artifact-producing \
                     crate `{}`: any iteration visits entries in a per-process random \
                     order — switch to a deterministic structure/hasher, or waive with \
                     the reason it is never iterated",
                    tokens[i].text, ctx.crate_name
                ),
                waived: None,
            });
        }
        if let Some(name) = binding_name_before_path(tokens, i) {
            track(&mut tracked_names, name);
        }
        if let Some(alias) = alias_name_before(tokens, i) {
            track(&mut tracked_aliases, alias);
        }
    }
    // Pass A2: fields/params typed with a tracked alias.
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident
            || !tracked_aliases.iter().any(|a| *a == tokens[i].text)
        {
            continue;
        }
        if let Some(name) = binding_name_before_path(tokens, i) {
            track(&mut tracked_names, name);
        }
    }
    // Pass B: iteration findings over tracked names.
    let for_exprs = for_in_expr_ranges(tokens);
    for i in 0..tokens.len() {
        if ctx.test_mask[i]
            || tokens[i].kind != TokenKind::Ident
            || !tracked_names.iter().any(|n| *n == tokens[i].text)
        {
            continue;
        }
        let name = &tokens[i].text;
        if tokens.get(i + 1).is_some_and(|t| t.is_punct('.')) {
            if let Some((method, line)) = first_iterating_method(tokens, i + 1) {
                findings.push(Finding {
                    rule: "D001",
                    file: ctx.rel_path.clone(),
                    line,
                    message: format!(
                        "hash-order traversal of `{name}` via `.{method}(..)`: the visit \
                         order is not deterministic across processes or refactors"
                    ),
                    waived: None,
                });
            }
        } else if for_exprs.iter().any(|&(lo, hi)| i >= lo && i < hi) {
            findings.push(Finding {
                rule: "D001",
                file: ctx.rel_path.clone(),
                line: tokens[i].line,
                message: format!(
                    "`for` loop iterates the hash map/set `{name}` directly — \
                     hash-order traversal is nondeterministic"
                ),
                waived: None,
            });
        }
    }
}

fn track(list: &mut Vec<String>, name: String) {
    if !list.contains(&name) {
        list.push(name);
    }
}

/// Walks backward from a type/constructor token at `i` over a `path::` prefix
/// and returns the binding name if the pattern is `name : [&|mut|'a]* path`
/// or `let name = path...` / `name = path...`.
fn binding_name_before_path(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    // Skip `seg ::` path prefixes backwards: `std :: collections :: HashMap`.
    while j >= 3
        && tokens[j - 1].is_punct(':')
        && tokens[j - 2].is_punct(':')
        && tokens[j - 3].kind == TokenKind::Ident
    {
        j -= 3;
    }
    // Skip reference/mutability/lifetime noise backwards.
    while j >= 1
        && (tokens[j - 1].is_punct('&')
            || tokens[j - 1].is_ident("mut")
            || tokens[j - 1].kind == TokenKind::Lifetime)
    {
        j -= 1;
    }
    if j >= 2 && tokens[j - 1].is_punct(':') && !tokens[j - 2].is_punct(':') {
        // `name : Type` — a field declaration, struct-literal init with a
        // constructor, or a typed parameter.
        if tokens[j - 2].kind == TokenKind::Ident {
            return Some(tokens[j - 2].text.clone());
        }
    }
    if j >= 2 && tokens[j - 1].is_punct('=') && tokens[j - 2].kind == TokenKind::Ident {
        // `let [mut] name = Constructor...` or `name = Constructor...`.
        let name = &tokens[j - 2];
        if !name.is_ident("let") && !name.is_ident("mut") {
            return Some(name.text.clone());
        }
    }
    None
}

/// If the map type at `i` is the right-hand side of `type Alias<...> = ...`,
/// returns the alias name.
fn alias_name_before(tokens: &[Token], i: usize) -> Option<String> {
    // Walk backward to the nearest `=` not crossing a statement boundary.
    let mut j = i;
    while j > 0 {
        let t = &tokens[j - 1];
        if t.is_punct('=') {
            break;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    let mut k = j - 1; // token index of `=`
                       // Skip a balanced generic list backwards: `type Alias < T > =`.
    if k >= 1 && tokens[k - 1].is_punct('>') {
        let mut depth = 0i64;
        while k >= 1 {
            k -= 1;
            if tokens[k].is_punct('>') {
                depth += 1;
            } else if tokens[k].is_punct('<') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }
    if k >= 2 && tokens[k - 1].kind == TokenKind::Ident && tokens[k - 2].is_ident("type") {
        return Some(tokens[k - 1].text.clone());
    }
    None
}

/// Counts top-level generic arguments of the list opening at `open` (`<`).
fn count_generic_args(tokens: &[Token], open: usize) -> usize {
    let mut angle = 0i64;
    let mut paren = 0i64;
    let mut args = 0usize;
    let mut saw_any = false;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
            if angle == 0 {
                break;
            }
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct(',') && angle == 1 && paren == 0 {
            args += 1;
        } else {
            saw_any = true;
        }
        i += 1;
    }
    if saw_any {
        args + 1
    } else {
        0
    }
}

/// Follows the method chain starting at the `.` at `dot` and returns the
/// first hash-order-dependent method, with its line.
fn first_iterating_method(tokens: &[Token], dot: usize) -> Option<(String, u32)> {
    let mut i = dot;
    while tokens.get(i).is_some_and(|t| t.is_punct('.')) {
        let method = tokens.get(i + 1)?;
        if method.kind != TokenKind::Ident {
            return None; // tuple index like `.0`
        }
        if ITER_METHODS.iter().any(|m| method.is_ident(m)) {
            return Some((method.text.clone(), method.line));
        }
        i += 2;
        // Skip a turbofish and/or the call's argument list.
        if is_path_sep(tokens, i) && tokens.get(i + 2).is_some_and(|t| t.is_punct('<')) {
            i = skip_angles(tokens, i + 2);
        }
        if tokens.get(i).is_some_and(|t| t.is_punct('(')) {
            i = skip_parens(tokens, i);
        }
    }
    None
}

/// `(lo, hi)` token ranges of every `for ... in <expr> {` expression.
fn for_in_expr_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("for") {
            continue;
        }
        // Find the loop body `{` (or give up at `;`), tracking nothing fancy:
        // the header of a `for` loop cannot contain a block.
        let mut body = None;
        let mut in_idx = None;
        for (k, token) in tokens.iter().enumerate().skip(i + 1) {
            if token.is_punct('{') {
                body = Some(k);
                break;
            }
            if token.is_punct(';') {
                break;
            }
            if token.is_ident("in") && in_idx.is_none() {
                in_idx = Some(k);
            }
        }
        if let (Some(in_idx), Some(body)) = (in_idx, body) {
            ranges.push((in_idx + 1, body));
        }
    }
    ranges
}

// ---------------------------------------------------------------------------
// D002 — nondeterminism sources
// ---------------------------------------------------------------------------

fn d002(ctx: &FileContext, config: &Config, findings: &mut Vec<Finding>) {
    if config
        .d002_allow
        .iter()
        .any(|prefix| ctx.rel_path.starts_with(prefix.as_str()))
    {
        return;
    }
    let tokens = &ctx.tokens;
    let use_mask = compute_use_mask(tokens);
    for i in 0..tokens.len() {
        if ctx.test_mask[i] || use_mask[i] || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let t = &tokens[i];
        let message = if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && is_path_sep(tokens, i + 1)
            && tokens.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            Some(format!(
                "`{}::now()` outside the allowlisted profiling modules: wall-clock \
                 reads must never influence artifact bytes",
                t.text
            ))
        } else if t.is_ident("SystemTime") || t.is_ident("RandomState") {
            Some(format!(
                "`{}` outside the allowlisted profiling modules is a \
                 nondeterminism source",
                t.text
            ))
        } else if t.is_ident("env")
            && is_path_sep(tokens, i + 1)
            && tokens
                .get(i + 3)
                .is_some_and(|n| ENV_READS.iter().any(|f| n.is_ident(f)))
        {
            Some(format!(
                "`env::{}` reads ambient process state outside the allowlisted \
                 modules — simulation inputs must come from explicit configuration",
                tokens[i + 3].text
            ))
        } else {
            None
        };
        if let Some(message) = message {
            findings.push(Finding {
                rule: "D002",
                file: ctx.rel_path.clone(),
                line: t.line,
                message,
                waived: None,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// H001 — hot-path allocation
// ---------------------------------------------------------------------------

fn h001(files: &[FileContext], config: &Config, findings: &mut Vec<Finding>) {
    for hot in &config.hot {
        let Some(ctx) = files.iter().find(|c| c.rel_path.ends_with(&hot.file)) else {
            findings.push(Finding {
                rule: "H001",
                file: hot.file.clone(),
                line: 1,
                message: format!(
                    "hot-path registration points at `{}`, which is not part of the \
                     scanned workspace (moved or renamed?)",
                    hot.file
                ),
                waived: None,
            });
            continue;
        };
        let mut matched = vec![false; hot.functions.len()];
        let bodies = hot_fn_bodies(ctx, hot.type_name.as_deref(), &hot.functions, &mut matched);
        for (fn_name, body_range) in bodies {
            scan_allocations(ctx, hot, &fn_name, body_range, findings);
        }
        for (pattern, hit) in hot.functions.iter().zip(matched) {
            if !hit {
                let owner = hot.type_name.as_deref().unwrap_or("<free fn>");
                findings.push(Finding {
                    rule: "H001",
                    file: ctx.rel_path.clone(),
                    line: 1,
                    message: format!(
                        "hot-path registration `{owner}::{pattern}` matched no function \
                         in this file — stale after a rename?"
                    ),
                    waived: None,
                });
            }
        }
    }
}

/// `pattern` matches `name` exactly, or by prefix when it ends with `*`.
fn fn_pattern_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => pattern == name,
    }
}

/// Collects `(name, token range)` of registered hot-function bodies. With a
/// type name, methods of every `impl Type` / `impl Trait for Type` block are
/// considered; without one, free functions at file top level.
fn hot_fn_bodies(
    ctx: &FileContext,
    type_name: Option<&str>,
    patterns: &[String],
    matched: &mut [bool],
) -> Vec<(String, (usize, usize))> {
    let tokens = &ctx.tokens;
    let mut bodies = Vec::new();
    match type_name {
        Some(type_name) => {
            let mut i = 0;
            while i < tokens.len() {
                if !tokens[i].is_ident("impl") {
                    i += 1;
                    continue;
                }
                let Some((impl_type, open)) = impl_block_type(tokens, i) else {
                    i += 1;
                    continue;
                };
                let close = matching_brace(tokens, open).unwrap_or(tokens.len() - 1);
                if impl_type == type_name {
                    collect_fns_in(ctx, open + 1, close, patterns, matched, &mut bodies);
                }
                i = close + 1;
            }
        }
        None => {
            // Free functions: `fn` tokens at brace depth 0.
            let mut depth = 0i64;
            let mut i = 0;
            while i < tokens.len() {
                let t = &tokens[i];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && t.is_ident("fn") {
                    if let Some(range) = fn_at(ctx, i, patterns, matched, &mut bodies) {
                        i = range;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    bodies
}

/// Parses the type an `impl` block (at token `start`) is for, returning the
/// last path segment of the self type and the index of the block's `{`.
fn impl_block_type(tokens: &[Token], start: usize) -> Option<(String, usize)> {
    let mut i = start + 1;
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_angles(tokens, i);
    }
    // Collect the path up to `{`, `for` or `where`; if `for` appears, restart
    // collection (what came before was the trait).
    let mut last_ident: Option<String> = None;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            return last_ident.map(|name| (name, i));
        }
        if t.is_ident("for") {
            last_ident = None;
            i += 1;
            continue;
        }
        if t.is_ident("where") {
            // Skip ahead to the block.
            let open = (i..tokens.len()).find(|&k| tokens[k].is_punct('{'))?;
            return last_ident.map(|name| (name, open));
        }
        if t.is_punct('<') {
            i = skip_angles(tokens, i);
            continue;
        }
        if t.kind == TokenKind::Ident {
            last_ident = Some(t.text.clone());
        }
        i += 1;
    }
    None
}

/// Collects matching `fn` bodies between `lo` and `hi` at impl-item depth.
fn collect_fns_in(
    ctx: &FileContext,
    lo: usize,
    hi: usize,
    patterns: &[String],
    matched: &mut [bool],
    bodies: &mut Vec<(String, (usize, usize))>,
) {
    let tokens = &ctx.tokens;
    let mut depth = 0i64;
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("fn") {
            if let Some(next) = fn_at(ctx, i, patterns, matched, bodies) {
                i = next;
                continue;
            }
        }
        i += 1;
    }
}

/// If the `fn` at token `i` matches a pattern, records its body range and
/// returns the index just past the body (callers skip it either way is fine).
fn fn_at(
    ctx: &FileContext,
    i: usize,
    patterns: &[String],
    matched: &mut [bool],
    bodies: &mut Vec<(String, (usize, usize))>,
) -> Option<usize> {
    let tokens = &ctx.tokens;
    let name = tokens.get(i + 1)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    let mut any = false;
    for (p, pattern) in patterns.iter().enumerate() {
        if fn_pattern_matches(pattern, &name.text) {
            matched[p] = true;
            any = true;
        }
    }
    // Find the body (trait-method declarations without a body end at `;`).
    let mut open = None;
    for (k, token) in tokens.iter().enumerate().skip(i + 2) {
        if token.is_punct(';') {
            break;
        }
        if token.is_punct('{') {
            open = Some(k);
            break;
        }
    }
    let open = open?;
    let close = matching_brace(tokens, open)?;
    if any {
        bodies.push((name.text.clone(), (open, close)));
    }
    Some(close + 1)
}

/// Scans one hot-function body for allocating constructs.
fn scan_allocations(
    ctx: &FileContext,
    hot: &crate::config::HotFn,
    fn_name: &str,
    (lo, hi): (usize, usize),
    findings: &mut Vec<Finding>,
) {
    let tokens = &ctx.tokens;
    let owner = hot
        .type_name
        .as_deref()
        .map(|t| format!("{t}::"))
        .unwrap_or_default();
    let mut push = |line: u32, what: &str| {
        findings.push(Finding {
            rule: "H001",
            file: ctx.rel_path.clone(),
            line,
            message: format!(
                "hot path `{owner}{fn_name}` allocates via `{what}` — the translation \
                 hot path must stay allocation-free (PR 3 guarantee)"
            ),
            waived: None,
        });
    };
    for i in lo..=hi {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if (t.is_ident("vec") || t.is_ident("format"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            push(t.line, &format!("{}!", t.text));
        } else if ALLOCATING_METHODS.iter().any(|m| t.is_ident(m))
            && i > 0
            && tokens[i - 1].is_punct('.')
        {
            push(t.line, &format!(".{}()", t.text));
        } else if ALLOCATING_TYPES.iter().any(|ty| t.is_ident(ty)) && is_path_sep(tokens, i + 1) {
            if let Some(ctor) = tokens.get(i + 3) {
                if ctor.is_ident("new") || ctor.is_ident("from") || ctor.is_ident("with_capacity") {
                    push(t.line, &format!("{}::{}", t.text, ctor.text));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// C001 — counter flush on drop
// ---------------------------------------------------------------------------

fn c001_collect(ctx: &FileContext, facts: &mut CrateFacts) {
    let tokens = &ctx.tokens;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if ctx.test_mask[i] {
            i += 1;
            continue;
        }
        if t.is_ident("struct") {
            if let Some(end) = c001_struct(ctx, i, facts) {
                i = end;
                continue;
            }
        }
        if t.is_ident("impl") {
            if let Some(end) = c001_impl(ctx, i, facts) {
                i = end;
                continue;
            }
        }
        i += 1;
    }
}

/// Records `HotTally` fields of the struct declared at token `i`; returns the
/// index just past the declaration.
fn c001_struct(ctx: &FileContext, i: usize, facts: &mut CrateFacts) -> Option<usize> {
    let tokens = &ctx.tokens;
    let name = tokens.get(i + 1)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    // Find the `{` (record struct) or `;` (unit/tuple struct) first.
    let mut open = None;
    for (k, token) in tokens.iter().enumerate().skip(i + 2) {
        if token.is_punct(';') {
            return Some(k + 1);
        }
        if token.is_punct('(') {
            // Tuple struct: no named field to flush; skip to the `;`.
            let after = skip_parens(tokens, k);
            return Some(after);
        }
        if token.is_punct('{') {
            open = Some(k);
            break;
        }
    }
    let open = open?;
    let close = matching_brace(tokens, open)?;
    // Fields at depth 1: `name : Type ... ,`
    let mut depth = 0i64;
    let mut k = open;
    while k < close {
        let t = &tokens[k];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 1
            && t.kind == TokenKind::Ident
            && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && !is_path_sep(tokens, k + 1)
        {
            // Scan the field type up to the next depth-1 comma.
            let field = t.text.clone();
            let mut m = k + 2;
            let mut fdepth = 0i64;
            while m < close {
                let ft = &tokens[m];
                if ft.is_punct('<') || ft.is_punct('(') || ft.is_punct('[') {
                    fdepth += 1;
                } else if ft.is_punct('>') || ft.is_punct(')') || ft.is_punct(']') {
                    fdepth -= 1;
                } else if ft.is_punct(',') && fdepth <= 0 {
                    break;
                } else if ft.is_ident("HotTally") {
                    facts.tally_structs.push((
                        name.text.clone(),
                        field.clone(),
                        ctx.rel_path.clone(),
                        tokens[i].line,
                    ));
                }
                m += 1;
            }
            k = m;
            continue;
        }
        k += 1;
    }
    Some(close + 1)
}

/// Records `Drop`-with-`flush` impls; returns the index past the block.
fn c001_impl(ctx: &FileContext, i: usize, facts: &mut CrateFacts) -> Option<usize> {
    let tokens = &ctx.tokens;
    let (type_name, open) = impl_block_type(tokens, i)?;
    let close = matching_brace(tokens, open)?;
    // Is this `impl Drop for T`? The trait path sits between `impl` and `for`.
    let mut is_drop = false;
    for token in &tokens[i..open] {
        if token.is_ident("for") {
            break;
        }
        if token.is_ident("Drop") {
            is_drop = true;
        }
    }
    if is_drop {
        let flushes = tokens[open..close].iter().any(|t| t.is_ident("flush"));
        if flushes {
            facts.drop_flush_types.push(type_name);
        }
    }
    Some(close + 1)
}

fn c001_judge(facts: &CrateFacts, findings: &mut Vec<Finding>) {
    for (struct_name, field, file, line) in &facts.tally_structs {
        if facts.drop_flush_types.iter().any(|t| t == struct_name) {
            continue;
        }
        findings.push(Finding {
            rule: "C001",
            file: file.clone(),
            line: *line,
            message: format!(
                "`{struct_name}` owns the hot-path tally `{field}: HotTally` but has no \
                 `Drop` impl that flushes it — drop-flush is the telemetry contract: \
                 without it every count accumulated since the last reset is lost"
            ),
            waived: None,
        });
    }
}
