//! Workspace discovery: which `.rs` files to lint and which crate owns them.
//!
//! Library/binary sources (`src/`) of every workspace member are scanned;
//! `tests/`, `benches/` and `examples/` trees are not — rules D001/D002 are
//! about artifact-producing code, and test scaffolding legitimately uses
//! hash maps and clocks. `third_party/` (the vendored serde) and `target/`
//! are never touched.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file handed to the rule engine.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Package name of the owning crate.
    pub crate_name: String,
    /// File contents.
    pub source: String,
}

/// Collects the `src/` trees of every workspace member under `root`
/// (the root package itself plus each `crates/*` member), in sorted order so
/// reports are stable.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading files; a missing
/// `crates/` directory or root `src/` is not an error.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    if root.join("src").is_dir() {
        let name = package_name(&root.join("Cargo.toml")).unwrap_or_else(|| "root".to_string());
        collect_tree(root, &root.join("src"), &name, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|path| path.is_dir())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if !src.is_dir() {
                continue;
            }
            let name = package_name(&member.join("Cargo.toml")).unwrap_or_else(|| {
                member
                    .file_name()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .to_string()
            });
            collect_tree(root, &src, &name, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Reads the `name = "..."` of a `Cargo.toml`'s `[package]` section.
#[must_use]
pub fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if let Some(header) = line.strip_prefix('[') {
            in_package = header.trim_end_matches(']').trim() == "package";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            if key.trim() == "name" {
                let value = value.trim();
                return value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .map(str::to_string);
            }
        }
    }
    None
}

/// Recursively collects `.rs` files under `dir`, skipping vendored and build
/// output trees.
fn collect_tree(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|entry| entry.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "third_party" {
                continue;
            }
            collect_tree(root, &path, crate_name, files)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(SourceFile {
                rel_path: rel_path(root, &path),
                crate_name: crate_name.to_string(),
                source: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across platforms for
/// waiver matching and report output).
#[must_use]
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_reads_the_package_section_only() {
        let dir = std::env::temp_dir().join(format!("neummu_lint_ws_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("Cargo.toml");
        fs::write(
            &manifest,
            "[workspace]\nmembers = []\n[package]\nname = \"demo_crate\"\nversion = \"0.1.0\"\n",
        )
        .unwrap();
        assert_eq!(package_name(&manifest).as_deref(), Some("demo_crate"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rel_path_uses_forward_slashes() {
        let root = Path::new("/ws");
        let path = Path::new("/ws/crates/core/src/engine.rs");
        assert_eq!(rel_path(root, path), "crates/core/src/engine.rs");
    }
}
