//! C001 fixture: a `HotTally` owner with no flushing `Drop`.
pub struct HotTally {
    hits: u64,
}

impl HotTally {
    pub fn flush(&mut self) {
        self.hits = 0;
    }
}

pub struct Engine {
    hot: HotTally,
    cycles: u64,
}

impl Engine {
    pub fn tick(&mut self) {
        self.cycles += 1;
        self.hot.hits += 1;
    }
}
