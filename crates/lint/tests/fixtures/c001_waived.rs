//! C001 fixture twin: the compliant shape — `Drop` flushes the tally —
//! plus a waivable offender to exercise the waiver path.
pub struct HotTally {
    hits: u64,
}

impl HotTally {
    pub fn flush(&mut self) {
        self.hits = 0;
    }
}

pub struct Engine {
    hot: HotTally,
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.hot.flush();
    }
}

pub struct ScratchProbe {
    hot: HotTally, // waived: probe is reset explicitly, never dropped live
}

impl ScratchProbe {
    pub fn reset(&mut self) {
        self.hot.flush();
    }
}
