//! D001 fixture: default-hashed declaration AND hash-order iteration.
use std::collections::HashMap;

pub struct Tracker {
    counts: HashMap<u64, u64>,
}

impl Tracker {
    pub fn total(&self) -> u64 {
        // Iterating a hash map: visit order is per-process random.
        let mut sum = 0;
        for (_page, count) in self.counts.iter() {
            sum += count;
        }
        sum
    }

    pub fn bare_for_loop(&self) -> usize {
        let mut n = 0;
        for _ in &self.counts {
            n += 1;
        }
        n
    }
}
