//! D001 fixture twin: same declaration, but keyed access only — the
//! declaration finding is waived in the test's config, and no iteration
//! finding exists to waive.
use std::collections::HashMap;

pub struct Tracker {
    counts: HashMap<u64, u64>, // waived: never iterated
}

impl Tracker {
    pub fn get(&self, page: u64) -> u64 {
        self.counts.get(&page).copied().unwrap_or(0)
    }

    pub fn bump(&mut self, page: u64) {
        *self.counts.entry(page).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_in_test_code_is_fine() {
        let tracker = Tracker {
            counts: HashMap::new(),
        };
        // Test code may iterate freely; D001 only guards artifact code.
        assert_eq!(tracker.counts.iter().count(), 0);
    }
}
