//! D002 fixture: wall-clock and environment reads in simulation code.
use std::time::Instant;

pub fn simulate_step() -> u64 {
    let started = Instant::now();
    let budget = std::env::var("SIM_BUDGET").unwrap_or_default();
    started.elapsed().as_nanos() as u64 + budget.len() as u64
}
