//! D002 fixture twin: the same clock read, waived as profiling-only.
use std::time::Instant;

pub fn profile_step() -> u64 {
    let started = Instant::now(); // waived: progress reporting only
    started.elapsed().as_nanos() as u64
}
