//! H001 fixture: a registered hot function that allocates.
pub struct Engine {
    scratch: u64,
}

impl Engine {
    pub fn translate(&mut self, va: u64) -> u64 {
        let pages: Vec<u64> = (0..4).map(|i| va + i).collect();
        let label = format!("va={va}");
        self.scratch += label.len() as u64;
        pages.iter().sum()
    }

    pub fn cold_path(&mut self) -> Vec<u64> {
        // Not registered: allocation here is fine.
        Vec::new()
    }
}
