//! H001 fixture twin: the same registered hot function, with its one
//! allocation waived (e.g. a cold error branch).
pub struct Engine {
    scratch: u64,
}

impl Engine {
    pub fn translate(&mut self, va: u64) -> u64 {
        if va == u64::MAX {
            let label = format!("bad va {va}"); // waived: cold error branch
            return label.len() as u64;
        }
        self.scratch += 1;
        va >> 12
    }
}
