//! Rule-level tests driven by the fixture files, the live-workspace
//! self-check, and the CI-shaped exit-code tests against the built binary.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use neummu_lint::config::Config;
use neummu_lint::report::Report;
use neummu_lint::workspace::SourceFile;
use neummu_lint::{lint_files, lint_workspace};

fn fixture(name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    SourceFile {
        rel_path: format!("crates/fixture/src/{name}"),
        crate_name: "fixture".to_string(),
        source: fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display())),
    }
}

fn lint_fixture(name: &str, config_text: &str) -> Report {
    let config = Config::parse(config_text).expect("test config parses");
    lint_files(&[fixture(name)], &config)
}

const D001_CONFIG: &str = "[rules.D001]\ncrates = [\"fixture\"]\n";

#[test]
fn d001_flags_declaration_and_both_iteration_shapes() {
    let report = lint_fixture("d001_trip.rs", D001_CONFIG);
    let rules: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.iter().all(|r| *r == "D001"), "{rules:?}");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("RandomState")),
        "declaration finding missing: {:?}",
        report.findings
    );
    assert!(
        report.findings.iter().any(|f| f.message.contains(".iter(")),
        "method-chain iteration finding missing"
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("`for` loop")),
        "bare for-loop iteration finding missing"
    );
    assert!(!report.is_clean());
}

#[test]
fn d001_waiver_covers_the_declaration_and_test_code_is_exempt() {
    let config = "[rules.D001]\ncrates = [\"fixture\"]\n\
        [[waiver]]\nrule = \"D001\"\nfile = \"d001_waived.rs\"\n\
        contains = \"counts: HashMap\"\nreason = \"never iterated\"\n";
    let report = lint_fixture("d001_waived.rs", config);
    // One declaration finding, waived; the `.iter()` inside `#[cfg(test)]`
    // must not be reported at all.
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].waived.as_deref(), Some("never iterated"));
    assert!(report.is_clean());
}

#[test]
fn d002_flags_clock_and_env_reads() {
    let report = lint_fixture("d002_trip.rs", "[rules.D002]\nallow = []\n");
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("Instant::now")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("env::var")));
}

#[test]
fn d002_allow_prefix_and_waiver_both_silence_findings() {
    // Allowlisted path prefix: no findings at all.
    let allowed = lint_fixture(
        "d002_trip.rs",
        "[rules.D002]\nallow = [\"crates/fixture/\"]\n",
    );
    assert!(allowed.findings.is_empty(), "{:?}", allowed.findings);
    // Waiver: the finding exists but is waived.
    let config = "[[waiver]]\nrule = \"D002\"\nfile = \"d002_waived.rs\"\n\
        contains = \"Instant::now\"\nreason = \"progress reporting only\"\n";
    let report = lint_fixture("d002_waived.rs", config);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert!(report.is_clean());
}

const H001_CONFIG: &str = "[[hot]]\nfile = \"h001_trip.rs\"\ntype = \"Engine\"\n\
    functions = [\"translate\"]\n";

#[test]
fn h001_flags_allocations_only_in_registered_functions() {
    let report = lint_fixture("h001_trip.rs", H001_CONFIG);
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("format!")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains(".collect()")));
    // `cold_path` allocates `Vec::new()` but is not registered.
    assert!(report
        .findings
        .iter()
        .all(|f| f.message.contains("`Engine::translate`")));
}

#[test]
fn h001_waiver_and_stale_registration() {
    let config = "[[hot]]\nfile = \"h001_waived.rs\"\ntype = \"Engine\"\n\
        functions = [\"translate\"]\n\
        [[waiver]]\nrule = \"H001\"\nfile = \"h001_waived.rs\"\n\
        contains = \"format!\"\nreason = \"cold error branch\"\n";
    let report = lint_fixture("h001_waived.rs", config);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert!(report.is_clean());
    // A registration matching no function is itself a finding.
    let stale = "[[hot]]\nfile = \"h001_trip.rs\"\ntype = \"Engine\"\n\
        functions = [\"renamed_fn\"]\n";
    let report = lint_fixture("h001_trip.rs", stale);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert!(report.findings[0].message.contains("stale"));
}

#[test]
fn c001_flags_unflushed_tally_and_accepts_drop_flush() {
    let report = lint_fixture("c001_trip.rs", "");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert!(report.findings[0].message.contains("`Engine`"));
    assert!(report.findings[0].message.contains("HotTally"));

    let config = "[[waiver]]\nrule = \"C001\"\nfile = \"c001_waived.rs\"\n\
        contains = \"struct ScratchProbe\"\nreason = \"reset explicitly, never dropped live\"\n";
    let report = lint_fixture("c001_waived.rs", config);
    // `Engine` passes via its flushing Drop; `ScratchProbe` is waived.
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert!(report.findings[0].message.contains("`ScratchProbe`"));
    assert!(report.is_clean());
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// The self-check the CI gate relies on: the live workspace lints clean under
/// the checked-in `lint.toml`, and every waiver that fires carries a reason.
#[test]
fn live_workspace_lints_clean() {
    let root = repo_root();
    let config = Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    let report = lint_workspace(&root, &config).expect("workspace walk succeeds");
    let live: Vec<_> = report.live().collect();
    assert!(live.is_empty(), "live findings in the workspace: {live:#?}");
    for finding in &report.findings {
        let reason = finding.waived.as_deref().unwrap_or("");
        assert!(
            !reason.trim().is_empty(),
            "waived finding without a reason: {finding:?}"
        );
    }
    assert!(report.files_checked > 30, "suspiciously small workspace");
}

// ---------------------------------------------------------------------------
// CI-shaped exit-code tests against the real binary
// ---------------------------------------------------------------------------

struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str, lib_source: &str, lint_toml: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("neummu_lint_it_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("src")).unwrap();
        fs::write(
            root.join("Cargo.toml"),
            "[package]\nname = \"seeded\"\nversion = \"0.1.0\"\n",
        )
        .unwrap();
        fs::write(root.join("src/lib.rs"), lib_source).unwrap();
        fs::write(root.join("lint.toml"), lint_toml).unwrap();
        TempWorkspace { root }
    }

    fn run_lint(&self) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_neummu_lint"))
            .args(["--workspace", "--root"])
            .arg(&self.root)
            .output()
            .expect("spawn neummu_lint")
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const SEEDED_VIOLATION: &str = "\
use std::collections::HashMap;
pub fn order(map: &HashMap<u64, u64>) -> u64 {
    map.keys().sum()
}
";

#[test]
fn binary_exits_nonzero_on_a_seeded_violation() {
    let ws = TempWorkspace::new(
        "dirty",
        SEEDED_VIOLATION,
        "[rules.D001]\ncrates = [\"seeded\"]\n",
    );
    let output = ws.run_lint();
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("D001"), "{stdout}");
    assert!(stdout.contains("src/lib.rs"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_a_clean_tree() {
    let ws = TempWorkspace::new(
        "clean",
        "pub fn double(x: u64) -> u64 { x * 2 }\n",
        "[rules.D001]\ncrates = [\"seeded\"]\n",
    );
    let output = ws.run_lint();
    assert_eq!(output.status.code(), Some(0), "{output:?}");
}

#[test]
fn binary_exits_two_on_an_empty_waiver_reason() {
    let ws = TempWorkspace::new(
        "badconfig",
        "pub fn ok() {}\n",
        "[[waiver]]\nrule = \"D001\"\nfile = \"x.rs\"\ncontains = \"HashMap\"\nreason = \"\"\n",
    );
    let output = ws.run_lint();
    assert_eq!(output.status.code(), Some(2), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("empty reason"), "{stderr}");
}
