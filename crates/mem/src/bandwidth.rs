//! A serializing bandwidth server.
//!
//! Every shared resource with a byte/cycle throughput limit (the HBM channels,
//! the PCIe link, the NPU↔NPU link) is modelled as a [`BandwidthServer`]:
//! transfers are serviced in arrival order, each occupying the server for
//! `bytes / bandwidth` cycles, and the server remembers when it becomes free.

use serde::{Deserialize, Serialize};

/// Occupancy interval returned by [`BandwidthServer::schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Cycle at which the transfer starts occupying the server.
    pub start: u64,
    /// Cycle at which the server becomes free again.
    pub end: u64,
}

impl Occupancy {
    /// Duration of the occupancy in cycles.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// A first-come-first-served bandwidth-limited resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthServer {
    bytes_per_cycle: f64,
    busy_until: u64,
    total_bytes: u64,
    busy_cycles: u64,
}

impl BandwidthServer {
    /// Creates a server with the given sustained throughput.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive and finite.
    #[must_use]
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(
            bytes_per_cycle > 0.0 && bytes_per_cycle.is_finite(),
            "bandwidth must be positive and finite, got {bytes_per_cycle}"
        );
        BandwidthServer {
            bytes_per_cycle,
            busy_until: 0,
            total_bytes: 0,
            busy_cycles: 0,
        }
    }

    /// Sustained throughput in bytes per cycle.
    #[must_use]
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Number of cycles needed to stream `bytes` through the server,
    /// ignoring queueing (at least one cycle for a non-empty transfer).
    #[must_use]
    pub fn serialization_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        ((bytes as f64 / self.bytes_per_cycle).ceil() as u64).max(1)
    }

    /// Schedules a transfer of `bytes` that becomes ready at `ready_cycle`,
    /// returning the interval during which it occupies the server.
    pub fn schedule(&mut self, ready_cycle: u64, bytes: u64) -> Occupancy {
        let start = ready_cycle.max(self.busy_until);
        let duration = self.serialization_cycles(bytes);
        let end = start + duration;
        self.busy_until = end;
        self.total_bytes += bytes;
        self.busy_cycles += duration;
        Occupancy { start, end }
    }

    /// Schedules a run of back-to-back transfers in one occupancy
    /// computation, returning the interval the whole run occupies.
    ///
    /// Transfer `j` of the run becomes ready at `first_ready +
    /// j * ready_stride` and moves `bytes(j)` bytes, where `bytes` describes
    /// the DMA run shape: a possibly short first transfer, full-grain
    /// interior transfers, and a possibly short last transfer. The result —
    /// occupancy interval, `busy_until`, byte and busy-cycle totals — is
    /// bit-identical to scheduling the transfers one
    /// [`BandwidthServer::schedule`] call at a time, because with
    /// `ready_stride <= 1` and every transfer at least one cycle long the
    /// run is fully serialized after its first transfer: transfer `j+1` is
    /// ready no more than one cycle after transfer `j` was, while the server
    /// stays busy for at least one more cycle.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `count` is zero, `ready_stride > 1`, or
    /// any transfer of the run is empty.
    pub fn schedule_run(
        &mut self,
        first_ready: u64,
        ready_stride: u64,
        count: u64,
        first_bytes: u64,
        interior_bytes: u64,
        last_bytes: u64,
    ) -> Occupancy {
        debug_assert!(count >= 1, "a transfer run has at least one transfer");
        debug_assert!(
            ready_stride <= 1,
            "readiness may advance at most one cycle per transfer"
        );
        debug_assert!(first_bytes > 0, "transfers are never empty");
        debug_assert!(count < 2 || last_bytes > 0, "transfers are never empty");
        debug_assert!(count < 3 || interior_bytes > 0, "transfers are never empty");
        if count == 1 {
            return self.schedule(first_ready, first_bytes);
        }
        let interior_count = count - 2;
        let bytes = first_bytes + interior_count * interior_bytes + last_bytes;
        let duration = self.serialization_cycles(first_bytes)
            + interior_count * self.serialization_cycles(interior_bytes)
            + self.serialization_cycles(last_bytes);
        let start = first_ready.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.total_bytes += bytes;
        self.busy_cycles += duration;
        Occupancy { start, end }
    }

    /// Cycle at which the server becomes free (no pending transfer after it).
    #[must_use]
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Total bytes transferred so far.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total cycles the server has been occupied.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Utilization relative to `elapsed_cycles` (clamped to 1.0).
    #[must_use]
    pub fn utilization(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        (self.busy_cycles as f64 / elapsed_cycles as f64).min(1.0)
    }

    /// Resets occupancy and statistics.
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.total_bytes = 0;
        self.busy_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_respects_bandwidth() {
        let server = BandwidthServer::new(600.0);
        assert_eq!(server.serialization_cycles(0), 0);
        assert_eq!(server.serialization_cycles(1), 1);
        assert_eq!(server.serialization_cycles(600), 1);
        assert_eq!(server.serialization_cycles(601), 2);
        assert_eq!(server.serialization_cycles(6000), 10);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut server = BandwidthServer::new(100.0);
        let a = server.schedule(0, 1000); // 10 cycles
        let b = server.schedule(0, 1000); // queued behind a
        assert_eq!(a.start, 0);
        assert_eq!(a.end, 10);
        assert_eq!(b.start, 10);
        assert_eq!(b.end, 20);
        assert_eq!(server.busy_until(), 20);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut server = BandwidthServer::new(100.0);
        server.schedule(0, 100);
        let late = server.schedule(50, 100);
        assert_eq!(late.start, 50);
        assert_eq!(late.end, 51);
        assert_eq!(server.busy_cycles(), 2);
        assert!(server.utilization(51) < 0.1);
    }

    /// The byte length of transfer `j` in a `(first, interior.., last)` run.
    fn run_bytes(j: u64, count: u64, first: u64, interior: u64, last: u64) -> u64 {
        if j == 0 {
            first
        } else if j == count - 1 {
            last
        } else {
            interior
        }
    }

    #[test]
    fn run_scheduling_matches_individual_transfers_bit_for_bit() {
        for (bw, first_ready, stride, count, first, interior, last) in [
            (600.0, 0u64, 1u64, 8u64, 512u64, 512u64, 512u64),
            (600.0, 1000, 0, 8, 412, 512, 100),
            (100.0, 0, 1, 2, 1, 1000, 1),
            (0.5, 7, 0, 5, 3, 4, 2),
            (600.0, 0, 1, 1, 512, 512, 512),
        ] {
            let mut individual = BandwidthServer::new(bw);
            let mut batched = BandwidthServer::new(bw);
            // Pre-contend both servers so the run queues behind earlier work.
            individual.schedule(0, 2000);
            batched.schedule(0, 2000);
            let mut last_occ = None;
            for j in 0..count {
                let bytes = run_bytes(j, count, first, interior, last);
                last_occ = Some(individual.schedule(first_ready + j * stride, bytes));
            }
            let run_occ = batched.schedule_run(first_ready, stride, count, first, interior, last);
            assert_eq!(run_occ.end, last_occ.unwrap().end, "bw {bw} count {count}");
            assert_eq!(individual.busy_until(), batched.busy_until());
            assert_eq!(individual.total_bytes(), batched.total_bytes());
            assert_eq!(individual.busy_cycles(), batched.busy_cycles());
        }
    }

    #[test]
    fn run_scheduling_respects_an_idle_gap_before_the_run() {
        let mut server = BandwidthServer::new(100.0);
        server.schedule(0, 100); // busy until 1
        let occ = server.schedule_run(50, 1, 3, 100, 100, 100);
        assert_eq!(occ.start, 50);
        assert_eq!(occ.end, 53);
        assert_eq!(server.busy_cycles(), 4);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut server = BandwidthServer::new(10.0);
        server.schedule(0, 100);
        server.schedule(0, 50);
        assert_eq!(server.total_bytes(), 150);
        assert_eq!(server.busy_cycles(), 15);
        server.reset();
        assert_eq!(server.total_bytes(), 0);
        assert_eq!(server.busy_until(), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = BandwidthServer::new(0.0);
    }
}
