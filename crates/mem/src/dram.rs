//! NPU-local memory (HBM) timing model.
//!
//! Following the paper's methodology (Section II-C), the local memory system is
//! modelled with a fixed access latency and a fixed sustained bandwidth rather
//! than a cycle-level DRAM simulator. Table I gives 600 GB/s over 8 channels
//! with a 100-cycle access latency at a 1 GHz core clock, i.e. 600 bytes/cycle
//! aggregate.

use serde::{Deserialize, Serialize};

use crate::bandwidth::BandwidthServer;

/// Configuration of the local memory system (Table I, "Memory system").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of memory channels.
    pub num_channels: u32,
    /// Aggregate sustained bandwidth in bytes per core cycle.
    pub bandwidth_bytes_per_cycle: f64,
    /// Access latency in core cycles.
    pub access_latency_cycles: u64,
}

impl DramConfig {
    /// The Table I configuration: 8 channels, 600 GB/s at 1 GHz, 100 cycles.
    #[must_use]
    pub const fn table1() -> Self {
        DramConfig {
            num_channels: 8,
            bandwidth_bytes_per_cycle: 600.0,
            access_latency_cycles: 100,
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::table1()
    }
}

/// Stateful local-memory model: a latency adder in front of a shared
/// bandwidth server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramModel {
    config: DramConfig,
    server: BandwidthServer,
}

impl DramModel {
    /// Creates a model from a configuration.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        DramModel {
            config,
            server: BandwidthServer::new(config.bandwidth_bytes_per_cycle),
        }
    }

    /// The Table I (TPU-like) memory system.
    #[must_use]
    pub fn tpu_like() -> Self {
        Self::new(DramConfig::table1())
    }

    /// Configuration used by this model.
    #[must_use]
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Latency+serialization cycles of an isolated transfer of `bytes`
    /// (no contention).
    #[must_use]
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        self.config.access_latency_cycles + self.server.serialization_cycles(bytes)
    }

    /// Schedules a transfer that becomes ready at `ready_cycle`; returns the
    /// cycle at which the data has fully arrived.
    pub fn schedule_transfer(&mut self, ready_cycle: u64, bytes: u64) -> u64 {
        let occupancy = self.server.schedule(ready_cycle, bytes);
        occupancy.end + self.config.access_latency_cycles
    }

    /// Schedules a run of back-to-back transfers (the data movement of one
    /// run-coalesced DMA burst) in a single occupancy computation; returns
    /// the cycle at which the *last* transfer's data has arrived, which is
    /// also the run's maximum since arrivals are non-decreasing.
    ///
    /// Transfer `j` becomes ready at `first_ready + j * ready_stride`
    /// (stride 1 for replayed TLB hits, 0 for merged requests that all
    /// complete with their shared walk); byte sizes follow the DMA run shape
    /// `first_bytes, interior_bytes.., last_bytes`. Every per-transaction
    /// arrival cycle — and all bandwidth accounting — is bit-identical to
    /// `count` individual [`DramModel::schedule_transfer`] calls (see
    /// [`crate::bandwidth::BandwidthServer::schedule_run`] for why the run
    /// serializes exactly).
    pub fn schedule_run(
        &mut self,
        first_ready: u64,
        ready_stride: u64,
        count: u64,
        first_bytes: u64,
        interior_bytes: u64,
        last_bytes: u64,
    ) -> u64 {
        let occupancy = self.server.schedule_run(
            first_ready,
            ready_stride,
            count,
            first_bytes,
            interior_bytes,
            last_bytes,
        );
        occupancy.end + self.config.access_latency_cycles
    }

    /// Cycle at which the memory system's bandwidth becomes free.
    #[must_use]
    pub fn busy_until(&self) -> u64 {
        self.server.busy_until()
    }

    /// Total bytes transferred.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.server.total_bytes()
    }

    /// Bandwidth utilization over `elapsed_cycles`.
    #[must_use]
    pub fn utilization(&self, elapsed_cycles: u64) -> f64 {
        self.server.utilization(elapsed_cycles)
    }

    /// Resets the bandwidth state.
    pub fn reset(&mut self) {
        self.server.reset();
    }

    /// Minimum cycles needed to stream `bytes` at full bandwidth, ignoring the
    /// fixed access latency. Useful for roofline checks.
    #[must_use]
    pub fn streaming_cycles(&self, bytes: u64) -> u64 {
        self.server.serialization_cycles(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let cfg = DramConfig::table1();
        assert_eq!(cfg.num_channels, 8);
        assert_eq!(cfg.access_latency_cycles, 100);
        assert!((cfg.bandwidth_bytes_per_cycle - 600.0).abs() < f64::EPSILON);
    }

    #[test]
    fn transfer_cycles_includes_latency_and_serialization() {
        let dram = DramModel::tpu_like();
        // 6 KB at 600 B/cycle = 10 cycles + 100 latency.
        assert_eq!(dram.transfer_cycles(6000), 110);
        assert_eq!(dram.transfer_cycles(0), 100);
    }

    #[test]
    fn scheduled_transfers_contend_for_bandwidth() {
        let mut dram = DramModel::tpu_like();
        let first = dram.schedule_transfer(0, 60_000); // 100 cycles of bandwidth
        let second = dram.schedule_transfer(0, 60_000);
        assert_eq!(first, 200);
        assert_eq!(second, 300);
        assert_eq!(dram.total_bytes(), 120_000);
    }

    #[test]
    fn a_5mb_tile_takes_on_the_order_of_10k_cycles() {
        // Sanity-check the magnitude the paper relies on: a 5 MB tile at
        // 600 B/cycle needs ~8.7K cycles of pure bandwidth.
        let dram = DramModel::tpu_like();
        let cycles = dram.streaming_cycles(5 * 1024 * 1024);
        assert!(cycles > 8_000 && cycles < 10_000, "got {cycles}");
    }

    #[test]
    fn run_transfers_match_individual_transfers() {
        let mut individual = DramModel::tpu_like();
        let mut batched = DramModel::tpu_like();
        // A merged-run shape (stride 0) followed by a hit-run shape (stride 1).
        let mut last = 0;
        for j in 0..8u64 {
            last = individual.schedule_transfer(400, if j == 0 { 412 } else { 512 });
        }
        for j in 0..4u64 {
            last = individual.schedule_transfer(500 + j, 512);
        }
        let run1 = batched.schedule_run(400, 0, 8, 412, 512, 512);
        let run2 = batched.schedule_run(500, 1, 4, 512, 512, 512);
        assert_eq!(run2, last);
        assert!(run1 < run2);
        assert_eq!(individual.busy_until(), batched.busy_until());
        assert_eq!(individual.total_bytes(), batched.total_bytes());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut dram = DramModel::tpu_like();
        dram.schedule_transfer(0, 1 << 20);
        dram.reset();
        assert_eq!(dram.busy_until(), 0);
        assert_eq!(dram.total_bytes(), 0);
    }
}
