//! System-interconnect models: PCIe, NPU↔NPU links, NUMA accesses and
//! CPU-relayed staged copies.
//!
//! Section V of the paper compares three ways of gathering remote embedding
//! vectors in a multi-NPU system:
//!
//! 1. **MMU-less baseline** — the CPU runtime copies the vectors from the
//!    source NPU into a host pinned buffer and then into the destination NPU,
//!    both hops over PCIe, plus runtime staging overhead.
//! 2. **NUMA(slow)** — the destination NPU loads the vectors directly from the
//!    remote NPU's memory over the legacy PCIe interconnect (150-cycle NUMA hop
//!    plus serialization at PCIe bandwidth).
//! 3. **NUMA(fast)** — the same, but over a high-bandwidth NVLINK-class
//!    NPU↔NPU interconnect.
//!
//! Figure 16 additionally models demand paging: on a page fault the missing
//! 4 KB or 2 MB page is migrated over the interconnect into local memory.

use serde::{Deserialize, Serialize};

use crate::bandwidth::BandwidthServer;

/// A point-to-point interconnect link with fixed latency and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Sustained bandwidth in bytes per core cycle.
    pub bandwidth_bytes_per_cycle: f64,
    /// One-way latency in cycles (per transfer, not per byte).
    pub latency_cycles: u64,
}

impl Link {
    /// Cycles for an isolated transfer of `bytes` over this link.
    #[must_use]
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.latency_cycles + ((bytes as f64 / self.bandwidth_bytes_per_cycle).ceil() as u64).max(1)
    }
}

/// Interconnect configuration (Table I, "System Interconnect").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// CPU↔NPU PCIe link (16 GB/s at a 1 GHz core clock → 16 bytes/cycle).
    pub pcie: Link,
    /// NPU↔NPU high-bandwidth link (160 GB/s → 160 bytes/cycle).
    pub npu_link: Link,
    /// Additional latency of a remote (NUMA) access across the system
    /// interconnect, on top of serialization (150 cycles).
    pub numa_hop_latency_cycles: u64,
    /// Host runtime/driver overhead charged per CPU-relayed copy operation.
    ///
    /// The MMU-less baseline needs the CPU to orchestrate every gather; this
    /// constant models the kernel-launch / driver round-trip per staged copy.
    pub host_staging_overhead_cycles: u64,
    /// Overhead of taking and servicing one page fault (far-fault handling,
    /// page-table update, TLB shootdown) in cycles, excluding the data
    /// transfer itself.
    pub page_fault_overhead_cycles: u64,
}

impl InterconnectConfig {
    /// The Table I configuration.
    #[must_use]
    pub const fn table1() -> Self {
        InterconnectConfig {
            pcie: Link {
                bandwidth_bytes_per_cycle: 16.0,
                latency_cycles: 500,
            },
            npu_link: Link {
                bandwidth_bytes_per_cycle: 160.0,
                latency_cycles: 150,
            },
            numa_hop_latency_cycles: 150,
            host_staging_overhead_cycles: 2_000,
            page_fault_overhead_cycles: 600,
        }
    }
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        Self::table1()
    }
}

/// Which interconnect a remote transfer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferKind {
    /// Over the legacy PCIe system interconnect ("NUMA(slow)" in Figure 15).
    Pcie,
    /// Over the high-bandwidth NPU↔NPU link ("NUMA(fast)" in Figure 15).
    NpuLink,
}

/// Stateful model of the system interconnect shared by all devices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CopyEngine {
    config: InterconnectConfig,
    pcie_server: BandwidthServer,
    npu_link_server: BandwidthServer,
    /// Count of CPU-relayed staged copies performed.
    staged_copies: u64,
    /// Count of fine-grained NUMA accesses performed.
    numa_accesses: u64,
    /// Count of page migrations performed.
    page_migrations: u64,
}

impl CopyEngine {
    /// Creates a copy engine from an interconnect configuration.
    #[must_use]
    pub fn new(config: InterconnectConfig) -> Self {
        CopyEngine {
            config,
            pcie_server: BandwidthServer::new(config.pcie.bandwidth_bytes_per_cycle),
            npu_link_server: BandwidthServer::new(config.npu_link.bandwidth_bytes_per_cycle),
            staged_copies: 0,
            numa_accesses: 0,
            page_migrations: 0,
        }
    }

    /// Configuration in use.
    #[must_use]
    pub fn config(&self) -> InterconnectConfig {
        self.config
    }

    fn server_mut(&mut self, kind: TransferKind) -> &mut BandwidthServer {
        match kind {
            TransferKind::Pcie => &mut self.pcie_server,
            TransferKind::NpuLink => &mut self.npu_link_server,
        }
    }

    fn link(&self, kind: TransferKind) -> Link {
        match kind {
            TransferKind::Pcie => self.config.pcie,
            TransferKind::NpuLink => self.config.npu_link,
        }
    }

    /// Models the MMU-less baseline: the CPU runtime copies `bytes` from the
    /// source NPU to host pinned memory and then to the destination NPU, both
    /// hops over PCIe, with per-copy staging overhead.
    ///
    /// Returns the cycle at which the data is available at the destination.
    pub fn host_relayed_copy(&mut self, ready_cycle: u64, bytes: u64) -> u64 {
        self.staged_copies += 1;
        let cfg = self.config;
        // Hop 1: source NPU -> host pinned buffer.
        let staged_ready = ready_cycle + cfg.host_staging_overhead_cycles;
        let first = self.pcie_server.schedule(staged_ready, bytes);
        let at_host = first.end + cfg.pcie.latency_cycles;
        // Hop 2: host pinned buffer -> destination NPU (second staging step).
        let second_ready = at_host + cfg.host_staging_overhead_cycles;
        let second = self.pcie_server.schedule(second_ready, bytes);
        second.end + cfg.pcie.latency_cycles
    }

    /// Models one fine-grained NUMA access of `bytes` from a remote memory over
    /// the given interconnect. Returns the completion cycle.
    pub fn numa_access(&mut self, ready_cycle: u64, bytes: u64, kind: TransferKind) -> u64 {
        self.numa_accesses += 1;
        let hop = self.config.numa_hop_latency_cycles;
        let link = self.link(kind);
        let occ = self.server_mut(kind).schedule(ready_cycle, bytes);
        occ.end + hop + link.latency_cycles
    }

    /// Models the migration of one page of `page_bytes` into local memory on a
    /// page fault (demand paging). Returns the completion cycle.
    pub fn page_migration(&mut self, ready_cycle: u64, page_bytes: u64, kind: TransferKind) -> u64 {
        self.page_migrations += 1;
        let fault_done = ready_cycle + self.config.page_fault_overhead_cycles;
        let link = self.link(kind);
        let occ = self.server_mut(kind).schedule(fault_done, page_bytes);
        occ.end + self.config.numa_hop_latency_cycles + link.latency_cycles
    }

    /// Number of CPU-relayed staged copies performed.
    #[must_use]
    pub fn staged_copies(&self) -> u64 {
        self.staged_copies
    }

    /// Number of fine-grained NUMA accesses performed.
    #[must_use]
    pub fn numa_accesses(&self) -> u64 {
        self.numa_accesses
    }

    /// Number of page migrations performed.
    #[must_use]
    pub fn page_migrations(&self) -> u64 {
        self.page_migrations
    }

    /// Total bytes moved over PCIe.
    #[must_use]
    pub fn pcie_bytes(&self) -> u64 {
        self.pcie_server.total_bytes()
    }

    /// Total bytes moved over the NPU↔NPU link.
    #[must_use]
    pub fn npu_link_bytes(&self) -> u64 {
        self.npu_link_server.total_bytes()
    }

    /// Resets occupancy and statistics.
    pub fn reset(&mut self) {
        self.pcie_server.reset();
        self.npu_link_server.reset();
        self.staged_copies = 0;
        self.numa_accesses = 0;
        self.page_migrations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_link_speeds() {
        let cfg = InterconnectConfig::table1();
        assert!((cfg.pcie.bandwidth_bytes_per_cycle - 16.0).abs() < f64::EPSILON);
        assert!((cfg.npu_link.bandwidth_bytes_per_cycle - 160.0).abs() < f64::EPSILON);
        assert_eq!(cfg.numa_hop_latency_cycles, 150);
    }

    #[test]
    fn isolated_link_transfer() {
        let link = Link {
            bandwidth_bytes_per_cycle: 16.0,
            latency_cycles: 500,
        };
        assert_eq!(link.transfer_cycles(0), 0);
        assert_eq!(link.transfer_cycles(16), 501);
        assert_eq!(link.transfer_cycles(1600), 600);
    }

    #[test]
    fn host_relayed_copy_is_slower_than_direct_numa() {
        // The core claim of Section V: the CPU-relayed path pays two PCIe hops
        // plus staging overhead, while NUMA pays one hop.
        let bytes = 256; // one embedding vector (64 × f32)
        let mut engine = CopyEngine::new(InterconnectConfig::table1());
        let staged = engine.host_relayed_copy(0, bytes);
        let mut engine2 = CopyEngine::new(InterconnectConfig::table1());
        let numa_slow = engine2.numa_access(0, bytes, TransferKind::Pcie);
        let mut engine3 = CopyEngine::new(InterconnectConfig::table1());
        let numa_fast = engine3.numa_access(0, bytes, TransferKind::NpuLink);
        assert!(
            staged > numa_slow,
            "staged {staged} vs numa_slow {numa_slow}"
        );
        assert!(
            numa_slow > numa_fast,
            "numa_slow {numa_slow} vs numa_fast {numa_fast}"
        );
    }

    #[test]
    fn npu_link_is_faster_for_bulk_transfers() {
        let mut engine = CopyEngine::new(InterconnectConfig::table1());
        let over_pcie = engine.numa_access(0, 1 << 20, TransferKind::Pcie);
        engine.reset();
        let over_nvlink = engine.numa_access(0, 1 << 20, TransferKind::NpuLink);
        assert!(over_pcie > 5 * over_nvlink);
    }

    #[test]
    fn page_migration_scales_with_page_size() {
        let mut engine = CopyEngine::new(InterconnectConfig::table1());
        let small = engine.page_migration(0, 4096, TransferKind::NpuLink);
        engine.reset();
        let large = engine.page_migration(0, 2 << 20, TransferKind::NpuLink);
        assert!(
            large > 100 * small / 10,
            "2MB migration should dwarf 4KB: {large} vs {small}"
        );
        assert_eq!(engine.page_migrations(), 1);
    }

    #[test]
    fn shared_link_serializes_concurrent_transfers() {
        let mut engine = CopyEngine::new(InterconnectConfig::table1());
        let a = engine.numa_access(0, 16_000, TransferKind::Pcie); // 1000 cycles of bw
        let b = engine.numa_access(0, 16_000, TransferKind::Pcie);
        assert!(b >= a + 1000 - 1);
        assert_eq!(engine.numa_accesses(), 2);
        assert_eq!(engine.pcie_bytes(), 32_000);
        assert_eq!(engine.npu_link_bytes(), 0);
    }

    #[test]
    fn counters_and_reset() {
        let mut engine = CopyEngine::new(InterconnectConfig::table1());
        engine.host_relayed_copy(0, 100);
        engine.numa_access(0, 100, TransferKind::NpuLink);
        engine.page_migration(0, 4096, TransferKind::Pcie);
        assert_eq!(engine.staged_copies(), 1);
        assert_eq!(engine.numa_accesses(), 1);
        assert_eq!(engine.page_migrations(), 1);
        engine.reset();
        assert_eq!(engine.staged_copies(), 0);
        assert_eq!(engine.pcie_bytes(), 0);
    }
}
