//! Memory and interconnect timing models for the NeuMMU reproduction.
//!
//! The paper models the NPU memory system with fixed latency and bandwidth
//! (Table I) instead of a cycle-level DRAM simulator, and the multi-device
//! system interconnect (PCIe, NPU↔NPU links) with bandwidth/latency pairs plus
//! a NUMA hop latency. This crate provides those models:
//!
//! * [`bandwidth`] — a serializing bandwidth server used by every shared link,
//! * [`dram`] — the NPU-local HBM model (600 GB/s, 100-cycle latency),
//! * [`interconnect`] — PCIe / NPU↔NPU links, CPU-relayed staged copies,
//!   fine-grained NUMA accesses and demand-paging transfers.
//!
//! # Example
//!
//! ```
//! use neummu_mem::dram::DramModel;
//! use neummu_mem::interconnect::InterconnectConfig;
//!
//! let dram = DramModel::tpu_like();
//! // Fetching a 4 KB page from local HBM: latency + serialization.
//! let cycles = dram.transfer_cycles(4096);
//! assert!(cycles > 100);
//!
//! let ic = InterconnectConfig::table1();
//! assert!(ic.npu_link.bandwidth_bytes_per_cycle > ic.pcie.bandwidth_bytes_per_cycle);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bandwidth;
pub mod dram;
pub mod interconnect;

pub use bandwidth::BandwidthServer;
pub use dram::{DramConfig, DramModel};
pub use interconnect::{CopyEngine, InterconnectConfig, Link, TransferKind};
