//! Property-based tests for the memory and interconnect timing models.

use proptest::prelude::*;

use neummu_mem::bandwidth::BandwidthServer;
use neummu_mem::dram::DramModel;
use neummu_mem::interconnect::{CopyEngine, InterconnectConfig, TransferKind};

proptest! {
    /// Bandwidth-server conservation: transfers never overlap, are serviced in
    /// order, and total busy time equals the sum of per-transfer durations.
    #[test]
    fn bandwidth_server_serializes(transfers in prop::collection::vec((0u64..100_000, 1u64..1_000_000), 1..100),
                                   bandwidth in 1.0f64..1000.0) {
        let mut server = BandwidthServer::new(bandwidth);
        let mut sorted = transfers.clone();
        sorted.sort_by_key(|(ready, _)| *ready);
        let mut last_end = 0u64;
        let mut busy = 0u64;
        for (ready, bytes) in sorted {
            let occ = server.schedule(ready, bytes);
            prop_assert!(occ.start >= ready);
            prop_assert!(occ.start >= last_end);
            prop_assert_eq!(occ.duration(), server.serialization_cycles(bytes));
            busy += occ.duration();
            last_end = occ.end;
        }
        prop_assert_eq!(server.busy_cycles(), busy);
        prop_assert_eq!(server.busy_until(), last_end);
    }

    /// Serialization time scales (weakly) monotonically with transfer size and
    /// inversely with bandwidth.
    #[test]
    fn serialization_monotonicity(bytes in 1u64..(1u64 << 30), extra in 1u64..(1u64 << 20)) {
        let slow = BandwidthServer::new(16.0);
        let fast = BandwidthServer::new(600.0);
        prop_assert!(slow.serialization_cycles(bytes) >= fast.serialization_cycles(bytes));
        prop_assert!(fast.serialization_cycles(bytes + extra) >= fast.serialization_cycles(bytes));
    }

    /// DRAM transfers always take at least the access latency and at least the
    /// pure-bandwidth streaming time.
    #[test]
    fn dram_transfer_lower_bounds(bytes in 0u64..(64u64 << 20)) {
        let dram = DramModel::tpu_like();
        let cycles = dram.transfer_cycles(bytes);
        prop_assert!(cycles >= dram.config().access_latency_cycles);
        prop_assert!(cycles >= dram.streaming_cycles(bytes));
    }

    /// The CPU-relayed copy path is never faster than a direct NUMA access of
    /// the same size over the same interconnect, and the fast NPU link is
    /// never slower than PCIe for the same access.
    #[test]
    fn staged_copies_never_beat_direct_numa(bytes in 1u64..(16u64 << 20)) {
        let cfg = InterconnectConfig::table1();
        let staged = CopyEngine::new(cfg).host_relayed_copy(0, bytes);
        let numa_pcie = CopyEngine::new(cfg).numa_access(0, bytes, TransferKind::Pcie);
        let numa_fast = CopyEngine::new(cfg).numa_access(0, bytes, TransferKind::NpuLink);
        prop_assert!(staged >= numa_pcie);
        prop_assert!(numa_pcie >= numa_fast);
    }

    /// Page-migration cost grows monotonically with the page size.
    #[test]
    fn migration_cost_monotone_in_page_size(small in 1u64..(64u64 << 10)) {
        let cfg = InterconnectConfig::table1();
        let small_cost = CopyEngine::new(cfg).page_migration(0, small, TransferKind::NpuLink);
        let large_cost = CopyEngine::new(cfg).page_migration(0, small * 8, TransferKind::NpuLink);
        prop_assert!(large_cost >= small_cost);
    }

    /// Byte accounting on the copy engine matches what was requested.
    #[test]
    fn copy_engine_byte_accounting(ops in prop::collection::vec((0u8..3, 1u64..(1u64 << 20)), 1..50)) {
        let mut engine = CopyEngine::new(InterconnectConfig::table1());
        let mut pcie_expected = 0u64;
        let mut link_expected = 0u64;
        for (kind, bytes) in ops {
            match kind {
                0 => {
                    engine.host_relayed_copy(0, bytes);
                    pcie_expected += 2 * bytes;
                }
                1 => {
                    engine.numa_access(0, bytes, TransferKind::Pcie);
                    pcie_expected += bytes;
                }
                _ => {
                    engine.numa_access(0, bytes, TransferKind::NpuLink);
                    link_expected += bytes;
                }
            }
        }
        prop_assert_eq!(engine.pcie_bytes(), pcie_expected);
        prop_assert_eq!(engine.npu_link_bytes(), link_expected);
    }
}
