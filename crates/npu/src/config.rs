//! NPU hardware configuration (Table I, "Processor architecture").

use serde::{Deserialize, Serialize};

use crate::error::NpuError;
use crate::systolic::ComputeModel;
use crate::tensor::DataType;

/// Configuration of the DMA engine that moves tiles between main memory and
/// the scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaConfig {
    /// Maximum size of one linearized memory transaction issued by the DMA.
    ///
    /// A multi-MB tile is decomposed into transactions of at most this size;
    /// each transaction requires one virtual-to-physical translation
    /// (Section III-C). State-of-the-art DMA engines issue KB-scale bursts.
    pub max_transaction_bytes: u64,
    /// Number of translation requests the DMA can issue per cycle.
    ///
    /// The paper's traffic characterization assumes one per cycle (the y-axis
    /// ceiling of Figure 7).
    pub translations_per_cycle: u32,
}

impl DmaConfig {
    /// Default DMA engine: 512-byte transactions, one translation per cycle.
    #[must_use]
    pub const fn default_config() -> Self {
        DmaConfig {
            max_transaction_bytes: 512,
            translations_per_cycle: 1,
        }
    }
}

impl Default for DmaConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// NPU processor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NpuConfig {
    /// Compute-array organization and timing model.
    pub compute: ComputeModel,
    /// Operating frequency of the processing elements in GHz.
    pub frequency_ghz: f64,
    /// Scratchpad capacity reserved for activations (IA/OA), in bytes.
    pub act_spm_bytes: u64,
    /// Scratchpad capacity reserved for weights, in bytes.
    pub weight_spm_bytes: u64,
    /// Whether the scratchpads are double-buffered (tile(n) compute overlapped
    /// with tile(n+1) fetch, Figure 3). When true, a tile may use at most half
    /// of each scratchpad partition.
    pub double_buffered: bool,
    /// Numeric precision of activations and weights.
    pub dtype: DataType,
    /// DMA engine configuration.
    pub dma: DmaConfig,
}

impl NpuConfig {
    /// The baseline Table I configuration: 128×128 systolic array at 1 GHz,
    /// 15 MB activation / 10 MB weight scratchpads, double buffering, 8-bit
    /// datatypes (as in the original TPU).
    #[must_use]
    pub fn tpu_like() -> Self {
        NpuConfig {
            compute: ComputeModel::systolic(128, 128),
            frequency_ghz: 1.0,
            act_spm_bytes: 15 * 1024 * 1024,
            weight_spm_bytes: 10 * 1024 * 1024,
            double_buffered: true,
            dtype: DataType::Int8,
            dma: DmaConfig::default_config(),
        }
    }

    /// A spatial-array NPU in the style of DaDianNao/Eyeriss (Section VI-B):
    /// a 16×16 grid of PEs, each with a 16-wide vector MAC unit, and the same
    /// SPM-centric memory hierarchy as the baseline.
    #[must_use]
    pub fn spatial_array() -> Self {
        NpuConfig {
            compute: ComputeModel::spatial(16 * 16, 16),
            ..Self::tpu_like()
        }
    }

    /// Scratchpad bytes available to a *single* tile of activations
    /// (half the partition when double buffering is enabled).
    #[must_use]
    pub fn act_tile_budget(&self) -> u64 {
        if self.double_buffered {
            self.act_spm_bytes / 2
        } else {
            self.act_spm_bytes
        }
    }

    /// Scratchpad bytes available to a single tile of weights.
    #[must_use]
    pub fn weight_tile_budget(&self) -> u64 {
        if self.double_buffered {
            self.weight_spm_bytes / 2
        } else {
            self.weight_spm_bytes
        }
    }

    /// Peak multiply-accumulate operations per cycle.
    #[must_use]
    pub fn peak_macs_per_cycle(&self) -> u64 {
        self.compute.macs_per_cycle()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::InvalidConfig`] if any capacity or dimension is zero.
    pub fn validate(&self) -> Result<(), NpuError> {
        if self.act_spm_bytes == 0 || self.weight_spm_bytes == 0 {
            return Err(NpuError::InvalidConfig {
                reason: "scratchpad capacity is zero".into(),
            });
        }
        if self.peak_macs_per_cycle() == 0 {
            return Err(NpuError::InvalidConfig {
                reason: "compute array has zero lanes".into(),
            });
        }
        if self.frequency_ghz <= 0.0 {
            return Err(NpuError::InvalidConfig {
                reason: "frequency must be positive".into(),
            });
        }
        if self.dma.max_transaction_bytes == 0 || self.dma.translations_per_cycle == 0 {
            return Err(NpuError::InvalidConfig {
                reason: "DMA transaction size and translation rate must be positive".into(),
            });
        }
        Ok(())
    }
}

impl Default for NpuConfig {
    fn default() -> Self {
        Self::tpu_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let cfg = NpuConfig::tpu_like();
        assert_eq!(cfg.act_spm_bytes, 15 * 1024 * 1024);
        assert_eq!(cfg.weight_spm_bytes, 10 * 1024 * 1024);
        assert_eq!(cfg.peak_macs_per_cycle(), 128 * 128);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn double_buffering_halves_tile_budget() {
        let cfg = NpuConfig::tpu_like();
        assert_eq!(cfg.weight_tile_budget(), 5 * 1024 * 1024);
        assert_eq!(cfg.act_tile_budget(), 15 * 1024 * 1024 / 2);
        let single = NpuConfig {
            double_buffered: false,
            ..cfg
        };
        assert_eq!(single.weight_tile_budget(), 10 * 1024 * 1024);
    }

    #[test]
    fn spatial_array_has_fewer_macs() {
        let spatial = NpuConfig::spatial_array();
        assert!(spatial.peak_macs_per_cycle() < NpuConfig::tpu_like().peak_macs_per_cycle());
        assert!(spatial.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = NpuConfig::tpu_like();
        cfg.act_spm_bytes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = NpuConfig::tpu_like();
        cfg.frequency_ghz = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = NpuConfig::tpu_like();
        cfg.dma.max_transaction_bytes = 0;
        assert!(cfg.validate().is_err());
    }
}
