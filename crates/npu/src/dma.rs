//! DMA transaction generation: the source of translation bursts.
//!
//! A tile fetch is a multi-MB byte window of an operand segment. Because the
//! operands are multi-dimensional tensors mapped onto a linear address space,
//! the DMA decomposes each tile into many smaller linearized memory
//! transactions, every one of which needs a virtual-to-physical translation
//! before the data can be read (Section III-C). The DMA issues these
//! translation requests back to back — up to one per cycle — which is what
//! produces the translation bursts of Figure 7 and the per-tile page
//! divergence of Figure 6.

use serde::{Deserialize, Serialize};

use crate::config::DmaConfig;
use crate::tensor::TensorKind;
use crate::tiling::TileFetch;

/// One linearized memory transaction issued by the DMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTransaction {
    /// Operand tensor the transaction reads.
    pub kind: TensorKind,
    /// Byte offset within the operand's segment.
    pub offset: u64,
    /// Transaction length in bytes.
    pub bytes: u64,
}

impl MemTransaction {
    /// One-past-the-end offset.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.offset + self.bytes
    }
}

/// Non-allocating iterator over the memory transactions of one tile fetch
/// (see [`DmaEngine::transaction_iter`]).
#[derive(Debug, Clone, Copy)]
pub struct TransactionIter {
    kind: TensorKind,
    cursor: u64,
    end: u64,
    txn_bytes: u64,
}

impl Iterator for TransactionIter {
    type Item = MemTransaction;

    #[inline]
    fn next(&mut self) -> Option<MemTransaction> {
        if self.cursor >= self.end {
            return None;
        }
        let next_boundary = (self.cursor / self.txn_bytes + 1) * self.txn_bytes;
        let chunk_end = next_boundary.min(self.end);
        let txn = MemTransaction {
            kind: self.kind,
            offset: self.cursor,
            bytes: chunk_end - self.cursor,
        };
        self.cursor = chunk_end;
        Some(txn)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.cursor >= self.end {
            0
        } else {
            let first = self.cursor / self.txn_bytes;
            let last = (self.end - 1) / self.txn_bytes;
            (last - first + 1) as usize
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for TransactionIter {}

/// A maximal group of consecutive transactions of one tile fetch whose
/// *starting* addresses fall on the same page (see [`DmaEngine::page_runs`]).
///
/// Because the DMA linearizes a tile fetch into back-to-back transactions,
/// consecutive transactions land on the same page until the stream crosses a
/// page boundary — the structural property (Section III-C) the run-coalesced
/// translation path exploits: the run needs one real TLB interaction, and the
/// remaining `txn_count - 1` requests replay arithmetically. A transaction
/// that straddles a page boundary belongs to the run of its starting address,
/// exactly like the per-transaction path, which translates each transaction
/// by its starting address only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRun {
    /// Page number (`va >> log2(page_bytes)`) of every transaction's starting
    /// address.
    pub page: u64,
    /// The run's first transaction (possibly a short head).
    pub first: MemTransaction,
    /// Number of transactions in the run.
    pub txn_count: u64,
    /// Total bytes across the run's transactions.
    pub bytes: u64,
    /// The DMA transaction grain: every interior transaction is exactly this
    /// long and aligned to it.
    txn_bytes: u64,
}

impl PageRun {
    /// One-past-the-end segment offset of the run's data.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.first.offset + self.bytes
    }

    /// Segment offset of the `index`-th transaction of the run.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `index >= txn_count`.
    #[must_use]
    pub fn offset_of(&self, index: u64) -> u64 {
        debug_assert!(index < self.txn_count);
        if index == 0 {
            self.first.offset
        } else {
            (self.first.offset / self.txn_bytes + index) * self.txn_bytes
        }
    }

    /// Segment offset of the run's last transaction.
    #[must_use]
    pub fn last_offset(&self) -> u64 {
        self.offset_of(self.txn_count - 1)
    }

    /// Length in bytes of the `index`-th transaction of the run.
    #[must_use]
    pub fn txn_len(&self, index: u64) -> u64 {
        debug_assert!(index < self.txn_count);
        let start = self.offset_of(index);
        let next = (start / self.txn_bytes + 1) * self.txn_bytes;
        next.min(self.end()) - start
    }

    /// The `index`-th transaction of the run, reconstructed arithmetically.
    #[must_use]
    pub fn txn(&self, index: u64) -> MemTransaction {
        MemTransaction {
            kind: self.first.kind,
            offset: self.offset_of(index),
            bytes: self.txn_len(index),
        }
    }

    /// Length of every interior transaction (the DMA transaction grain).
    #[must_use]
    pub fn interior_txn_bytes(&self) -> u64 {
        self.txn_bytes
    }

    /// The run's first `count` transactions as a run of their own.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `count` is zero or exceeds `txn_count`.
    #[must_use]
    pub fn prefix(&self, count: u64) -> PageRun {
        debug_assert!(count >= 1 && count <= self.txn_count);
        if count == self.txn_count {
            return *self;
        }
        // `count < txn_count`, so transaction `count` exists and starts at an
        // aligned boundary: the prefix ends exactly where it begins.
        PageRun {
            txn_count: count,
            bytes: self.offset_of(count) - self.first.offset,
            ..*self
        }
    }

    /// The run with its first `skip` transactions removed (the remainder a
    /// caller resumes after a partially consumed run).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `skip` is zero or not smaller than
    /// `txn_count`.
    #[must_use]
    pub fn suffix(&self, skip: u64) -> PageRun {
        debug_assert!(skip >= 1 && skip < self.txn_count);
        let first = self.txn(skip);
        PageRun {
            first,
            txn_count: self.txn_count - skip,
            bytes: self.end() - first.offset,
            ..*self
        }
    }

    /// Rejoins this run with `tail`, the piece that immediately follows it —
    /// the inverse of splitting one run with [`PageRun::prefix`] /
    /// [`PageRun::suffix`] at the same point. Callers that clip a run and
    /// then consume the clipped prefix only partially use this to reassemble
    /// the two contiguous remainders into one run.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) unless `tail` starts exactly where this run
    /// ends, on the same page and transaction grain.
    #[must_use]
    pub fn join(&self, tail: &PageRun) -> PageRun {
        debug_assert_eq!(self.page, tail.page, "joined pieces share a page");
        debug_assert_eq!(
            self.txn_bytes, tail.txn_bytes,
            "joined pieces share a grain"
        );
        debug_assert_eq!(
            self.end(),
            tail.first.offset,
            "joined pieces are contiguous"
        );
        PageRun {
            txn_count: self.txn_count + tail.txn_count,
            bytes: self.bytes + tail.bytes,
            ..*self
        }
    }
}

/// Iterator over the [`PageRun`]s of a tile fetch: the exact partition of
/// [`DmaEngine::transaction_iter`] into maximal same-page groups, produced in
/// O(1) arithmetic per run instead of per transaction.
#[derive(Debug, Clone, Copy)]
pub struct PageRunIter {
    kind: TensorKind,
    cursor: u64,
    end: u64,
    txn_bytes: u64,
    base_va: u64,
    page_shift: u32,
}

impl Iterator for PageRunIter {
    type Item = PageRun;

    #[inline]
    fn next(&mut self) -> Option<PageRun> {
        if self.cursor >= self.end {
            return None;
        }
        let va = self.base_va + self.cursor;
        let page = va >> self.page_shift;
        // First segment offset whose VA lies on the next page; transactions
        // *starting* before it belong to this run.
        let page_end_off = ((page + 1) << self.page_shift) - self.base_va;
        let limit = page_end_off.min(self.end);
        let first_index = self.cursor / self.txn_bytes;
        let txn_count = (limit - 1) / self.txn_bytes - first_index + 1;
        let run_end = ((first_index + txn_count) * self.txn_bytes).min(self.end);
        let first = MemTransaction {
            kind: self.kind,
            offset: self.cursor,
            bytes: ((first_index + 1) * self.txn_bytes).min(self.end) - self.cursor,
        };
        let run = PageRun {
            page,
            first,
            txn_count,
            bytes: run_end - self.cursor,
            txn_bytes: self.txn_bytes,
        };
        self.cursor = run_end;
        Some(run)
    }
}

/// Summary of the translation demand created by one tile fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileTranslationDemand {
    /// Number of memory transactions (== translation requests).
    pub transactions: u64,
    /// Number of distinct 4 KB pages touched.
    pub distinct_pages_4k: u64,
    /// Number of distinct 2 MB pages touched.
    pub distinct_pages_2m: u64,
}

/// The DMA engine: decomposes tile fetches into memory transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaEngine {
    config: DmaConfig,
}

impl DmaEngine {
    /// Creates a DMA engine with the given configuration.
    #[must_use]
    pub fn new(config: DmaConfig) -> Self {
        DmaEngine { config }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> DmaConfig {
        self.config
    }

    /// Streams the linearized memory transactions of a tile fetch without
    /// materializing them.
    ///
    /// Transactions are aligned to the transaction size within the segment so
    /// that a transaction never straddles more pages than necessary; the first
    /// and last transactions may be short. This is the simulators' hot path:
    /// a multi-MB tile decomposes into thousands of transactions, and the
    /// iterator produces them one `Copy` value at a time instead of one
    /// `Vec<MemTransaction>` per fetch.
    #[must_use]
    pub fn transaction_iter(&self, fetch: &TileFetch) -> TransactionIter {
        TransactionIter {
            kind: fetch.kind,
            cursor: fetch.offset,
            end: fetch.end(),
            txn_bytes: self.config.max_transaction_bytes,
        }
    }

    /// Streams the maximal same-page transaction runs of a tile fetch: the
    /// exact partition of [`DmaEngine::transaction_iter`] into groups of
    /// consecutive transactions whose starting virtual addresses
    /// (`base_va + offset`) share one `page_bytes`-sized page.
    ///
    /// This is the entry point of the run-coalesced translation path: each
    /// run costs O(1) to produce and needs one real translation; the
    /// remaining `txn_count - 1` requests of the run replay arithmetically.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `page_bytes` is not a power of two.
    #[must_use]
    pub fn page_runs(&self, fetch: &TileFetch, base_va: u64, page_bytes: u64) -> PageRunIter {
        debug_assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two, got {page_bytes}"
        );
        PageRunIter {
            kind: fetch.kind,
            cursor: fetch.offset,
            end: fetch.end(),
            txn_bytes: self.config.max_transaction_bytes,
            base_va,
            page_shift: page_bytes.trailing_zeros(),
        }
    }

    /// Decomposes a tile fetch into linearized memory transactions,
    /// materialized as a `Vec` (convenience form of
    /// [`DmaEngine::transaction_iter`] for tests and inspection).
    #[must_use]
    pub fn transactions(&self, fetch: &TileFetch) -> Vec<MemTransaction> {
        self.transaction_iter(fetch).collect()
    }

    /// Number of transactions a fetch decomposes into, without materializing
    /// them.
    #[must_use]
    pub fn transaction_count(&self, fetch: &TileFetch) -> u64 {
        if fetch.bytes == 0 {
            return 0;
        }
        let txn = self.config.max_transaction_bytes;
        let first = fetch.offset / txn;
        let last = (fetch.end() - 1) / txn;
        last - first + 1
    }

    /// Translation demand (transactions and distinct pages) of a tile fetch.
    #[must_use]
    pub fn translation_demand(&self, fetch: &TileFetch) -> TileTranslationDemand {
        let pages_4k = Self::distinct_pages(fetch, 12);
        let pages_2m = Self::distinct_pages(fetch, 21);
        TileTranslationDemand {
            transactions: self.transaction_count(fetch),
            distinct_pages_4k: pages_4k,
            distinct_pages_2m: pages_2m,
        }
    }

    fn distinct_pages(fetch: &TileFetch, shift: u32) -> u64 {
        if fetch.bytes == 0 {
            return 0;
        }
        let first = fetch.offset >> shift;
        let last = (fetch.end() - 1) >> shift;
        last - first + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(DmaConfig {
            max_transaction_bytes: 512,
            translations_per_cycle: 1,
        })
    }

    fn fetch(offset: u64, bytes: u64) -> TileFetch {
        TileFetch {
            kind: TensorKind::Weight,
            offset,
            bytes,
        }
    }

    #[test]
    fn aligned_fetch_decomposes_into_equal_transactions() {
        let txns = engine().transactions(&fetch(0, 4096));
        assert_eq!(txns.len(), 8);
        assert!(txns.iter().all(|t| t.bytes == 512));
        assert_eq!(txns[0].offset, 0);
        assert_eq!(txns[7].end(), 4096);
    }

    #[test]
    fn unaligned_fetch_has_short_head_and_tail() {
        let txns = engine().transactions(&fetch(100, 1024));
        let total: u64 = txns.iter().map(|t| t.bytes).sum();
        assert_eq!(total, 1024);
        assert_eq!(txns.first().unwrap().offset, 100);
        assert_eq!(txns.first().unwrap().bytes, 412);
        assert_eq!(txns.last().unwrap().end(), 1124);
        // Interior transactions are aligned to the transaction size.
        for t in &txns[1..] {
            assert_eq!(t.offset % 512, 0);
        }
    }

    #[test]
    fn transaction_count_matches_materialized_list() {
        for (off, len) in [
            (0u64, 512u64),
            (1, 1),
            (511, 2),
            (1000, 100_000),
            (4096, 5 << 20),
        ] {
            let f = fetch(off, len);
            assert_eq!(
                engine().transaction_count(&f),
                engine().transactions(&f).len() as u64,
                "mismatch for offset {off} len {len}"
            );
        }
        assert_eq!(engine().transaction_count(&fetch(0, 0)), 0);
    }

    #[test]
    fn a_5mb_tile_produces_kilo_scale_translation_bursts() {
        // The headline numbers from Section III-C: a 5 MB tile covers ~1.2K
        // distinct 4 KB pages and decomposes into several thousand
        // transactions, each needing a translation.
        let demand = engine().translation_demand(&fetch(0, 5 << 20));
        assert_eq!(demand.distinct_pages_4k, 1280);
        assert_eq!(demand.transactions, 10240);
        assert!(demand.transactions > demand.distinct_pages_4k);
        assert_eq!(demand.distinct_pages_2m, 3);
    }

    #[test]
    fn page_counts_account_for_straddling() {
        let demand = engine().translation_demand(&fetch(4000, 200));
        assert_eq!(demand.distinct_pages_4k, 2);
        let demand = engine().translation_demand(&fetch(4000, 50));
        assert_eq!(demand.distinct_pages_4k, 1);
    }

    #[test]
    fn transaction_iter_matches_materialized_list_and_knows_its_length() {
        for (off, len) in [
            (0u64, 0u64),
            (0, 512),
            (1, 1),
            (100, 1024),
            (511, 2),
            (1000, 100_000),
            (4096, 5 << 20),
        ] {
            let f = fetch(off, len);
            let iter = engine().transaction_iter(&f);
            assert_eq!(iter.len() as u64, engine().transaction_count(&f));
            let streamed: Vec<MemTransaction> = iter.collect();
            assert_eq!(streamed, engine().transactions(&f));
        }
    }

    /// Replays a run iterator transaction by transaction and checks it
    /// against the reference per-transaction decomposition.
    fn assert_runs_partition(fetch: &TileFetch, base_va: u64, page_bytes: u64) {
        let eng = engine();
        let reference = eng.transactions(fetch);
        let mut rebuilt = Vec::new();
        let mut prev_page = None;
        for run in eng.page_runs(fetch, base_va, page_bytes) {
            assert!(run.txn_count >= 1);
            assert_eq!(run.bytes, (0..run.txn_count).map(|i| run.txn_len(i)).sum());
            assert_eq!(run.first, run.txn(0));
            assert_eq!(run.last_offset(), run.txn(run.txn_count - 1).offset);
            // Every transaction's starting VA lies on the run's page; maximal
            // runs never repeat the previous run's page.
            for i in 0..run.txn_count {
                assert_eq!((base_va + run.offset_of(i)) / page_bytes, run.page);
                rebuilt.push(run.txn(i));
            }
            assert_ne!(prev_page, Some(run.page), "runs must be maximal");
            prev_page = Some(run.page);
        }
        assert_eq!(rebuilt, reference, "runs must partition the transactions");
    }

    #[test]
    fn page_runs_partition_the_transaction_stream() {
        for (off, len) in [
            (0u64, 0u64),
            (0, 512),
            (1, 1),
            (100, 1024),
            (4000, 200),
            (1000, 100_000),
            (4096, 5 << 20),
        ] {
            assert_runs_partition(&fetch(off, len), 0x10_0000, 4096);
            assert_runs_partition(&fetch(off, len), 0x10_0000, 2 << 20);
        }
    }

    #[test]
    fn page_runs_group_eight_transactions_per_4k_page() {
        // The canonical burst shape: 512-byte transactions, 4 KB pages.
        let runs: Vec<PageRun> = engine().page_runs(&fetch(0, 16384), 0, 4096).collect();
        assert_eq!(runs.len(), 4);
        assert!(runs.iter().all(|r| r.txn_count == 8 && r.bytes == 4096));
        assert_eq!(runs[0].page, 0);
        assert_eq!(runs[3].page, 3);
    }

    #[test]
    fn straddling_transactions_belong_to_their_starting_page() {
        // Transactions of 3000 bytes with 4 KB pages: most transactions
        // straddle a page boundary; each belongs to its starting page and the
        // runs still partition the stream.
        let eng = DmaEngine::new(DmaConfig {
            max_transaction_bytes: 3000,
            translations_per_cycle: 1,
        });
        let f = fetch(500, 30_000);
        let reference = eng.transactions(&f);
        let rebuilt: Vec<MemTransaction> = eng
            .page_runs(&f, 0, 4096)
            .flat_map(|run| (0..run.txn_count).map(move |i| run.txn(i)))
            .collect();
        assert_eq!(rebuilt, reference);
    }

    #[test]
    fn prefix_and_suffix_split_a_run_exactly() {
        let run = engine()
            .page_runs(&fetch(100, 4096), 0, 4096)
            .next()
            .unwrap();
        assert!(run.txn_count > 2);
        for split in 1..run.txn_count {
            let prefix = run.prefix(split);
            let suffix = run.suffix(split);
            assert_eq!(prefix.txn_count + suffix.txn_count, run.txn_count);
            assert_eq!(prefix.bytes + suffix.bytes, run.bytes);
            assert_eq!(suffix.first, run.txn(split));
            assert_eq!(suffix.end(), run.end());
            for i in 0..prefix.txn_count {
                assert_eq!(prefix.txn(i), run.txn(i));
            }
            for i in 0..suffix.txn_count {
                assert_eq!(suffix.txn(i), run.txn(split + i));
            }
        }
        assert_eq!(run.prefix(run.txn_count), run);
    }

    #[test]
    fn transactions_preserve_tensor_kind() {
        let f = TileFetch {
            kind: TensorKind::InputActivation,
            offset: 0,
            bytes: 2048,
        };
        assert!(engine()
            .transactions(&f)
            .iter()
            .all(|t| t.kind == TensorKind::InputActivation));
    }
}
