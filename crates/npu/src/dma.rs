//! DMA transaction generation: the source of translation bursts.
//!
//! A tile fetch is a multi-MB byte window of an operand segment. Because the
//! operands are multi-dimensional tensors mapped onto a linear address space,
//! the DMA decomposes each tile into many smaller linearized memory
//! transactions, every one of which needs a virtual-to-physical translation
//! before the data can be read (Section III-C). The DMA issues these
//! translation requests back to back — up to one per cycle — which is what
//! produces the translation bursts of Figure 7 and the per-tile page
//! divergence of Figure 6.

use serde::{Deserialize, Serialize};

use crate::config::DmaConfig;
use crate::tensor::TensorKind;
use crate::tiling::TileFetch;

/// One linearized memory transaction issued by the DMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTransaction {
    /// Operand tensor the transaction reads.
    pub kind: TensorKind,
    /// Byte offset within the operand's segment.
    pub offset: u64,
    /// Transaction length in bytes.
    pub bytes: u64,
}

impl MemTransaction {
    /// One-past-the-end offset.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.offset + self.bytes
    }
}

/// Non-allocating iterator over the memory transactions of one tile fetch
/// (see [`DmaEngine::transaction_iter`]).
#[derive(Debug, Clone, Copy)]
pub struct TransactionIter {
    kind: TensorKind,
    cursor: u64,
    end: u64,
    txn_bytes: u64,
}

impl Iterator for TransactionIter {
    type Item = MemTransaction;

    #[inline]
    fn next(&mut self) -> Option<MemTransaction> {
        if self.cursor >= self.end {
            return None;
        }
        let next_boundary = (self.cursor / self.txn_bytes + 1) * self.txn_bytes;
        let chunk_end = next_boundary.min(self.end);
        let txn = MemTransaction {
            kind: self.kind,
            offset: self.cursor,
            bytes: chunk_end - self.cursor,
        };
        self.cursor = chunk_end;
        Some(txn)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.cursor >= self.end {
            0
        } else {
            let first = self.cursor / self.txn_bytes;
            let last = (self.end - 1) / self.txn_bytes;
            (last - first + 1) as usize
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for TransactionIter {}

/// Summary of the translation demand created by one tile fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileTranslationDemand {
    /// Number of memory transactions (== translation requests).
    pub transactions: u64,
    /// Number of distinct 4 KB pages touched.
    pub distinct_pages_4k: u64,
    /// Number of distinct 2 MB pages touched.
    pub distinct_pages_2m: u64,
}

/// The DMA engine: decomposes tile fetches into memory transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaEngine {
    config: DmaConfig,
}

impl DmaEngine {
    /// Creates a DMA engine with the given configuration.
    #[must_use]
    pub fn new(config: DmaConfig) -> Self {
        DmaEngine { config }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> DmaConfig {
        self.config
    }

    /// Streams the linearized memory transactions of a tile fetch without
    /// materializing them.
    ///
    /// Transactions are aligned to the transaction size within the segment so
    /// that a transaction never straddles more pages than necessary; the first
    /// and last transactions may be short. This is the simulators' hot path:
    /// a multi-MB tile decomposes into thousands of transactions, and the
    /// iterator produces them one `Copy` value at a time instead of one
    /// `Vec<MemTransaction>` per fetch.
    #[must_use]
    pub fn transaction_iter(&self, fetch: &TileFetch) -> TransactionIter {
        TransactionIter {
            kind: fetch.kind,
            cursor: fetch.offset,
            end: fetch.end(),
            txn_bytes: self.config.max_transaction_bytes,
        }
    }

    /// Decomposes a tile fetch into linearized memory transactions,
    /// materialized as a `Vec` (convenience form of
    /// [`DmaEngine::transaction_iter`] for tests and inspection).
    #[must_use]
    pub fn transactions(&self, fetch: &TileFetch) -> Vec<MemTransaction> {
        self.transaction_iter(fetch).collect()
    }

    /// Number of transactions a fetch decomposes into, without materializing
    /// them.
    #[must_use]
    pub fn transaction_count(&self, fetch: &TileFetch) -> u64 {
        if fetch.bytes == 0 {
            return 0;
        }
        let txn = self.config.max_transaction_bytes;
        let first = fetch.offset / txn;
        let last = (fetch.end() - 1) / txn;
        last - first + 1
    }

    /// Translation demand (transactions and distinct pages) of a tile fetch.
    #[must_use]
    pub fn translation_demand(&self, fetch: &TileFetch) -> TileTranslationDemand {
        let pages_4k = Self::distinct_pages(fetch, 12);
        let pages_2m = Self::distinct_pages(fetch, 21);
        TileTranslationDemand {
            transactions: self.transaction_count(fetch),
            distinct_pages_4k: pages_4k,
            distinct_pages_2m: pages_2m,
        }
    }

    fn distinct_pages(fetch: &TileFetch, shift: u32) -> u64 {
        if fetch.bytes == 0 {
            return 0;
        }
        let first = fetch.offset >> shift;
        let last = (fetch.end() - 1) >> shift;
        last - first + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(DmaConfig {
            max_transaction_bytes: 512,
            translations_per_cycle: 1,
        })
    }

    fn fetch(offset: u64, bytes: u64) -> TileFetch {
        TileFetch {
            kind: TensorKind::Weight,
            offset,
            bytes,
        }
    }

    #[test]
    fn aligned_fetch_decomposes_into_equal_transactions() {
        let txns = engine().transactions(&fetch(0, 4096));
        assert_eq!(txns.len(), 8);
        assert!(txns.iter().all(|t| t.bytes == 512));
        assert_eq!(txns[0].offset, 0);
        assert_eq!(txns[7].end(), 4096);
    }

    #[test]
    fn unaligned_fetch_has_short_head_and_tail() {
        let txns = engine().transactions(&fetch(100, 1024));
        let total: u64 = txns.iter().map(|t| t.bytes).sum();
        assert_eq!(total, 1024);
        assert_eq!(txns.first().unwrap().offset, 100);
        assert_eq!(txns.first().unwrap().bytes, 412);
        assert_eq!(txns.last().unwrap().end(), 1124);
        // Interior transactions are aligned to the transaction size.
        for t in &txns[1..] {
            assert_eq!(t.offset % 512, 0);
        }
    }

    #[test]
    fn transaction_count_matches_materialized_list() {
        for (off, len) in [
            (0u64, 512u64),
            (1, 1),
            (511, 2),
            (1000, 100_000),
            (4096, 5 << 20),
        ] {
            let f = fetch(off, len);
            assert_eq!(
                engine().transaction_count(&f),
                engine().transactions(&f).len() as u64,
                "mismatch for offset {off} len {len}"
            );
        }
        assert_eq!(engine().transaction_count(&fetch(0, 0)), 0);
    }

    #[test]
    fn a_5mb_tile_produces_kilo_scale_translation_bursts() {
        // The headline numbers from Section III-C: a 5 MB tile covers ~1.2K
        // distinct 4 KB pages and decomposes into several thousand
        // transactions, each needing a translation.
        let demand = engine().translation_demand(&fetch(0, 5 << 20));
        assert_eq!(demand.distinct_pages_4k, 1280);
        assert_eq!(demand.transactions, 10240);
        assert!(demand.transactions > demand.distinct_pages_4k);
        assert_eq!(demand.distinct_pages_2m, 3);
    }

    #[test]
    fn page_counts_account_for_straddling() {
        let demand = engine().translation_demand(&fetch(4000, 200));
        assert_eq!(demand.distinct_pages_4k, 2);
        let demand = engine().translation_demand(&fetch(4000, 50));
        assert_eq!(demand.distinct_pages_4k, 1);
    }

    #[test]
    fn transaction_iter_matches_materialized_list_and_knows_its_length() {
        for (off, len) in [
            (0u64, 0u64),
            (0, 512),
            (1, 1),
            (100, 1024),
            (511, 2),
            (1000, 100_000),
            (4096, 5 << 20),
        ] {
            let f = fetch(off, len);
            let iter = engine().transaction_iter(&f);
            assert_eq!(iter.len() as u64, engine().transaction_count(&f));
            let streamed: Vec<MemTransaction> = iter.collect();
            assert_eq!(streamed, engine().transactions(&f));
        }
    }

    #[test]
    fn transactions_preserve_tensor_kind() {
        let f = TileFetch {
            kind: TensorKind::InputActivation,
            offset: 0,
            bytes: 2048,
        };
        assert!(engine()
            .transactions(&f)
            .iter()
            .all(|t| t.kind == TensorKind::InputActivation));
    }
}
