//! Error types for the NPU architecture model.

use std::error::Error;
use std::fmt;

/// Errors produced while building NPU execution plans.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NpuError {
    /// A layer has an invalid (zero) dimension.
    InvalidLayer {
        /// Name of the offending layer.
        layer: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A tile does not fit in the scratchpad even at minimum tile dimensions.
    TileTooLarge {
        /// Name of the offending layer.
        layer: String,
        /// Bytes required by the minimum tile.
        required_bytes: u64,
        /// Bytes available in the scratchpad partition.
        available_bytes: u64,
    },
    /// The NPU configuration is inconsistent (for example a zero-sized
    /// scratchpad or a zero-dimension systolic array).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for NpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NpuError::InvalidLayer { layer, reason } => {
                write!(f, "layer `{layer}` is invalid: {reason}")
            }
            NpuError::TileTooLarge { layer, required_bytes, available_bytes } => write!(
                f,
                "layer `{layer}` needs a {required_bytes}-byte tile but only {available_bytes} bytes of scratchpad are available"
            ),
            NpuError::InvalidConfig { reason } => {
                write!(f, "invalid NPU configuration: {reason}")
            }
        }
    }
}

impl Error for NpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let errs = [
            NpuError::InvalidLayer {
                layer: "conv1".into(),
                reason: "zero channels".into(),
            },
            NpuError::TileTooLarge {
                layer: "fc6".into(),
                required_bytes: 1 << 30,
                available_bytes: 1 << 20,
            },
            NpuError::InvalidConfig {
                reason: "zero scratchpad".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<NpuError>();
    }
}
