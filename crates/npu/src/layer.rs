//! Dense layer descriptors and their GEMM lowering.
//!
//! The baseline NPU executes convolutions and matrix multiplications on its
//! systolic array; every dense layer is lowered to a GEMM
//! `C[M×N] = A[M×K] · B[K×N]` where `A` holds (im2col-expanded) activations
//! and `B` holds the weights. The lowering determines compute cycles and the
//! byte footprints of the IA/W/OA tensors, which in turn determine tile sizes
//! and DMA translation traffic.

use serde::{Deserialize, Serialize};

use crate::error::NpuError;
use crate::tensor::{DataType, TensorShape};

/// GEMM dimensions after lowering a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmDims {
    /// Number of output rows (batch × output spatial positions).
    pub m: u64,
    /// Reduction (inner-product) dimension.
    pub k: u64,
    /// Number of output columns (output channels / features).
    pub n: u64,
}

impl GemmDims {
    /// Total multiply-accumulate operations of the GEMM.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }
}

/// The operator computed by a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerOp {
    /// 2-D convolution over NCHW activations with KCRS weights.
    Conv2d {
        /// Batch size.
        batch: u64,
        /// Input channels.
        in_channels: u64,
        /// Input height.
        height: u64,
        /// Input width.
        width: u64,
        /// Output channels (number of filters).
        out_channels: u64,
        /// Filter height.
        kernel_h: u64,
        /// Filter width.
        kernel_w: u64,
        /// Stride (same in both dimensions).
        stride: u64,
        /// Padding (same on all sides).
        padding: u64,
    },
    /// Fully-connected layer: batch of GEMV operations.
    FullyConnected {
        /// Batch size.
        batch: u64,
        /// Input features.
        in_features: u64,
        /// Output features.
        out_features: u64,
    },
    /// Plain recurrent cell (DeepBench "vanilla RNN"): one GEMV over the
    /// concatenated input+hidden vector per time step.
    RnnCell {
        /// Batch size.
        batch: u64,
        /// Hidden state width.
        hidden: u64,
        /// Input width.
        input: u64,
        /// Number of time steps executed with these weights.
        time_steps: u64,
    },
    /// LSTM cell: four gate GEMMs over the concatenated input+hidden vector
    /// per time step.
    LstmCell {
        /// Batch size.
        batch: u64,
        /// Hidden state width.
        hidden: u64,
        /// Input width.
        input: u64,
        /// Number of time steps executed with these weights.
        time_steps: u64,
    },
}

/// A named dense layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    op: LayerOp,
    dtype: DataType,
}

impl Layer {
    /// Creates a layer with an explicit data type.
    #[must_use]
    pub fn new(name: impl Into<String>, op: LayerOp, dtype: DataType) -> Self {
        Layer {
            name: name.into(),
            op,
            dtype,
        }
    }

    /// Convenience constructor for a convolution layer (bf16 precision).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn conv2d(
        name: impl Into<String>,
        batch: u64,
        in_channels: u64,
        height: u64,
        width: u64,
        out_channels: u64,
        kernel_h: u64,
        kernel_w: u64,
        stride: u64,
        padding: u64,
    ) -> Self {
        Layer::new(
            name,
            LayerOp::Conv2d {
                batch,
                in_channels,
                height,
                width,
                out_channels,
                kernel_h,
                kernel_w,
                stride,
                padding,
            },
            DataType::Bf16,
        )
    }

    /// Convenience constructor for a fully-connected layer (bf16 precision).
    #[must_use]
    pub fn fully_connected(
        name: impl Into<String>,
        batch: u64,
        in_features: u64,
        out_features: u64,
    ) -> Self {
        Layer::new(
            name,
            LayerOp::FullyConnected {
                batch,
                in_features,
                out_features,
            },
            DataType::Bf16,
        )
    }

    /// Convenience constructor for a vanilla RNN cell (bf16 precision, as in
    /// DeepBench training/inference kernels).
    #[must_use]
    pub fn rnn_cell(
        name: impl Into<String>,
        batch: u64,
        hidden: u64,
        input: u64,
        time_steps: u64,
    ) -> Self {
        Layer::new(
            name,
            LayerOp::RnnCell {
                batch,
                hidden,
                input,
                time_steps,
            },
            DataType::Bf16,
        )
    }

    /// Convenience constructor for an LSTM cell (bf16 precision).
    #[must_use]
    pub fn lstm_cell(
        name: impl Into<String>,
        batch: u64,
        hidden: u64,
        input: u64,
        time_steps: u64,
    ) -> Self {
        Layer::new(
            name,
            LayerOp::LstmCell {
                batch,
                hidden,
                input,
                time_steps,
            },
            DataType::Bf16,
        )
    }

    /// Layer name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator.
    #[must_use]
    pub fn op(&self) -> LayerOp {
        self.op
    }

    /// Element precision.
    #[must_use]
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Returns a copy of the layer with a different batch size.
    #[must_use]
    pub fn with_batch(&self, new_batch: u64) -> Layer {
        let op = match self.op {
            LayerOp::Conv2d {
                in_channels,
                height,
                width,
                out_channels,
                kernel_h,
                kernel_w,
                stride,
                padding,
                ..
            } => LayerOp::Conv2d {
                batch: new_batch,
                in_channels,
                height,
                width,
                out_channels,
                kernel_h,
                kernel_w,
                stride,
                padding,
            },
            LayerOp::FullyConnected {
                in_features,
                out_features,
                ..
            } => LayerOp::FullyConnected {
                batch: new_batch,
                in_features,
                out_features,
            },
            LayerOp::RnnCell {
                hidden,
                input,
                time_steps,
                ..
            } => LayerOp::RnnCell {
                batch: new_batch,
                hidden,
                input,
                time_steps,
            },
            LayerOp::LstmCell {
                hidden,
                input,
                time_steps,
                ..
            } => LayerOp::LstmCell {
                batch: new_batch,
                hidden,
                input,
                time_steps,
            },
        };
        Layer {
            name: self.name.clone(),
            op,
            dtype: self.dtype,
        }
    }

    /// Batch size of the layer.
    #[must_use]
    pub fn batch(&self) -> u64 {
        match self.op {
            LayerOp::Conv2d { batch, .. }
            | LayerOp::FullyConnected { batch, .. }
            | LayerOp::RnnCell { batch, .. }
            | LayerOp::LstmCell { batch, .. } => batch,
        }
    }

    /// Output spatial size of a convolution (height, width).
    fn conv_output_hw(&self) -> Option<(u64, u64)> {
        if let LayerOp::Conv2d {
            height,
            width,
            kernel_h,
            kernel_w,
            stride,
            padding,
            ..
        } = self.op
        {
            if stride == 0 {
                return Some((0, 0));
            }
            let padded_h = height + 2 * padding;
            let padded_w = width + 2 * padding;
            if kernel_h > padded_h || kernel_w > padded_w {
                return Some((0, 0));
            }
            let oh = (padded_h - kernel_h) / stride + 1;
            let ow = (padded_w - kernel_w) / stride + 1;
            Some((oh, ow))
        } else {
            None
        }
    }

    /// GEMM dimensions of one execution step of the layer.
    ///
    /// Recurrent cells execute one such GEMM per time step with the *same*
    /// weights (see [`Layer::repeats`]); convolutions and fully-connected
    /// layers execute exactly one.
    #[must_use]
    pub fn gemm(&self) -> GemmDims {
        match self.op {
            LayerOp::Conv2d {
                batch,
                in_channels,
                out_channels,
                kernel_h,
                kernel_w,
                ..
            } => {
                let (oh, ow) = self.conv_output_hw().expect("conv layer has output dims");
                GemmDims {
                    m: batch * oh * ow,
                    k: in_channels * kernel_h * kernel_w,
                    n: out_channels,
                }
            }
            LayerOp::FullyConnected {
                batch,
                in_features,
                out_features,
            } => GemmDims {
                m: batch,
                k: in_features,
                n: out_features,
            },
            LayerOp::RnnCell {
                batch,
                hidden,
                input,
                ..
            } => GemmDims {
                m: batch,
                k: hidden + input,
                n: hidden,
            },
            LayerOp::LstmCell {
                batch,
                hidden,
                input,
                ..
            } => GemmDims {
                m: batch,
                k: hidden + input,
                n: 4 * hidden,
            },
        }
    }

    /// How many times the per-step GEMM of [`Layer::gemm`] is executed.
    ///
    /// Recurrent cells run once per time step, re-streaming their weights from
    /// main memory each step whenever the weight matrix exceeds the scratchpad
    /// (which is what makes small-batch RNN inference memory-bound).
    #[must_use]
    pub fn repeats(&self) -> u64 {
        match self.op {
            LayerOp::RnnCell { time_steps, .. } | LayerOp::LstmCell { time_steps, .. } => {
                time_steps.max(1)
            }
            _ => 1,
        }
    }

    /// Shape of the input-activation tensor resident in main memory.
    ///
    /// For matrix-multiplication lowering the activation operand is stored in
    /// its im2col-lowered layout (`M × K`), which is what the DMA streams into
    /// the scratchpad tile by tile.
    #[must_use]
    pub fn ia_shape(&self) -> TensorShape {
        let gemm = self.gemm();
        TensorShape::new(&[gemm.m, gemm.k], self.dtype)
    }

    /// Shape of the raw (pre-im2col) input tensor, used for reporting model
    /// memory footprints.
    #[must_use]
    pub fn raw_input_shape(&self) -> TensorShape {
        match self.op {
            LayerOp::Conv2d {
                batch,
                in_channels,
                height,
                width,
                ..
            } => TensorShape::new(&[batch, in_channels, height, width], self.dtype),
            LayerOp::FullyConnected {
                batch, in_features, ..
            } => TensorShape::new(&[batch, in_features], self.dtype),
            LayerOp::RnnCell {
                batch,
                hidden,
                input,
                time_steps,
            }
            | LayerOp::LstmCell {
                batch,
                hidden,
                input,
                time_steps,
            } => TensorShape::new(&[time_steps, batch, hidden + input], self.dtype),
        }
    }

    /// Shape of the weight tensor resident in main memory.
    #[must_use]
    pub fn w_shape(&self) -> TensorShape {
        let gemm = self.gemm();
        TensorShape::new(&[gemm.k, gemm.n], self.dtype)
    }

    /// Shape of the output-activation tensor written back to main memory.
    #[must_use]
    pub fn oa_shape(&self) -> TensorShape {
        match self.op {
            LayerOp::Conv2d {
                batch,
                out_channels,
                ..
            } => {
                let (oh, ow) = self.conv_output_hw().expect("conv layer has output dims");
                TensorShape::new(&[batch, out_channels, oh, ow], self.dtype)
            }
            _ => {
                let gemm = self.gemm();
                TensorShape::new(&[gemm.m, gemm.n], self.dtype)
            }
        }
    }

    /// Validates the layer dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::InvalidLayer`] if any dimension is zero or a
    /// convolution kernel does not fit in its padded input.
    pub fn validate(&self) -> Result<(), NpuError> {
        let fail = |reason: &str| {
            Err(NpuError::InvalidLayer {
                layer: self.name.clone(),
                reason: reason.into(),
            })
        };
        let gemm = self.gemm();
        if gemm.m == 0 || gemm.k == 0 || gemm.n == 0 {
            return fail("lowered GEMM has a zero dimension");
        }
        if let LayerOp::Conv2d {
            height,
            width,
            kernel_h,
            kernel_w,
            stride,
            padding,
            ..
        } = self.op
        {
            if stride == 0 {
                return fail("stride must be positive");
            }
            if kernel_h > height + 2 * padding || kernel_w > width + 2 * padding {
                return fail("kernel larger than padded input");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv1_lowering() {
        // AlexNet conv1: 3x224x224 input, 64 filters of 11x11, stride 4, pad 2.
        let layer = Layer::conv2d("conv1", 1, 3, 224, 224, 64, 11, 11, 4, 2);
        let gemm = layer.gemm();
        assert_eq!(gemm.m, 55 * 55);
        assert_eq!(gemm.k, 3 * 11 * 11);
        assert_eq!(gemm.n, 64);
        // IA is stored in its im2col-lowered (M x K) layout at bf16.
        assert_eq!(layer.ia_shape().bytes(), 55 * 55 * 363 * 2);
        assert_eq!(layer.raw_input_shape().bytes(), 3 * 224 * 224 * 2);
        assert_eq!(layer.w_shape().bytes(), 3 * 11 * 11 * 64 * 2);
        assert_eq!(layer.oa_shape().bytes(), 64 * 55 * 55 * 2);
        assert!(layer.validate().is_ok());
    }

    #[test]
    fn fully_connected_lowering() {
        let layer = Layer::fully_connected("fc6", 4, 9216, 4096);
        let gemm = layer.gemm();
        assert_eq!(
            gemm,
            GemmDims {
                m: 4,
                k: 9216,
                n: 4096
            }
        );
        assert_eq!(gemm.macs(), 4 * 9216 * 4096);
        assert_eq!(layer.w_shape().bytes(), 9216 * 4096 * 2);
    }

    #[test]
    fn lstm_cell_has_four_gates() {
        let lstm = Layer::lstm_cell("lstm", 2, 1760, 1760, 50);
        let gemm = lstm.gemm();
        assert_eq!(gemm.n, 4 * 1760);
        assert_eq!(gemm.k, 2 * 1760);
        assert_eq!(gemm.m, 2);
        assert_eq!(lstm.repeats(), 50);
        // Weights are (input+hidden) x 4*hidden at bf16.
        assert_eq!(lstm.w_shape().bytes(), 2 * 1760 * 4 * 1760 * 2);
    }

    #[test]
    fn rnn_cell_lowering() {
        let rnn = Layer::rnn_cell("rnn", 1, 2560, 2560, 100);
        let gemm = rnn.gemm();
        assert_eq!(gemm.n, 2560);
        assert_eq!(gemm.k, 5120);
        assert_eq!(gemm.m, 1);
        assert_eq!(rnn.repeats(), 100);
        assert_eq!(Layer::fully_connected("fc", 4, 8, 8).repeats(), 1);
    }

    #[test]
    fn with_batch_rescales_only_batch() {
        let layer = Layer::conv2d("c", 1, 64, 56, 56, 64, 3, 3, 1, 1);
        let b8 = layer.with_batch(8);
        assert_eq!(b8.batch(), 8);
        assert_eq!(b8.gemm().m, 8 * layer.gemm().m);
        assert_eq!(b8.gemm().k, layer.gemm().k);
        assert_eq!(b8.w_shape(), layer.w_shape());
        assert_eq!(b8.ia_shape().bytes(), 8 * layer.ia_shape().bytes());
    }

    #[test]
    fn invalid_layers_detected() {
        let bad_kernel = Layer::conv2d("bad", 1, 3, 8, 8, 16, 11, 11, 1, 0);
        assert!(bad_kernel.validate().is_err());
        let zero_stride = Layer::conv2d("bad2", 1, 3, 32, 32, 16, 3, 3, 0, 1);
        // Zero stride panics on division; construct via validate path instead.
        assert!(
            std::panic::catch_unwind(|| zero_stride.validate()).is_err()
                || zero_stride.validate().is_err()
        );
    }

    #[test]
    fn oa_shape_of_conv_matches_output_dims() {
        let layer = Layer::conv2d("c", 2, 64, 56, 56, 256, 1, 1, 1, 0);
        assert_eq!(layer.oa_shape().dims(), &[2, 256, 56, 56]);
    }
}
