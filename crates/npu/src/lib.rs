//! NPU architecture model for the NeuMMU reproduction.
//!
//! This crate models the baseline NPU of the paper (Section II-C): a Google
//! TPU-style 128×128 weight-stationary systolic array fed from software-managed
//! scratchpads, with a DMA engine that moves multi-MB tiles of input
//! activations (IA) and weights (W) between main memory and the scratchpad.
//!
//! The modules mirror the paper's decomposition:
//!
//! * [`config`] — Table I processor parameters,
//! * [`tensor`] — tensor shapes, data types and byte footprints,
//! * [`layer`] — dense layer descriptors and their GEMM lowering,
//! * [`tiling`] — the SPM-constrained tiler that produces the per-tile work
//!   list (the source of the paper's compute/memory phase structure, Figure 3),
//! * [`dma`] — decomposition of a tile fetch into linearized memory
//!   transactions, each of which requires one address translation (the source
//!   of the paper's translation bursts, Figures 6 and 7),
//! * [`systolic`] — compute-phase latency for the systolic array and for the
//!   spatial-array alternative of Section VI-B,
//! * [`scratchpad`] — double-buffered scratchpad occupancy checks.
//!
//! # Example
//!
//! ```
//! use neummu_npu::prelude::*;
//!
//! let npu = NpuConfig::tpu_like();
//! let layer = Layer::conv2d("conv1", 1, 3, 224, 224, 64, 7, 7, 2, 3);
//! let plan = TilingPlan::for_layer(&layer, &npu).unwrap();
//! assert!(plan.tile_count() >= 1);
//! let dma = DmaEngine::new(npu.dma);
//! let first_tile = &plan.tiles()[0];
//! if let Some(fetch) = &first_tile.ia_fetch {
//!     let txns = dma.transactions(fetch);
//!     assert!(!txns.is_empty());
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod dma;
pub mod error;
pub mod layer;
pub mod scratchpad;
pub mod systolic;
pub mod tensor;
pub mod tiling;

pub use config::{DmaConfig, NpuConfig};
pub use dma::{DmaEngine, MemTransaction, PageRun, PageRunIter, TransactionIter};
pub use error::NpuError;
pub use layer::{GemmDims, Layer, LayerOp};
pub use scratchpad::Scratchpad;
pub use systolic::ComputeModel;
pub use tensor::{DataType, TensorKind, TensorShape};
pub use tiling::{TileFetch, TileWork, TilingPlan};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::config::{DmaConfig, NpuConfig};
    pub use crate::dma::{DmaEngine, MemTransaction, PageRun, PageRunIter, TransactionIter};
    pub use crate::error::NpuError;
    pub use crate::layer::{GemmDims, Layer, LayerOp};
    pub use crate::scratchpad::Scratchpad;
    pub use crate::systolic::ComputeModel;
    pub use crate::tensor::{DataType, TensorKind, TensorShape};
    pub use crate::tiling::{TileFetch, TileWork, TilingPlan};
}
