//! Double-buffered scratchpad occupancy model.
//!
//! The NPU keeps activations and weights in software-managed scratchpads
//! (SPMs) rather than caches (Section II-A). Accesses from the processing
//! elements to the SPM never need address translation; only the DMA transfers
//! between main memory and the SPM do. This module models SPM occupancy so
//! that tiling decisions can be checked against the double-buffering
//! invariant: while tile *n* is being computed from one buffer half, tile
//! *n+1* is being fetched into the other half.

use serde::{Deserialize, Serialize};

use crate::config::NpuConfig;
use crate::tensor::TensorKind;
use crate::tiling::TileWork;

/// Occupancy state of one double-buffered scratchpad partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Partition {
    capacity: u64,
    active_bytes: u64,
    staging_bytes: u64,
    peak_bytes: u64,
}

impl Partition {
    fn new(capacity: u64) -> Self {
        Partition {
            capacity,
            ..Partition::default()
        }
    }

    fn stage(&mut self, bytes: u64) -> bool {
        if self.staging_bytes + bytes > self.half() {
            return false;
        }
        self.staging_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.active_bytes + self.staging_bytes);
        true
    }

    fn swap(&mut self) {
        self.active_bytes = self.staging_bytes;
        self.staging_bytes = 0;
    }

    fn half(&self) -> u64 {
        self.capacity / 2
    }
}

/// The NPU's on-chip scratchpad memory (activation and weight partitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scratchpad {
    act: Partition,
    weight: Partition,
    double_buffered: bool,
}

impl Scratchpad {
    /// Creates a scratchpad from the NPU configuration.
    #[must_use]
    pub fn new(npu: &NpuConfig) -> Self {
        Scratchpad {
            act: Partition::new(npu.act_spm_bytes),
            weight: Partition::new(npu.weight_spm_bytes),
            double_buffered: npu.double_buffered,
        }
    }

    /// Stages the fetches of a tile into the inactive buffer halves.
    ///
    /// Returns `false` (without changing state) if the tile does not fit,
    /// which indicates a tiling bug.
    pub fn stage_tile(&mut self, tile: &TileWork) -> bool {
        let ia_bytes = tile.ia_fetch.map_or(0, |f| f.bytes);
        let w_bytes = tile.w_fetch.map_or(0, |f| f.bytes);
        let snapshot = *self;
        if ia_bytes > 0 && !self.act.stage(ia_bytes) {
            *self = snapshot;
            return false;
        }
        if w_bytes > 0 && !self.weight.stage(w_bytes) {
            *self = snapshot;
            return false;
        }
        true
    }

    /// Completes the double-buffer swap at a tile boundary: the staged data
    /// becomes the active working set and the staging halves are emptied.
    pub fn swap_buffers(&mut self) {
        self.act.swap();
        self.weight.swap();
    }

    /// Bytes currently active (being computed on) in the given partition.
    #[must_use]
    pub fn active_bytes(&self, kind: TensorKind) -> u64 {
        match kind {
            TensorKind::InputActivation | TensorKind::OutputActivation => self.act.active_bytes,
            TensorKind::Weight => self.weight.active_bytes,
        }
    }

    /// Peak combined occupancy observed in the given partition.
    #[must_use]
    pub fn peak_bytes(&self, kind: TensorKind) -> u64 {
        match kind {
            TensorKind::InputActivation | TensorKind::OutputActivation => self.act.peak_bytes,
            TensorKind::Weight => self.weight.peak_bytes,
        }
    }

    /// True if the scratchpad is operated in double-buffered mode.
    #[must_use]
    pub fn is_double_buffered(&self) -> bool {
        self.double_buffered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::tiling::TilingPlan;

    #[test]
    fn every_tile_of_a_plan_fits_the_scratchpad() {
        let npu = NpuConfig::tpu_like();
        let layers = [
            Layer::conv2d("conv1", 8, 3, 224, 224, 64, 7, 7, 2, 3),
            Layer::fully_connected("fc", 8, 25088, 4096),
            Layer::lstm_cell("lstm", 8, 2048, 2048, 1),
        ];
        for layer in layers {
            let plan = TilingPlan::for_layer(&layer, &npu).unwrap();
            let mut spm = Scratchpad::new(&npu);
            for tile in plan.tiles() {
                assert!(
                    spm.stage_tile(tile),
                    "tile {} does not fit for {}",
                    tile.index,
                    layer.name()
                );
                spm.swap_buffers();
            }
        }
    }

    #[test]
    fn oversized_tile_is_rejected_without_state_change() {
        let npu = NpuConfig::tpu_like();
        let mut spm = Scratchpad::new(&npu);
        let tile = TileWork {
            index: 0,
            ia_fetch: Some(crate::tiling::TileFetch {
                kind: TensorKind::InputActivation,
                offset: 0,
                bytes: npu.act_spm_bytes, // double the per-tile budget
            }),
            w_fetch: None,
            oa_writeback_bytes: 0,
            compute: crate::layer::GemmDims { m: 1, k: 1, n: 1 },
        };
        assert!(!spm.stage_tile(&tile));
        assert_eq!(spm.peak_bytes(TensorKind::InputActivation), 0);
    }

    #[test]
    fn swap_moves_staged_to_active() {
        let npu = NpuConfig::tpu_like();
        let mut spm = Scratchpad::new(&npu);
        let tile = TileWork {
            index: 0,
            ia_fetch: Some(crate::tiling::TileFetch {
                kind: TensorKind::InputActivation,
                offset: 0,
                bytes: 1024,
            }),
            w_fetch: Some(crate::tiling::TileFetch {
                kind: TensorKind::Weight,
                offset: 0,
                bytes: 2048,
            }),
            oa_writeback_bytes: 0,
            compute: crate::layer::GemmDims { m: 1, k: 1, n: 1 },
        };
        assert!(spm.stage_tile(&tile));
        assert_eq!(spm.active_bytes(TensorKind::Weight), 0);
        spm.swap_buffers();
        assert_eq!(spm.active_bytes(TensorKind::Weight), 2048);
        assert_eq!(spm.active_bytes(TensorKind::InputActivation), 1024);
        assert!(spm.is_double_buffered());
    }
}
