//! Compute-phase latency models.
//!
//! The baseline NPU uses a weight-stationary 128×128 systolic array (as in the
//! TPU); Section VI-B additionally considers a spatial-array NPU in the style
//! of DaDianNao/Eyeriss. Both are modelled analytically: given the GEMM tile
//! dimensions resident in the scratchpad, the model returns the number of
//! cycles the compute phase occupies. Only relative magnitudes matter for the
//! paper's results (everything is normalized to the oracle MMU on the same
//! compute model).

use serde::{Deserialize, Serialize};

/// Compute-array organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComputeModel {
    /// Weight-stationary systolic array of `rows × cols` MAC units.
    SystolicArray {
        /// Number of rows (reduction dimension lanes).
        rows: u32,
        /// Number of columns (output-channel lanes).
        cols: u32,
    },
    /// Spatial array of `pes` processing elements, each with a `vector_width`
    /// wide MAC unit (DaDianNao / Eyeriss style, Section VI-B).
    SpatialArray {
        /// Number of processing elements.
        pes: u32,
        /// Vector (dot-product) width of each PE.
        vector_width: u32,
    },
}

impl ComputeModel {
    /// Creates a systolic-array model.
    #[must_use]
    pub const fn systolic(rows: u32, cols: u32) -> Self {
        ComputeModel::SystolicArray { rows, cols }
    }

    /// Creates a spatial-array model.
    #[must_use]
    pub const fn spatial(pes: u32, vector_width: u32) -> Self {
        ComputeModel::SpatialArray { pes, vector_width }
    }

    /// Peak multiply-accumulate operations per cycle.
    #[must_use]
    pub const fn macs_per_cycle(&self) -> u64 {
        match self {
            ComputeModel::SystolicArray { rows, cols } => (*rows as u64) * (*cols as u64),
            ComputeModel::SpatialArray { pes, vector_width } => {
                (*pes as u64) * (*vector_width as u64)
            }
        }
    }

    /// Cycles to compute a GEMM tile of `m × k × n` once its operands are in
    /// the scratchpad.
    ///
    /// * Systolic array: the `k × n` weight tile is processed in
    ///   `⌈k/rows⌉·⌈n/cols⌉` stationary passes; each pass streams the `m`
    ///   activation rows through the array with a pipeline fill/drain of
    ///   `rows + cols` cycles and pays a `rows`-cycle weight-load (the TPU
    ///   overlaps weight loading with the previous pass, so only the exposed
    ///   portion is charged).
    /// * Spatial array: MAC-count divided by peak throughput with a fixed
    ///   per-tile overhead for operand distribution over the network-on-chip.
    #[must_use]
    pub fn tile_compute_cycles(&self, m: u64, k: u64, n: u64) -> u64 {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        match self {
            ComputeModel::SystolicArray { rows, cols } => {
                let rows = u64::from(*rows);
                let cols = u64::from(*cols);
                let passes = k.div_ceil(rows) * n.div_ceil(cols);
                let per_pass = m + rows + cols;
                let exposed_weight_load = rows.min(64);
                passes * (per_pass + exposed_weight_load)
            }
            ComputeModel::SpatialArray { .. } => {
                let macs = m * k * n;
                let throughput = self.macs_per_cycle();
                let distribution_overhead = 256;
                macs.div_ceil(throughput) + distribution_overhead
            }
        }
    }

    /// Effective utilization of the array for a tile (0.0 – 1.0).
    #[must_use]
    pub fn utilization(&self, m: u64, k: u64, n: u64) -> f64 {
        let cycles = self.tile_compute_cycles(m, k, n);
        if cycles == 0 {
            return 0.0;
        }
        let ideal = (m * k * n) as f64 / self.macs_per_cycle() as f64;
        (ideal / cycles as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_throughput() {
        assert_eq!(ComputeModel::systolic(128, 128).macs_per_cycle(), 16384);
        assert_eq!(ComputeModel::spatial(256, 16).macs_per_cycle(), 4096);
    }

    #[test]
    fn full_tiles_achieve_high_utilization() {
        let model = ComputeModel::systolic(128, 128);
        // A large tile that exactly fills the array in both dimensions.
        let util = model.utilization(4096, 1024, 1024);
        assert!(util > 0.9, "utilization {util}");
    }

    #[test]
    fn small_tiles_waste_the_array() {
        let model = ComputeModel::systolic(128, 128);
        let util = model.utilization(16, 32, 32);
        assert!(util < 0.1, "utilization {util}");
    }

    #[test]
    fn compute_cycles_scale_with_work() {
        let model = ComputeModel::systolic(128, 128);
        let small = model.tile_compute_cycles(1024, 128, 128);
        let big = model.tile_compute_cycles(1024, 512, 512);
        assert!(big > 10 * small);
        assert_eq!(model.tile_compute_cycles(0, 128, 128), 0);
    }

    #[test]
    fn spatial_array_is_slower_at_same_tile() {
        let systolic = ComputeModel::systolic(128, 128);
        let spatial = ComputeModel::spatial(256, 16);
        let tile = (4096u64, 512u64, 512u64);
        assert!(
            spatial.tile_compute_cycles(tile.0, tile.1, tile.2)
                > systolic.tile_compute_cycles(tile.0, tile.1, tile.2)
        );
    }

    #[test]
    fn gemv_like_tiles_are_latency_bound() {
        let model = ComputeModel::systolic(128, 128);
        // m=1 (GEMV): the pipeline fill dominates; utilization is tiny.
        let cycles = model.tile_compute_cycles(1, 2048, 2048);
        assert!(cycles >= 16 * 16 * (1 + 256));
        assert!(model.utilization(1, 2048, 2048) < 0.05);
    }
}
