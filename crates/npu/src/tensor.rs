//! Tensor shapes, data types and byte footprints.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Numeric precision of tensor elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 8-bit integer (original TPU inference precision).
    Int8,
    /// 16-bit brain floating point.
    Bf16,
    /// 32-bit floating point.
    Fp32,
}

impl DataType {
    /// Size of one element in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            DataType::Int8 => 1,
            DataType::Bf16 => 2,
            DataType::Fp32 => 4,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int8 => write!(f, "int8"),
            DataType::Bf16 => write!(f, "bf16"),
            DataType::Fp32 => write!(f, "fp32"),
        }
    }
}

/// Which of an NPU layer's operand tensors is being referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// Input activations (IA).
    InputActivation,
    /// Weights / filters (W).
    Weight,
    /// Output activations (OA).
    OutputActivation,
}

/// Serialized via [`fmt::Display`] (`"IA"` / `"W"` / `"OA"`): the kind
/// appears once per tile fetch in the Figure 14 trace artifacts, and the
/// short operand labels keep those artifacts compact and identical to the
/// historical format.
impl Serialize for TensorKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for TensorKind {}

impl fmt::Display for TensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorKind::InputActivation => write!(f, "IA"),
            TensorKind::Weight => write!(f, "W"),
            TensorKind::OutputActivation => write!(f, "OA"),
        }
    }
}

/// A logical tensor shape (up to 4 dimensions) with an element type.
///
/// The NPU maps tensors to a linear (1-D) address range in row-major order;
/// the innermost dimension is contiguous in memory (Section I / III-C).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    dims: Vec<u64>,
    dtype: DataType,
}

impl TensorShape {
    /// Creates a shape from its dimensions (outermost first).
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero.
    #[must_use]
    pub fn new(dims: &[u64], dtype: DataType) -> Self {
        assert!(!dims.is_empty(), "a tensor needs at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "tensor dimensions must be positive: {dims:?}"
        );
        TensorShape {
            dims: dims.to_vec(),
            dtype,
        }
    }

    /// Dimensions, outermost first.
    #[must_use]
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Element data type.
    #[must_use]
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Total number of elements.
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Total footprint in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.elements() * self.dtype.bytes()
    }

    /// Length of the innermost (contiguous) dimension in bytes.
    #[must_use]
    pub fn row_bytes(&self) -> u64 {
        self.dims.last().copied().unwrap_or(1) * self.dtype.bytes()
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]{}", self.dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DataType::Int8.bytes(), 1);
        assert_eq!(DataType::Bf16.bytes(), 2);
        assert_eq!(DataType::Fp32.bytes(), 4);
    }

    #[test]
    fn shape_footprint() {
        let t = TensorShape::new(&[1, 3, 224, 224], DataType::Int8);
        assert_eq!(t.elements(), 3 * 224 * 224);
        assert_eq!(t.bytes(), 3 * 224 * 224);
        assert_eq!(t.row_bytes(), 224);
        let t2 = TensorShape::new(&[64, 3, 7, 7], DataType::Bf16);
        assert_eq!(t2.bytes(), 64 * 3 * 7 * 7 * 2);
    }

    #[test]
    fn display_formats() {
        let t = TensorShape::new(&[2, 8], DataType::Fp32);
        assert_eq!(t.to_string(), "[2x8]fp32");
        assert_eq!(TensorKind::Weight.to_string(), "W");
        assert_eq!(TensorKind::InputActivation.to_string(), "IA");
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        let _ = TensorShape::new(&[4, 0], DataType::Int8);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_shape_rejected() {
        let _ = TensorShape::new(&[], DataType::Int8);
    }
}
