//! SPM-constrained tiling of a layer into compute/memory-phase work items.
//!
//! The DMA unit blocks the input activations (IA) and weights (W) into tiles
//! that fit in (half of) the double-buffered scratchpad and sequences them
//! across iterations (Figure 3 of the paper). The tiler produces, for each
//! tile, the byte windows of the IA/W segments that must be fetched and the
//! GEMM sub-problem that the compute phase executes.
//!
//! The dataflow is weight stationary: the loop order is
//! `for n-block { for k-block { load W(k,n); for m-block { load IA(m,k); compute } } }`,
//! so a weight block is fetched once and reused across all `m` blocks, while
//! the (im2col-lowered) activation matrix is re-streamed once per `n` block.
//! Tile fetch requests for IA and W are issued one at a time and are not
//! interleaved, matching the observation behind the paper's TPreg design
//! (Section IV-C, insight 2).

use serde::{Deserialize, Serialize};

use crate::config::NpuConfig;
use crate::error::NpuError;
use crate::layer::{GemmDims, Layer};
use crate::tensor::TensorKind;

/// A request to fetch one contiguous byte window of an operand tensor into the
/// scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileFetch {
    /// Which operand tensor the window belongs to.
    pub kind: TensorKind,
    /// Byte offset of the window within the operand's segment.
    pub offset: u64,
    /// Length of the window in bytes.
    pub bytes: u64,
}

impl TileFetch {
    /// One-past-the-end offset of the window.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.offset + self.bytes
    }
}

/// One tile iteration: the fetches of its memory phase and the GEMM
/// sub-problem of its compute phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileWork {
    /// Sequential tile index within the layer.
    pub index: u64,
    /// Input-activation fetch (every tile streams a fresh IA window).
    pub ia_fetch: Option<TileFetch>,
    /// Weight fetch (only when the tile starts a new weight block).
    pub w_fetch: Option<TileFetch>,
    /// Output-activation bytes produced by this tile (written back after the
    /// compute phase of the final reduction block).
    pub oa_writeback_bytes: u64,
    /// GEMM sub-problem executed by the compute phase.
    pub compute: GemmDims,
}

impl TileWork {
    /// Total bytes fetched by this tile's memory phase.
    #[must_use]
    pub fn fetch_bytes(&self) -> u64 {
        self.ia_fetch.map_or(0, |f| f.bytes) + self.w_fetch.map_or(0, |f| f.bytes)
    }
}

/// The complete tiling of one layer execution step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingPlan {
    layer_name: String,
    gemm: GemmDims,
    elem_bytes: u64,
    m_tile: u64,
    k_tile: u64,
    n_tile: u64,
    ia_bytes: u64,
    w_bytes: u64,
    oa_bytes: u64,
    repeats: u64,
    tiles: Vec<TileWork>,
}

impl TilingPlan {
    /// Builds the tiling plan of `layer` on `npu`.
    ///
    /// # Errors
    ///
    /// * Propagates layer/configuration validation errors.
    /// * Returns [`NpuError::TileTooLarge`] if even a minimum tile cannot fit
    ///   the scratchpad (cannot happen with Table I capacities).
    pub fn for_layer(layer: &Layer, npu: &NpuConfig) -> Result<TilingPlan, NpuError> {
        layer.validate()?;
        npu.validate()?;

        let gemm = layer.gemm();
        let elem = layer.dtype().bytes();
        let ia_bytes = layer.ia_shape().bytes();
        let w_bytes = layer.w_shape().bytes();
        let oa_bytes = gemm.m * gemm.n * elem;

        let w_budget = npu.weight_tile_budget();
        let ia_budget = npu.act_tile_budget();

        // Choose the weight-block shape so a stationary block fills as much of
        // the weight-scratchpad partition as possible: take the full reduction
        // dimension when it fits (bounded so at least one column group of the
        // array is covered), then as many output columns as the budget allows.
        let k_cap = (w_budget / (elem * 128)).max(1);
        let k_tile = gemm.k.min(k_cap);
        let n_cap = (w_budget / (elem * k_tile)).max(1);
        let n_tile = gemm.n.min(n_cap);
        let w_block_bytes = k_tile * n_tile * elem;
        if w_block_bytes > npu.weight_tile_budget() && k_tile == 1 {
            return Err(NpuError::TileTooLarge {
                layer: layer.name().to_string(),
                required_bytes: w_block_bytes,
                available_bytes: npu.weight_tile_budget(),
            });
        }

        // Choose the activation-block height so the im2col window fits the
        // activation-scratchpad partition.
        let m_for_budget = (ia_budget / (elem * k_tile)).max(1);
        let m_tile = gemm.m.min(m_for_budget);

        let n_m = gemm.m.div_ceil(m_tile);
        let n_k = gemm.k.div_ceil(k_tile);
        let n_n = gemm.n.div_ceil(n_tile);

        // Byte windows: the IA matrix is swept once per n-block across the
        // (m, k) tile grid; the W matrix is swept exactly once across the
        // (k, n) grid. Windows advance monotonically, giving the streaming
        // virtual-address pattern of Figure 14.
        let ia_window = ia_bytes.div_ceil(n_m * n_k);
        let w_window = w_bytes.div_ceil(n_k * n_n);
        let oa_window = oa_bytes.div_ceil(n_m * n_n);

        let mut tiles = Vec::with_capacity((n_m * n_k * n_n) as usize);
        let mut index = 0u64;
        for ni in 0..n_n {
            for ki in 0..n_k {
                for mi in 0..n_m {
                    let ia_slot = ki * n_m + mi;
                    let ia_offset = (ia_slot * ia_window).min(ia_bytes.saturating_sub(1));
                    let ia_len = ia_window.min(ia_bytes - ia_offset);
                    let ia_fetch = Some(TileFetch {
                        kind: TensorKind::InputActivation,
                        offset: ia_offset,
                        bytes: ia_len.max(1),
                    });

                    let w_fetch = if mi == 0 {
                        let w_slot = ni * n_k + ki;
                        let w_offset = (w_slot * w_window).min(w_bytes.saturating_sub(1));
                        let w_len = w_window.min(w_bytes - w_offset);
                        Some(TileFetch {
                            kind: TensorKind::Weight,
                            offset: w_offset,
                            bytes: w_len.max(1),
                        })
                    } else {
                        None
                    };

                    let m_cur = if mi == n_m - 1 {
                        gemm.m - mi * m_tile
                    } else {
                        m_tile
                    };
                    let k_cur = if ki == n_k - 1 {
                        gemm.k - ki * k_tile
                    } else {
                        k_tile
                    };
                    let n_cur = if ni == n_n - 1 {
                        gemm.n - ni * n_tile
                    } else {
                        n_tile
                    };
                    let oa_writeback_bytes = if ki == n_k - 1 { oa_window } else { 0 };

                    tiles.push(TileWork {
                        index,
                        ia_fetch,
                        w_fetch,
                        oa_writeback_bytes,
                        compute: GemmDims {
                            m: m_cur,
                            k: k_cur,
                            n: n_cur,
                        },
                    });
                    index += 1;
                }
            }
        }

        Ok(TilingPlan {
            layer_name: layer.name().to_string(),
            gemm,
            elem_bytes: elem,
            m_tile,
            k_tile,
            n_tile,
            ia_bytes,
            w_bytes,
            oa_bytes,
            repeats: layer.repeats(),
            tiles,
        })
    }

    /// Name of the tiled layer.
    #[must_use]
    pub fn layer_name(&self) -> &str {
        &self.layer_name
    }

    /// GEMM dimensions of one execution step.
    #[must_use]
    pub fn gemm(&self) -> GemmDims {
        self.gemm
    }

    /// Chosen tile dimensions `(m, k, n)`.
    #[must_use]
    pub fn tile_dims(&self) -> (u64, u64, u64) {
        (self.m_tile, self.k_tile, self.n_tile)
    }

    /// The per-tile work list, in execution order.
    #[must_use]
    pub fn tiles(&self) -> &[TileWork] {
        &self.tiles
    }

    /// Number of tiles per execution step.
    #[must_use]
    pub fn tile_count(&self) -> u64 {
        self.tiles.len() as u64
    }

    /// How many times the whole tile sequence is executed (time steps of a
    /// recurrent layer).
    #[must_use]
    pub fn repeats(&self) -> u64 {
        self.repeats
    }

    /// Size of the IA operand segment in bytes.
    #[must_use]
    pub fn ia_segment_bytes(&self) -> u64 {
        self.ia_bytes
    }

    /// Size of the W operand segment in bytes.
    #[must_use]
    pub fn w_segment_bytes(&self) -> u64 {
        self.w_bytes
    }

    /// Size of the OA operand segment in bytes.
    #[must_use]
    pub fn oa_segment_bytes(&self) -> u64 {
        self.oa_bytes
    }

    /// Total bytes fetched from main memory by one execution step.
    #[must_use]
    pub fn total_fetch_bytes(&self) -> u64 {
        self.tiles.iter().map(TileWork::fetch_bytes).sum()
    }

    /// Largest single tile fetch in bytes.
    #[must_use]
    pub fn max_tile_fetch_bytes(&self) -> u64 {
        self.tiles
            .iter()
            .flat_map(|t| {
                [
                    t.ia_fetch.map_or(0, |f| f.bytes),
                    t.w_fetch.map_or(0, |f| f.bytes),
                ]
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    fn npu() -> NpuConfig {
        NpuConfig::tpu_like()
    }

    #[test]
    fn weight_blocks_fit_the_scratchpad() {
        let layer = Layer::fully_connected("fc6", 8, 9216, 4096);
        let plan = TilingPlan::for_layer(&layer, &npu()).unwrap();
        for tile in plan.tiles() {
            if let Some(w) = tile.w_fetch {
                assert!(
                    w.bytes <= npu().weight_tile_budget(),
                    "w fetch {} too big",
                    w.bytes
                );
            }
            if let Some(ia) = tile.ia_fetch {
                assert!(ia.bytes <= npu().act_tile_budget());
            }
        }
    }

    #[test]
    fn weight_traffic_covers_the_weight_matrix_once() {
        let layer = Layer::fully_connected("fc", 4, 4096, 4096);
        let plan = TilingPlan::for_layer(&layer, &npu()).unwrap();
        let w_total: u64 = plan
            .tiles()
            .iter()
            .filter_map(|t| t.w_fetch)
            .map(|f| f.bytes)
            .sum();
        let expected = layer.w_shape().bytes();
        // Rounding of windows may add at most one window of slack.
        assert!(w_total >= expected, "w_total {w_total} < {expected}");
        assert!(w_total <= expected + plan.tile_count() * 8);
    }

    #[test]
    fn ia_traffic_scales_with_n_blocks() {
        // n = 4096 -> 8 n-blocks of 512; the IA matrix is re-streamed per block.
        let layer = Layer::fully_connected("fc", 8, 9216, 4096);
        let plan = TilingPlan::for_layer(&layer, &npu()).unwrap();
        let ia_total: u64 = plan
            .tiles()
            .iter()
            .filter_map(|t| t.ia_fetch)
            .map(|f| f.bytes)
            .sum();
        let per_sweep = layer.ia_shape().bytes();
        let n_blocks = 4096u64.div_ceil(512);
        assert!(ia_total >= per_sweep * n_blocks.saturating_sub(1));
    }

    #[test]
    fn large_conv_layer_produces_multiple_tiles() {
        let layer = Layer::conv2d("res2a", 8, 64, 56, 56, 64, 3, 3, 1, 1);
        let plan = TilingPlan::for_layer(&layer, &npu()).unwrap();
        assert!(plan.tile_count() > 1);
        // Every tile fetches activations.
        assert!(plan.tiles().iter().all(|t| t.ia_fetch.is_some()));
        // The first tile of each weight block also fetches weights.
        assert!(plan.tiles()[0].w_fetch.is_some());
    }

    #[test]
    fn fetch_windows_stay_within_segments() {
        for layer in [
            Layer::conv2d("conv1", 1, 3, 224, 224, 64, 11, 11, 4, 2),
            Layer::fully_connected("fc", 1, 25088, 4096),
            Layer::lstm_cell("lstm", 1, 2048, 2048, 1),
        ] {
            let plan = TilingPlan::for_layer(&layer, &npu()).unwrap();
            for tile in plan.tiles() {
                if let Some(ia) = tile.ia_fetch {
                    assert!(ia.end() <= plan.ia_segment_bytes() + 8);
                }
                if let Some(w) = tile.w_fetch {
                    assert!(w.end() <= plan.w_segment_bytes() + 8);
                }
            }
        }
    }

    #[test]
    fn lstm_plan_records_repeats() {
        let layer = Layer::lstm_cell("lstm", 4, 1760, 1760, 50);
        let plan = TilingPlan::for_layer(&layer, &npu()).unwrap();
        assert_eq!(plan.repeats(), 50);
        // LSTM weights (~49 MB at bf16) need around 10 weight blocks.
        let w_fetches = plan.tiles().iter().filter(|t| t.w_fetch.is_some()).count();
        assert!(
            w_fetches >= 8,
            "expected >=8 weight blocks, got {w_fetches}"
        );
    }

    #[test]
    fn oa_writeback_assigned_to_final_reduction_block() {
        let layer = Layer::fully_connected("fc", 64, 8192, 512);
        let plan = TilingPlan::for_layer(&layer, &npu()).unwrap();
        let oa_total: u64 = plan.tiles().iter().map(|t| t.oa_writeback_bytes).sum();
        assert!(oa_total >= plan.oa_segment_bytes());
        // Tiles that are not the last k-block write nothing.
        let (_, k_tile, _) = plan.tile_dims();
        if plan.gemm().k > k_tile {
            assert!(plan.tiles().iter().any(|t| t.oa_writeback_bytes == 0));
        }
    }

    #[test]
    fn small_layer_is_a_single_tile() {
        let layer = Layer::conv2d("tiny", 1, 3, 8, 8, 8, 3, 3, 1, 1);
        let plan = TilingPlan::for_layer(&layer, &npu()).unwrap();
        assert_eq!(plan.tile_count(), 1);
        let tile = plan.tiles()[0];
        assert_eq!(tile.compute, plan.gemm());
    }

    #[test]
    fn max_tile_fetch_is_close_to_the_budget_for_big_layers() {
        // A big LSTM should produce ~5 MB weight tiles, the quantity behind
        // the paper's "1.2K distinct pages per tile" observation.
        let layer = Layer::lstm_cell("lstm", 1, 2048, 2048, 1);
        let plan = TilingPlan::for_layer(&layer, &npu()).unwrap();
        let max_fetch = plan.max_tile_fetch_bytes();
        assert!(max_fetch > 3 << 20, "max fetch {max_fetch}");
        assert!(max_fetch <= npu().weight_tile_budget().max(npu().act_tile_budget()));
    }
}
