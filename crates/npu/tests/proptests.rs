//! Property-based tests for the NPU tiling and DMA models.

use proptest::prelude::*;

use neummu_npu::prelude::*;

/// Strategy producing valid convolution layer dimensions.
fn conv_dims() -> impl Strategy<Value = (u64, u64, u64, u64, u64, u64)> {
    // (batch, in_channels, spatial, out_channels, kernel, stride)
    (
        1u64..=8,
        1u64..=256,
        7u64..=64,
        1u64..=256,
        1u64..=5,
        1u64..=2,
    )
}

/// Strategy producing valid fully-connected layer dimensions.
fn fc_dims() -> impl Strategy<Value = (u64, u64, u64)> {
    (1u64..=64, 1u64..=16384, 1u64..=8192)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every tile of every plan respects the double-buffered scratchpad
    /// budgets, and its compute sub-problem never exceeds the layer's GEMM.
    #[test]
    fn tiles_respect_scratchpad_budgets((b, c, hw, k, r, s) in conv_dims()) {
        let kernel = r.min(hw);
        let layer = Layer::conv2d("prop_conv", b, c, hw, hw, k, kernel, kernel, s, kernel / 2);
        prop_assume!(layer.validate().is_ok());
        let npu = NpuConfig::tpu_like();
        let plan = TilingPlan::for_layer(&layer, &npu).unwrap();
        let gemm = plan.gemm();
        for tile in plan.tiles() {
            if let Some(w) = tile.w_fetch {
                prop_assert!(w.bytes <= npu.weight_tile_budget());
                prop_assert!(w.end() <= plan.w_segment_bytes() + 8);
            }
            if let Some(ia) = tile.ia_fetch {
                prop_assert!(ia.bytes <= npu.act_tile_budget());
                prop_assert!(ia.end() <= plan.ia_segment_bytes() + 8);
            }
            prop_assert!(tile.compute.m <= gemm.m);
            prop_assert!(tile.compute.k <= gemm.k);
            prop_assert!(tile.compute.n <= gemm.n);
        }
    }

    /// The per-tile compute sub-problems exactly cover the layer's GEMM: the
    /// sum of `m*k*n` over all tiles equals the layer's total MAC count.
    #[test]
    fn tile_compute_work_partitions_the_gemm((batch, k_dim, n_dim) in fc_dims()) {
        let layer = Layer::fully_connected("prop_fc", batch, k_dim, n_dim);
        let plan = TilingPlan::for_layer(&layer, &NpuConfig::tpu_like()).unwrap();
        let total: u64 = plan.tiles().iter().map(|t| t.compute.macs()).sum();
        prop_assert_eq!(total, layer.gemm().macs());
    }

    /// Weight traffic equals the weight-matrix footprint (to within one
    /// window of rounding slack), independent of the layer shape.
    #[test]
    fn weight_traffic_covers_weights_once((batch, k_dim, n_dim) in fc_dims()) {
        let layer = Layer::fully_connected("prop_fc", batch, k_dim, n_dim);
        let plan = TilingPlan::for_layer(&layer, &NpuConfig::tpu_like()).unwrap();
        let w_total: u64 = plan.tiles().iter().filter_map(|t| t.w_fetch).map(|f| f.bytes).sum();
        let w_bytes = layer.w_shape().bytes();
        prop_assert!(w_total >= w_bytes);
        prop_assert!(w_total <= w_bytes + plan.tile_count() * 8);
    }

    /// DMA decomposition is lossless: the transactions of a fetch cover
    /// exactly its byte range, contiguously and in order.
    #[test]
    fn dma_transactions_cover_the_fetch(offset in 0u64..(1u64 << 30), bytes in 1u64..(8u64 << 20), txn_pow in 6u32..13) {
        let dma = DmaEngine::new(DmaConfig { max_transaction_bytes: 1 << txn_pow, translations_per_cycle: 1 });
        let fetch = TileFetch { kind: TensorKind::Weight, offset, bytes };
        let txns = dma.transactions(&fetch);
        prop_assert_eq!(txns.len() as u64, dma.transaction_count(&fetch));
        prop_assert_eq!(txns.first().unwrap().offset, offset);
        prop_assert_eq!(txns.last().unwrap().end(), offset + bytes);
        let mut cursor = offset;
        for txn in &txns {
            prop_assert_eq!(txn.offset, cursor);
            prop_assert!(txn.bytes >= 1 && txn.bytes <= 1 << txn_pow);
            cursor = txn.end();
        }
    }

    /// Page divergence bounds: a fetch of `n` bytes touches at least
    /// `ceil(n/4K)` and at most `ceil(n/4K)+1` distinct 4 KB pages, and never
    /// more transactions than bytes.
    #[test]
    fn translation_demand_bounds(offset in 0u64..(1u64 << 30), bytes in 1u64..(8u64 << 20)) {
        let dma = DmaEngine::new(DmaConfig::default_config());
        let fetch = TileFetch { kind: TensorKind::InputActivation, offset, bytes };
        let demand = dma.translation_demand(&fetch);
        let min_pages = bytes.div_ceil(4096);
        prop_assert!(demand.distinct_pages_4k >= min_pages);
        prop_assert!(demand.distinct_pages_4k <= min_pages + 1);
        prop_assert!(demand.distinct_pages_2m <= demand.distinct_pages_4k);
        prop_assert!(demand.transactions >= demand.distinct_pages_4k.saturating_sub(1));
        prop_assert!(demand.transactions <= bytes);
    }

    /// Compute-cycle model sanity: cycles are positive for non-empty tiles,
    /// monotone in each dimension, and utilization never exceeds 1.
    #[test]
    fn compute_model_monotonicity(m in 1u64..4096, k in 1u64..4096, n in 1u64..4096) {
        for model in [ComputeModel::systolic(128, 128), ComputeModel::spatial(256, 16)] {
            let base = model.tile_compute_cycles(m, k, n);
            prop_assert!(base > 0);
            prop_assert!(model.tile_compute_cycles(m + 64, k, n) >= base);
            prop_assert!(model.tile_compute_cycles(m, k + 64, n) >= base);
            prop_assert!(model.tile_compute_cycles(m, k, n + 64) >= base);
            let util = model.utilization(m, k, n);
            prop_assert!((0.0..=1.0).contains(&util));
        }
    }

    /// Rebatching a layer scales its GEMM `m` dimension linearly and leaves
    /// the weight footprint untouched.
    #[test]
    fn with_batch_scales_activations_only((b, c, hw, k, r, s) in conv_dims(), factor in 2u64..=4) {
        let kernel = r.min(hw);
        let layer = Layer::conv2d("prop_conv", b, c, hw, hw, k, kernel, kernel, s, kernel / 2);
        prop_assume!(layer.validate().is_ok());
        let scaled = layer.with_batch(b * factor);
        prop_assert_eq!(scaled.gemm().m, layer.gemm().m * factor);
        prop_assert_eq!(scaled.gemm().k, layer.gemm().k);
        prop_assert_eq!(scaled.gemm().n, layer.gemm().n);
        prop_assert_eq!(scaled.w_shape(), layer.w_shape());
    }
}
