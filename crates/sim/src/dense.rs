//! The dense-DNN pipeline simulator.
//!
//! For every layer the simulator builds the SPM-constrained tiling plan, lays
//! the layer's IA/W operands out in the NPU's virtual address space, and then
//! walks the tile sequence with the double-buffered pipeline of Figure 3:
//! tile *n*'s compute phase overlaps tile *n+1*'s memory phase.
//!
//! A tile's memory phase is simulated at per-transaction granularity: the DMA
//! decomposes each tile fetch into linearized memory transactions, issues at
//! most one translation request per cycle to the configured
//! [`neummu_mmu::AddressTranslator`], and schedules each transaction's data
//! transfer on the
//! shared HBM bandwidth once its translation completes. The memory phase ends
//! when the last byte of the tile has arrived. This is the mechanism through
//! which translation throughput (the paper's central concern) throttles
//! end-to-end performance.

use serde::{Deserialize, Serialize};

use neummu_mem::dram::{DramConfig, DramModel};
use neummu_mmu::MmuConfig;
use neummu_npu::{DmaEngine, Layer, NpuConfig, TensorKind, TileFetch, TilingPlan};
use neummu_vmem::{AddressSpace, MemNode, PhysicalMemory, SegmentOptions, VirtAddr};

use crate::error::SimError;

/// Configuration of a dense-workload simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DenseSimConfig {
    /// NPU architecture parameters.
    pub npu: NpuConfig,
    /// MMU design point under evaluation.
    pub mmu: MmuConfig,
    /// Local memory system parameters.
    pub dram: DramConfig,
    /// Memory node the NPU's operands live on.
    pub node: MemNode,
    /// Capacity of the NPU-local memory used to back the operands.
    pub memory_capacity_bytes: u64,
    /// Collect the per-window translation-issue trace (Figure 7) and the
    /// per-tile virtual-address windows (Figure 14). Off by default because it
    /// grows with simulated time.
    pub collect_traces: bool,
    /// Window width (cycles) of the translation-issue trace.
    pub trace_window_cycles: u64,
}

impl DenseSimConfig {
    /// The paper's default setup with the given MMU design point.
    #[must_use]
    pub fn with_mmu(mmu: MmuConfig) -> Self {
        DenseSimConfig {
            npu: NpuConfig::tpu_like(),
            mmu,
            dram: DramConfig::table1(),
            node: MemNode::Npu(0),
            memory_capacity_bytes: 64 << 30,
            collect_traces: false,
            trace_window_cycles: 1000,
        }
    }

    /// Enables trace collection (Figures 7 and 14).
    #[must_use]
    pub fn with_traces(mut self) -> Self {
        self.collect_traces = true;
        self
    }
}

/// Translations issued per fixed-width time window (the Figure 7 series).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationTrace {
    /// Window width in cycles.
    pub window_cycles: u64,
    /// Number of translation requests issued in each window.
    pub counts: Vec<u64>,
    /// Virtual-address windows fetched per tile: `(tile index, kind, start, end)`
    /// (the Figure 14 trace). Capped to the first few thousand tiles. The
    /// operand kind is the `Copy` [`TensorKind`] (serialized via its `Display`
    /// labels `IA`/`W`/`OA`), so recording a window never allocates.
    pub tile_va_windows: Vec<(u64, TensorKind, u64, u64)>,
    /// True if the run produced more tile windows than the
    /// [`TranslationTrace::WINDOW_CAP`] cap and `tile_va_windows` is
    /// therefore a silent prefix of the real trace. Off for every workload
    /// the paper traces; reports surface it so a capped trace is never
    /// mistaken for a complete one.
    pub windows_truncated: bool,
}

impl TranslationTrace {
    /// Maximum number of per-tile VA windows recorded before the trace stops
    /// growing (and flags itself truncated).
    pub const WINDOW_CAP: usize = 4096;

    /// Records one tile fetch's VA window, flagging truncation instead of
    /// silently dropping windows past the cap.
    fn record_window(&mut self, tile: u64, kind: TensorKind, start: u64, end: u64) {
        if self.tile_va_windows.len() < Self::WINDOW_CAP {
            self.tile_va_windows.push((tile, kind, start, end));
        } else {
            self.windows_truncated = true;
        }
    }

    fn record_issue(&mut self, cycle: u64) {
        if self.window_cycles == 0 {
            return;
        }
        let window = (cycle / self.window_cycles) as usize;
        if self.counts.len() <= window {
            self.counts.resize(window + 1, 0);
        }
        self.counts[window] += 1;
    }

    /// Maximum translations observed in any window.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

/// Per-layer simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerResult {
    /// Layer name.
    pub layer_name: String,
    /// Cycles of one execution step of the layer.
    pub step_cycles: u64,
    /// Number of times the step executes (time steps of recurrent layers).
    pub repeats: u64,
    /// Total cycles attributed to the layer (`step_cycles × repeats`).
    pub total_cycles: u64,
    /// Sum of tile compute-phase cycles (one step).
    pub compute_cycles: u64,
    /// Sum of tile memory-phase cycles (one step).
    pub memory_cycles: u64,
    /// Number of tiles in one step.
    pub tile_count: u64,
    /// Translation requests issued by one step.
    pub translation_requests: u64,
    /// Maximum distinct 4 KB pages touched by a single tile.
    pub max_pages_per_tile: u64,
    /// Average distinct 4 KB pages touched per tile.
    pub avg_pages_per_tile: f64,
}

/// Whole-workload simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Total cycles of the workload (all layers, including repeats).
    pub total_cycles: u64,
    /// Per-layer results.
    pub layers: Vec<LayerResult>,
    /// Aggregate translation statistics (one step per layer).
    pub translation: neummu_mmu::TranslationStats,
    /// Total translation energy in nanojoules (one step per layer).
    pub translation_energy_nj: f64,
    /// Page-walk DRAM accesses (one step per layer).
    pub walk_memory_accesses: u64,
    /// Optional traces (Figures 7 and 14).
    pub trace: Option<TranslationTrace>,
}

impl WorkloadResult {
    /// Performance of this run normalized to a reference run of the same
    /// workload (typically the oracular MMU): `reference_cycles / own_cycles`.
    #[must_use]
    pub fn normalized_to(&self, reference: &WorkloadResult) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        reference.total_cycles as f64 / self.total_cycles as f64
    }

    /// Maximum per-tile page divergence across the whole workload (Figure 6).
    #[must_use]
    pub fn max_pages_per_tile(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.max_pages_per_tile)
            .max()
            .unwrap_or(0)
    }

    /// Average per-tile page divergence across the whole workload (Figure 6).
    #[must_use]
    pub fn avg_pages_per_tile(&self) -> f64 {
        let tiles: u64 = self.layers.iter().map(|l| l.tile_count).sum();
        if tiles == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .layers
            .iter()
            .map(|l| l.avg_pages_per_tile * l.tile_count as f64)
            .sum();
        weighted / tiles as f64
    }
}

/// The dense-workload simulator.
#[derive(Debug, Clone)]
pub struct DenseSimulator {
    config: DenseSimConfig,
}

impl DenseSimulator {
    /// Creates a simulator with the given configuration.
    #[must_use]
    pub fn new(config: DenseSimConfig) -> Self {
        DenseSimulator { config }
    }

    /// The simulator's configuration.
    #[must_use]
    pub fn config(&self) -> &DenseSimConfig {
        &self.config
    }

    /// Simulates a full workload (a list of layers executed back to back).
    ///
    /// # Errors
    ///
    /// Returns an error if a layer is invalid, a tile cannot fit the
    /// scratchpad, or the operands cannot be mapped.
    pub fn simulate_workload(&self, layers: &[Layer]) -> Result<WorkloadResult, SimError> {
        self.config.npu.validate()?;
        let mut memory = PhysicalMemory::new(&[neummu_vmem::NodeSpec::new(
            self.config.node,
            self.config.memory_capacity_bytes,
        )]);
        let mut space = AddressSpace::new("dense-npu");
        let mut translator = self.config.mmu.translator();
        let mut dram = DramModel::new(self.config.dram);
        let dma = DmaEngine::new(self.config.npu.dma);

        let mut trace = if self.config.collect_traces {
            Some(TranslationTrace {
                window_cycles: self.config.trace_window_cycles,
                ..TranslationTrace::default()
            })
        } else {
            None
        };

        let mut now = 0u64;
        // One `sim/dense/layer` trace span per layer: the layer's slice of
        // the simulated timeline, payload = translation requests it issued.
        let layer_trace = neummu_trace::global().map(|sink| (sink, sink.kind("sim/dense/layer")));
        let mut layer_results = Vec::with_capacity(layers.len());
        let mut global_tile_index = 0u64;
        let mut fetches_streamed = 0u64;
        // Same-page runs are grouped at the translator's page size, so every
        // address of a run shares one TLB tag.
        let page_bytes = self.config.mmu.page_size.bytes();

        for (layer_index, layer) in layers.iter().enumerate() {
            let plan = TilingPlan::for_layer(layer, &self.config.npu)?;
            let seg_opts = SegmentOptions::new(self.config.node, self.config.mmu.page_size);
            let ia_seg = space.alloc_segment(
                format!("l{layer_index}_{}_ia", layer.name()),
                plan.ia_segment_bytes().max(1),
                seg_opts,
                &mut memory,
            )?;
            let w_seg = space.alloc_segment(
                format!("l{layer_index}_{}_w", layer.name()),
                plan.w_segment_bytes().max(1),
                seg_opts,
                &mut memory,
            )?;

            let layer_start = now;
            let mut prev_mem_end = layer_start;
            let mut compute_end_prev = layer_start;
            let mut compute_end_prev2 = layer_start;
            let mut compute_sum = 0u64;
            let mut memory_sum = 0u64;
            let mut requests = 0u64;
            let mut max_pages = 0u64;
            let mut pages_sum = 0u64;

            for tile in plan.tiles() {
                // Double buffering: this tile's fetch may start once the DMA
                // finished the previous tile's fetch and the buffer half it
                // will overwrite has been consumed (two tiles earlier).
                let mem_start = prev_mem_end.max(compute_end_prev2);
                let mut issue_cycle = mem_start;
                let mut mem_end = mem_start;
                let mut tile_pages = 0u64;

                let fetches: [Option<(&TileFetch, VirtAddr)>; 2] = [
                    tile.ia_fetch.as_ref().map(|f| (f, ia_seg.start())),
                    tile.w_fetch.as_ref().map(|f| (f, w_seg.start())),
                ];
                for (fetch, seg_base) in fetches.into_iter().flatten() {
                    tile_pages += dma.translation_demand(fetch).distinct_pages_4k;
                    if let Some(trace) = trace.as_mut() {
                        let start = seg_base.raw() + fetch.offset;
                        trace.record_window(
                            global_tile_index,
                            fetch.kind,
                            start,
                            start + fetch.bytes,
                        );
                    }
                    fetches_streamed += 1;
                    // The run-coalesced memory phase: the DMA stream is
                    // consumed one same-page run at a time. Each
                    // `translate_run` resolves the run's first request
                    // through the full translation path and replays the rest
                    // arithmetically (identical outcomes, one TLB touch);
                    // the matching data transfers batch into one DRAM
                    // occupancy computation. A run the translator could not
                    // fully replay (PRMB exhaustion, an eviction) continues
                    // from its suffix, so the per-transaction sequence is
                    // reproduced exactly.
                    for full_run in dma.page_runs(fetch, seg_base.raw(), page_bytes) {
                        let mut run = full_run;
                        loop {
                            let va = seg_base.add(run.first.offset);
                            let out = translator.translate_run(
                                space.page_table(),
                                va,
                                run.txn_count,
                                issue_cycle,
                            );
                            debug_assert!(!out.first.fault, "dense operands are eagerly mapped");
                            requests += out.consumed;
                            if let Some(trace) = trace.as_mut() {
                                for j in 0..out.consumed {
                                    trace.record_issue(out.accept(j));
                                }
                            }
                            issue_cycle = out.last_accept() + 1;
                            let scheduled = run.prefix(out.consumed);
                            let data_ready = dram.schedule_run(
                                out.first.complete_cycle,
                                out.complete_stride,
                                scheduled.txn_count,
                                scheduled.first.bytes,
                                scheduled.interior_txn_bytes(),
                                scheduled.txn_len(scheduled.txn_count - 1),
                            );
                            mem_end = mem_end.max(data_ready);
                            if out.consumed == run.txn_count {
                                break;
                            }
                            run = run.suffix(out.consumed);
                        }
                    }
                }
                mem_end = mem_end.max(issue_cycle);

                let compute_cycles = self.config.npu.compute.tile_compute_cycles(
                    tile.compute.m,
                    tile.compute.k,
                    tile.compute.n,
                );
                let compute_start = mem_end.max(compute_end_prev);
                let compute_end = compute_start + compute_cycles;

                compute_sum += compute_cycles;
                memory_sum += mem_end - mem_start;
                max_pages = max_pages.max(tile_pages);
                pages_sum += tile_pages;

                prev_mem_end = mem_end;
                compute_end_prev2 = compute_end_prev;
                compute_end_prev = compute_end;
                global_tile_index += 1;
            }

            let step_cycles = compute_end_prev.saturating_sub(layer_start).max(1);
            let repeats = plan.repeats();
            let total_cycles = step_cycles * repeats;
            now = layer_start + total_cycles;

            if let Some((sink, kind)) = layer_trace {
                sink.emit(neummu_trace::Event {
                    kind,
                    asid: 0,
                    start: layer_start,
                    end: now,
                    payload: requests,
                });
            }

            layer_results.push(LayerResult {
                layer_name: layer.name().to_string(),
                step_cycles,
                repeats,
                total_cycles,
                compute_cycles: compute_sum,
                memory_cycles: memory_sum,
                tile_count: plan.tile_count(),
                translation_requests: requests,
                max_pages_per_tile: max_pages,
                avg_pages_per_tile: if plan.tile_count() == 0 {
                    0.0
                } else {
                    pages_sum as f64 / plan.tile_count() as f64
                },
            });
        }

        // One batched telemetry update per workload, not one per fetch.
        neummu_mmu::counters::add_dma_fetches_streamed(fetches_streamed);

        Ok(WorkloadResult {
            total_cycles: now,
            layers: layer_results,
            translation: *translator.stats(),
            translation_energy_nj: translator.energy().total_nj(),
            walk_memory_accesses: translator.stats().walk_memory_accesses,
            trace,
        })
    }

    /// Simulates a single layer (convenience wrapper).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DenseSimulator::simulate_workload`].
    pub fn simulate_layer(&self, layer: &Layer) -> Result<WorkloadResult, SimError> {
        self.simulate_workload(std::slice::from_ref(layer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neummu_mmu::MmuConfig;
    use neummu_npu::Layer;

    fn small_conv() -> Layer {
        Layer::conv2d("conv", 1, 64, 28, 28, 64, 3, 3, 1, 1)
    }

    fn small_lstm() -> Layer {
        Layer::lstm_cell("lstm", 1, 512, 512, 4)
    }

    fn run(layer: &Layer, mmu: MmuConfig) -> WorkloadResult {
        DenseSimulator::new(DenseSimConfig::with_mmu(mmu))
            .simulate_layer(layer)
            .unwrap()
    }

    #[test]
    fn oracle_is_never_slower_than_iommu() {
        for layer in [small_conv(), small_lstm()] {
            let oracle = run(&layer, MmuConfig::oracle());
            let iommu = run(&layer, MmuConfig::baseline_iommu());
            let neummu = run(&layer, MmuConfig::neummu());
            assert!(
                oracle.total_cycles <= iommu.total_cycles,
                "{}",
                layer.name()
            );
            assert!(oracle.total_cycles <= neummu.total_cycles);
            assert!(neummu.total_cycles <= iommu.total_cycles);
        }
    }

    #[test]
    fn neummu_is_close_to_oracle_for_a_memory_bound_layer() {
        let layer = small_lstm();
        let oracle = run(&layer, MmuConfig::oracle());
        let neummu = run(&layer, MmuConfig::neummu());
        let iommu = run(&layer, MmuConfig::baseline_iommu());
        let neummu_norm = neummu.normalized_to(&oracle);
        let iommu_norm = iommu.normalized_to(&oracle);
        assert!(neummu_norm > 0.9, "NeuMMU normalized perf {neummu_norm}");
        assert!(
            iommu_norm < 0.5,
            "baseline IOMMU normalized perf {iommu_norm}"
        );
    }

    #[test]
    fn repeats_scale_total_cycles() {
        let one_step = Layer::lstm_cell("lstm", 1, 512, 512, 1);
        let four_steps = Layer::lstm_cell("lstm", 1, 512, 512, 4);
        let a = run(&one_step, MmuConfig::oracle());
        let b = run(&four_steps, MmuConfig::oracle());
        assert_eq!(b.total_cycles, 4 * a.total_cycles);
        assert_eq!(b.layers[0].repeats, 4);
    }

    #[test]
    fn translation_requests_match_transaction_count() {
        let layer = small_conv();
        let result = run(&layer, MmuConfig::neummu());
        let requests: u64 = result.layers.iter().map(|l| l.translation_requests).sum();
        assert_eq!(result.translation.requests, requests);
        assert!(requests > 0);
    }

    #[test]
    fn page_divergence_is_reported_per_tile() {
        let layer = small_lstm();
        let result = run(&layer, MmuConfig::oracle());
        assert!(result.max_pages_per_tile() > 0);
        assert!(result.avg_pages_per_tile() > 0.0);
        assert!(result.avg_pages_per_tile() <= result.max_pages_per_tile() as f64);
    }

    #[test]
    fn traces_capture_issue_bursts_and_va_windows() {
        let config = DenseSimConfig::with_mmu(MmuConfig::oracle()).with_traces();
        let result = DenseSimulator::new(config)
            .simulate_layer(&small_conv())
            .unwrap();
        let trace = result.trace.expect("traces requested");
        assert!(!trace.counts.is_empty());
        assert!(trace.peak() > 0);
        assert!(trace.peak() <= config.trace_window_cycles);
        assert!(!trace.tile_va_windows.is_empty());
        // VA windows advance monotonically within a tensor kind.
        let ia_starts: Vec<u64> = trace
            .tile_va_windows
            .iter()
            .filter(|(_, kind, _, _)| *kind == TensorKind::InputActivation)
            .map(|(_, _, start, _)| *start)
            .collect();
        assert!(ia_starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn walk_accesses_drop_with_neummu_prmb_and_tpreg() {
        let layer = small_lstm();
        let iommu = run(&layer, MmuConfig::baseline_iommu());
        let neummu = run(&layer, MmuConfig::neummu());
        assert!(
            iommu.walk_memory_accesses > 4 * neummu.walk_memory_accesses,
            "iommu {} vs neummu {}",
            iommu.walk_memory_accesses,
            neummu.walk_memory_accesses
        );
        assert!(iommu.translation_energy_nj > neummu.translation_energy_nj);
    }

    #[test]
    fn multi_layer_workloads_accumulate() {
        let layers = vec![small_conv(), small_lstm()];
        let sim = DenseSimulator::new(DenseSimConfig::with_mmu(MmuConfig::oracle()));
        let combined = sim.simulate_workload(&layers).unwrap();
        assert_eq!(combined.layers.len(), 2);
        let sum: u64 = combined.layers.iter().map(|l| l.total_cycles).sum();
        assert_eq!(combined.total_cycles, sum);
    }
}
