//! The multi-NPU embedding-layer case study (Section V, Figures 15 and 16).
//!
//! The system model follows Figure 5 of the paper: the embedding tables of a
//! recommender model are model-parallelized round-robin across the NPUs, while
//! the MLP portions are data-parallel. After the embedding lookup phase, every
//! NPU must hold the embeddings of its share of the minibatch from *all*
//! tables, most of which live in a remote NPU's memory. The simulator measures
//! the latency of one NPU's (NPU 0's) inference step, broken down into the
//! four components of Figure 15: GEMM (the MLP stacks), Reduction
//! (feature-interaction / element-wise work), Else (framework overhead) and
//! the Embedding lookup (gather) itself.
//!
//! Three gather strategies are modelled:
//!
//! * [`GatherStrategy::HostRelayedCopy`] — the MMU-less baseline: the CPU
//!   runtime copies remote embeddings into host pinned memory and then into
//!   the destination NPU, both hops over PCIe.
//! * [`GatherStrategy::NumaDirect`] — NeuMMU-enabled fine-grained NUMA loads
//!   over PCIe ("NUMA(slow)") or the NPU↔NPU link ("NUMA(fast)").
//! * [`GatherStrategy::DemandPaging`] — NeuMMU-enabled demand paging: the
//!   faulting page (4 KB or 2 MB) is migrated into local memory before the
//!   access (Figure 16).

use serde::{Deserialize, Serialize};

use neummu_mem::dram::{DramConfig, DramModel};
use neummu_mem::interconnect::{CopyEngine, InterconnectConfig, TransferKind};
use neummu_mmu::MmuConfig;
use neummu_npu::NpuConfig;
use neummu_vmem::{AddressSpace, MemNode, PhysicalMemory, SegmentOptions};
use neummu_workloads::EmbeddingModel;

use neummu_mmu::{AddressTranslator, RunOutcome};
use neummu_vmem::{PageTable, VirtAddr};

use crate::dense::{DenseSimConfig, DenseSimulator};
use crate::error::SimError;

/// Translates one same-page run of gather lookups and advances the issue
/// cursor — the single translate-and-advance call site shared by the NUMA
/// and demand-paging gather strategies (demand paging passes runs of one:
/// a migration invalidates translation state, so nothing replays across it).
fn translate_gather_run(
    translator: &mut dyn AddressTranslator,
    page_table: &PageTable,
    va: VirtAddr,
    count: u64,
    issue_cycle: &mut u64,
) -> RunOutcome {
    let out = translator.translate_run(page_table, va, count, *issue_cycle);
    *issue_cycle = out.last_accept() + 1;
    out
}

/// How remote embeddings are gathered into the local NPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GatherStrategy {
    /// MMU-less baseline: CPU-relayed staged copies over PCIe.
    HostRelayedCopy,
    /// Fine-grained NUMA loads over the given interconnect.
    NumaDirect {
        /// Which link carries the remote loads.
        link: TransferKind,
    },
    /// Demand paging: migrate the faulting page into local memory, then access
    /// it locally.
    DemandPaging {
        /// Which link carries the page migrations.
        link: TransferKind,
    },
}

impl GatherStrategy {
    /// Label used in the Figure 15/16 result tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            GatherStrategy::HostRelayedCopy => "Baseline",
            GatherStrategy::NumaDirect {
                link: TransferKind::Pcie,
            } => "NUMA(slow)",
            GatherStrategy::NumaDirect {
                link: TransferKind::NpuLink,
            } => "NUMA(fast)",
            GatherStrategy::DemandPaging {
                link: TransferKind::Pcie,
            } => "DemandPaging(PCIe)",
            GatherStrategy::DemandPaging {
                link: TransferKind::NpuLink,
            } => "DemandPaging",
        }
    }

    /// True if this strategy requires address-translation support on the NPU.
    #[must_use]
    pub fn needs_mmu(&self) -> bool {
        !matches!(self, GatherStrategy::HostRelayedCopy)
    }
}

/// Configuration of the embedding case study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingSimConfig {
    /// NPU architecture parameters (used for the MLP phase).
    pub npu: NpuConfig,
    /// MMU design point used for remote-access translation.
    pub mmu: MmuConfig,
    /// Local memory system.
    pub dram: DramConfig,
    /// System interconnect parameters.
    pub interconnect: InterconnectConfig,
    /// Number of NPUs sharing the embedding tables.
    pub num_npus: u16,
    /// Per-NPU local memory capacity.
    pub npu_memory_bytes: u64,
    /// Seed of the embedding-index generator.
    pub seed: u64,
    /// Fixed framework/runtime overhead charged per inference step ("Else").
    pub framework_overhead_cycles: u64,
}

impl EmbeddingSimConfig {
    /// The paper's setup (Table I) with the given MMU design point.
    #[must_use]
    pub fn with_mmu(mmu: MmuConfig) -> Self {
        EmbeddingSimConfig {
            npu: NpuConfig::tpu_like(),
            mmu,
            dram: DramConfig::table1(),
            interconnect: InterconnectConfig::table1(),
            num_npus: 4,
            npu_memory_bytes: 32 << 30,
            seed: 0x4e65_754d_4d55,
            framework_overhead_cycles: 5_000,
        }
    }
}

/// Latency breakdown of one inference step on one NPU (the Figure 15 stack).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingPhaseBreakdown {
    /// Cycles spent in the MLP GEMMs.
    pub gemm_cycles: u64,
    /// Cycles spent in feature interaction / element-wise reduction.
    pub reduction_cycles: u64,
    /// Fixed framework overhead ("Else").
    pub other_cycles: u64,
    /// Cycles spent gathering embeddings (local + remote).
    pub embedding_gather_cycles: u64,
    /// Number of embedding vectors gathered.
    pub vectors_gathered: u64,
    /// Vectors that had to come from a remote node.
    pub remote_vectors: u64,
    /// Bytes moved across the system interconnect.
    pub interconnect_bytes: u64,
    /// Pages migrated by demand paging.
    pub pages_migrated: u64,
    /// Translation requests issued during the gather (0 for the MMU-less
    /// baseline).
    pub translation_requests: u64,
}

impl EmbeddingPhaseBreakdown {
    /// Total latency of the step.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.gemm_cycles + self.reduction_cycles + self.other_cycles + self.embedding_gather_cycles
    }

    /// Fraction of the step spent gathering embeddings.
    #[must_use]
    pub fn gather_fraction(&self) -> f64 {
        if self.total_cycles() == 0 {
            return 0.0;
        }
        self.embedding_gather_cycles as f64 / self.total_cycles() as f64
    }
}

/// The embedding case-study simulator.
#[derive(Debug, Clone)]
pub struct EmbeddingSimulator {
    config: EmbeddingSimConfig,
}

impl EmbeddingSimulator {
    /// Creates a simulator with the given configuration.
    #[must_use]
    pub fn new(config: EmbeddingSimConfig) -> Self {
        EmbeddingSimulator { config }
    }

    /// The simulator's configuration.
    #[must_use]
    pub fn config(&self) -> &EmbeddingSimConfig {
        &self.config
    }

    /// Simulates one inference step of `model` at the given minibatch size
    /// with the given gather strategy, from the perspective of NPU 0.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is inconsistent or the operands
    /// cannot be mapped.
    pub fn simulate(
        &self,
        model: &EmbeddingModel,
        batch: u64,
        strategy: GatherStrategy,
    ) -> Result<EmbeddingPhaseBreakdown, SimError> {
        if self.config.num_npus == 0 {
            return Err(SimError::InvalidConfig {
                reason: "at least one NPU is required".into(),
            });
        }
        if batch == 0 {
            return Err(SimError::InvalidConfig {
                reason: "batch size must be positive".into(),
            });
        }
        let cfg = &self.config;
        let local_node = MemNode::Npu(0);
        let batch_share = batch.div_ceil(u64::from(cfg.num_npus)).max(1);

        // 1. Dense (MLP) phase: data-parallel over local operands. When the
        //    NPU has an MMU, the MLP tile fetches are translated through it as
        //    well (the Figure 16 normalization depends on this); the MMU-less
        //    baseline accesses its physically addressed local memory directly,
        //    which the oracle models.
        let mlp_mmu = if strategy.needs_mmu() {
            cfg.mmu
        } else {
            MmuConfig::oracle()
        };
        let mlp_layers = model.mlp_layers(batch_share);
        let dense_sim = DenseSimulator::new(DenseSimConfig {
            npu: cfg.npu,
            dram: cfg.dram,
            node: local_node,
            memory_capacity_bytes: cfg.npu_memory_bytes,
            collect_traces: false,
            trace_window_cycles: 1000,
            mmu: mlp_mmu,
        });
        let gemm_cycles = dense_sim.simulate_workload(&mlp_layers)?.total_cycles;

        // 2. Reduction / feature interaction: element-wise work over the
        //    gathered vectors on the NPU's vector units.
        let emb_dim = model.tables().first().map_or(64, |t| t.dim);
        let elementwise_ops = batch_share * model.lookups_per_sample() * emb_dim;
        let reduction_cycles = elementwise_ops.div_ceil(128) + 200;

        // 3. Embedding gather phase.
        let mut memory = PhysicalMemory::with_npus(cfg.num_npus, cfg.npu_memory_bytes);
        let mut space = AddressSpace::new("embedding-system");
        let page_size = cfg.mmu.page_size;
        let mut segments = Vec::new();
        for (i, table) in model.tables().iter().enumerate() {
            let owner = MemNode::Npu((i % cfg.num_npus as usize) as u16);
            let seg = space.alloc_segment(
                table.name.clone(),
                table.table_bytes(),
                SegmentOptions::new(owner, page_size).lazy(),
                &mut memory,
            )?;
            segments.push((seg, owner, table.vector_bytes()));
        }

        let mut translator = cfg.mmu.translator();
        let mut copy_engine = CopyEngine::new(cfg.interconnect);
        let mut local_dram = DramModel::new(cfg.dram);

        let mut gather_end = 0u64;
        let mut issue_cycle = 0u64;
        let mut vectors = 0u64;
        let mut remote_vectors = 0u64;
        let mut interconnect_bytes = 0u64;
        let mut pages_migrated = 0u64;
        let mut host_relayed_remote_bytes: Vec<u64> = vec![0; cfg.num_npus as usize];

        // Lookups are streamed straight from the seeded generator — the same
        // `(table, row)` sequence `generate_lookups` would materialize,
        // without the per-minibatch index buffers. Consecutive lookups that
        // land on the same page of the same table form a run for the
        // coalesced translation path (NUMA gathers only; a demand-paging
        // migration invalidates translation state mid-run).
        let page_shift = page_size.bytes().trailing_zeros();
        let mut stream = model.lookup_stream(batch_share, cfg.seed).peekable();
        while let Some((table_idx, row)) = stream.next() {
            let (seg, owner, vector_bytes) = &segments[table_idx];
            vectors += 1;
            let va = seg.start().add(row * *vector_bytes);
            // The table shard is resident on its owning node; materialize
            // the mapping (this models residency, not a data transfer).
            space.ensure_mapped(va, &mut memory)?;
            let is_remote = *owner != local_node;
            if is_remote {
                remote_vectors += 1;
            }

            match strategy {
                GatherStrategy::HostRelayedCopy => {
                    // The MMU-less NPU cannot address remote memory at
                    // all; the CPU batches the remote vectors per source
                    // NPU and relays them through pinned host memory.
                    if is_remote {
                        let src = owner.npu_index().unwrap_or(0) as usize;
                        host_relayed_remote_bytes[src] += *vector_bytes;
                    } else {
                        let done = local_dram.schedule_transfer(0, *vector_bytes);
                        gather_end = gather_end.max(done);
                    }
                }
                GatherStrategy::NumaDirect { link } => {
                    // Absorb the consecutive lookups sharing this page into
                    // one run. Later lookups of the run skip their (no-op)
                    // `ensure_mapped`: the page is mapped by the first one.
                    let mut count = 1u64;
                    while let Some(&(next_table, next_row)) = stream.peek() {
                        if next_table != table_idx {
                            break;
                        }
                        let next_va = seg.start().add(next_row * *vector_bytes);
                        if next_va.raw() >> page_shift != va.raw() >> page_shift {
                            break;
                        }
                        stream.next();
                        vectors += 1;
                        if is_remote {
                            remote_vectors += 1;
                        }
                        count += 1;
                    }
                    let mut remaining = count;
                    while remaining > 0 {
                        let out = translate_gather_run(
                            translator.as_mut(),
                            space.page_table(),
                            va,
                            remaining,
                            &mut issue_cycle,
                        );
                        let done = if is_remote {
                            interconnect_bytes += out.consumed * *vector_bytes;
                            let mut last = 0;
                            for j in 0..out.consumed {
                                last =
                                    copy_engine.numa_access(out.complete(j), *vector_bytes, link);
                            }
                            last
                        } else {
                            local_dram.schedule_run(
                                out.first.complete_cycle,
                                out.complete_stride,
                                out.consumed,
                                *vector_bytes,
                                *vector_bytes,
                                *vector_bytes,
                            )
                        };
                        gather_end = gather_end.max(done);
                        remaining -= out.consumed;
                    }
                }
                GatherStrategy::DemandPaging { link } => {
                    let outcome = translate_gather_run(
                        translator.as_mut(),
                        space.page_table(),
                        va,
                        1,
                        &mut issue_cycle,
                    )
                    .first;
                    let mut ready = outcome.complete_cycle;
                    let translation = space.translate(va)?;
                    if translation.node != local_node {
                        // Far fault: migrate the whole page into local
                        // memory before accessing it.
                        let page_bytes = page_size.bytes();
                        interconnect_bytes += page_bytes;
                        pages_migrated += 1;
                        ready = copy_engine.page_migration(ready, page_bytes, link);
                        space.migrate_page(va, local_node, &mut memory)?;
                        translator.invalidate_page(va);
                    }
                    let done = local_dram.schedule_transfer(ready, *vector_bytes);
                    gather_end = gather_end.max(done);
                }
            }
        }

        if matches!(strategy, GatherStrategy::HostRelayedCopy) {
            // Issue one staged copy per remote source NPU holding data.
            for bytes in host_relayed_remote_bytes.iter().copied().filter(|b| *b > 0) {
                interconnect_bytes += 2 * bytes; // two PCIe hops
                let done = copy_engine.host_relayed_copy(0, bytes);
                gather_end = gather_end.max(done);
            }
        }

        let translation_requests = if strategy.needs_mmu() {
            translator.stats().requests
        } else {
            0
        };

        // One `sim/embed/gather` trace span for the whole gather phase,
        // payload = vectors gathered.
        if let Some(sink) = neummu_trace::global() {
            sink.emit(neummu_trace::Event {
                kind: sink.kind("sim/embed/gather"),
                asid: 0,
                start: 0,
                end: gather_end,
                payload: vectors,
            });
        }

        Ok(EmbeddingPhaseBreakdown {
            gemm_cycles,
            reduction_cycles,
            other_cycles: cfg.framework_overhead_cycles,
            embedding_gather_cycles: gather_end,
            vectors_gathered: vectors,
            remote_vectors,
            interconnect_bytes,
            pages_migrated,
            translation_requests,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neummu_vmem::PageSize;

    fn small_model() -> EmbeddingModel {
        // NCF-shaped but with fewer rows to keep tests fast; row count does
        // not change the gather path, only footprint.
        EmbeddingModel::ncf()
    }

    fn config(mmu: MmuConfig) -> EmbeddingSimConfig {
        EmbeddingSimConfig::with_mmu(mmu)
    }

    #[test]
    fn numa_beats_host_relayed_copies() {
        let sim = EmbeddingSimulator::new(config(MmuConfig::neummu()));
        let model = small_model();
        for batch in [1u64, 8] {
            let baseline = sim
                .simulate(&model, batch, GatherStrategy::HostRelayedCopy)
                .unwrap();
            let numa_slow = sim
                .simulate(
                    &model,
                    batch,
                    GatherStrategy::NumaDirect {
                        link: TransferKind::Pcie,
                    },
                )
                .unwrap();
            let numa_fast = sim
                .simulate(
                    &model,
                    batch,
                    GatherStrategy::NumaDirect {
                        link: TransferKind::NpuLink,
                    },
                )
                .unwrap();
            assert!(
                baseline.embedding_gather_cycles > numa_slow.embedding_gather_cycles,
                "batch {batch}: baseline {} vs numa_slow {}",
                baseline.embedding_gather_cycles,
                numa_slow.embedding_gather_cycles
            );
            assert!(numa_slow.embedding_gather_cycles >= numa_fast.embedding_gather_cycles);
            assert!(baseline.total_cycles() > numa_fast.total_cycles());
        }
    }

    #[test]
    fn gather_dominates_the_baseline_latency() {
        let sim = EmbeddingSimulator::new(config(MmuConfig::neummu()));
        let baseline = sim
            .simulate(&small_model(), 8, GatherStrategy::HostRelayedCopy)
            .unwrap();
        assert!(
            baseline.gather_fraction() > 0.3,
            "fraction {}",
            baseline.gather_fraction()
        );
    }

    #[test]
    fn demand_paging_with_large_pages_overfetches() {
        let model = small_model();
        let small_pages = EmbeddingSimulator::new(config(MmuConfig::neummu()))
            .simulate(
                &model,
                4,
                GatherStrategy::DemandPaging {
                    link: TransferKind::NpuLink,
                },
            )
            .unwrap();
        let large_pages =
            EmbeddingSimulator::new(config(MmuConfig::neummu().with_page_size(PageSize::Size2M)))
                .simulate(
                    &model,
                    4,
                    GatherStrategy::DemandPaging {
                        link: TransferKind::NpuLink,
                    },
                )
                .unwrap();
        assert!(large_pages.interconnect_bytes > 50 * small_pages.interconnect_bytes);
        assert!(large_pages.embedding_gather_cycles > small_pages.embedding_gather_cycles);
        assert_eq!(small_pages.pages_migrated, small_pages.remote_vectors);
    }

    #[test]
    fn oracle_translation_is_no_slower_than_iommu_for_numa_gathers() {
        let model = small_model();
        let strategy = GatherStrategy::NumaDirect {
            link: TransferKind::NpuLink,
        };
        let oracle = EmbeddingSimulator::new(config(MmuConfig::oracle()))
            .simulate(&model, 64, strategy)
            .unwrap();
        let neummu = EmbeddingSimulator::new(config(MmuConfig::neummu()))
            .simulate(&model, 64, strategy)
            .unwrap();
        let iommu = EmbeddingSimulator::new(config(MmuConfig::baseline_iommu()))
            .simulate(&model, 64, strategy)
            .unwrap();
        assert!(oracle.embedding_gather_cycles <= neummu.embedding_gather_cycles);
        assert!(neummu.embedding_gather_cycles <= iommu.embedding_gather_cycles);
    }

    #[test]
    fn mmu_less_baseline_issues_no_translations() {
        let sim = EmbeddingSimulator::new(config(MmuConfig::neummu()));
        let baseline = sim
            .simulate(&small_model(), 2, GatherStrategy::HostRelayedCopy)
            .unwrap();
        assert_eq!(baseline.translation_requests, 0);
        let numa = sim
            .simulate(
                &small_model(),
                2,
                GatherStrategy::NumaDirect {
                    link: TransferKind::Pcie,
                },
            )
            .unwrap();
        assert!(numa.translation_requests > 0);
        assert_eq!(numa.translation_requests, numa.vectors_gathered);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut cfg = config(MmuConfig::neummu());
        cfg.num_npus = 0;
        assert!(EmbeddingSimulator::new(cfg)
            .simulate(&small_model(), 1, GatherStrategy::HostRelayedCopy)
            .is_err());
        let sim = EmbeddingSimulator::new(config(MmuConfig::neummu()));
        assert!(sim
            .simulate(&small_model(), 0, GatherStrategy::HostRelayedCopy)
            .is_err());
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(GatherStrategy::HostRelayedCopy.label(), "Baseline");
        assert_eq!(
            GatherStrategy::NumaDirect {
                link: TransferKind::Pcie
            }
            .label(),
            "NUMA(slow)"
        );
        assert_eq!(
            GatherStrategy::NumaDirect {
                link: TransferKind::NpuLink
            }
            .label(),
            "NUMA(fast)"
        );
        assert!(!GatherStrategy::HostRelayedCopy.needs_mmu());
        assert!(GatherStrategy::DemandPaging {
            link: TransferKind::Pcie
        }
        .needs_mmu());
    }
}
