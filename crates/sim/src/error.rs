//! Error type of the integrated simulator.

use std::error::Error;
use std::fmt;

use neummu_npu::NpuError;
use neummu_vmem::VmemError;

/// Errors produced while setting up or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The NPU model rejected a layer or configuration.
    Npu(NpuError),
    /// The virtual-memory substrate reported an error (out of memory,
    /// double-mapping, …).
    Vmem(VmemError),
    /// A simulation was configured inconsistently.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Npu(e) => write!(f, "npu model error: {e}"),
            SimError::Vmem(e) => write!(f, "virtual memory error: {e}"),
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid simulation configuration: {reason}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Npu(e) => Some(e),
            SimError::Vmem(e) => Some(e),
            SimError::InvalidConfig { .. } => None,
        }
    }
}

impl From<NpuError> for SimError {
    fn from(value: NpuError) -> Self {
        SimError::Npu(value)
    }
}

impl From<VmemError> for SimError {
    fn from(value: VmemError) -> Self {
        SimError::Vmem(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let npu_err: SimError = NpuError::InvalidConfig { reason: "x".into() }.into();
        assert!(npu_err.to_string().contains("npu model error"));
        let vmem_err: SimError = VmemError::SegmentNotFound {
            name: "weights".into(),
        }
        .into();
        assert!(vmem_err.to_string().contains("virtual memory error"));
        assert!(Error::source(&vmem_err).is_some());
        let cfg = SimError::InvalidConfig {
            reason: "zero npus".into(),
        };
        assert!(Error::source(&cfg).is_none());
    }
}
