//! Data-driven characterization experiments: Figures 6, 7 and 14.

use serde::{Deserialize, Serialize};

use neummu_mmu::MmuConfig;
use neummu_workloads::{DenseWorkload, WorkloadId};

use neummu_npu::{NpuConfig, TensorKind};
use neummu_vmem::PageSize;

use crate::dense::{DenseSimConfig, DenseSimulator};
use crate::error::SimError;
use crate::experiments::ExperimentScale;
use crate::report::ResultTable;
use crate::runner::ExperimentRunner;

/// One row of Figure 6: per-tile page divergence of a workload/batch point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageDivergenceRow {
    /// Workload identity.
    pub workload: WorkloadId,
    /// Batch size.
    pub batch: u64,
    /// Maximum distinct 4 KB pages touched by a single tile fetch.
    pub max_pages: u64,
    /// Average distinct 4 KB pages touched per tile fetch.
    pub avg_pages: f64,
}

/// Figure 6 result: page divergence per DMA tile across the dense suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig06Result {
    /// One row per `(workload, batch)` point.
    pub rows: Vec<PageDivergenceRow>,
}

impl Fig06Result {
    /// Renders the result as a table.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Figure 6: distinct 4KB pages per DMA tile",
            &["Workload", "Batch", "Max pages/tile", "Avg pages/tile"],
        );
        for row in &self.rows {
            table.push_row(&[
                row.workload.label().to_string(),
                format!("b{:02}", row.batch),
                row.max_pages.to_string(),
                format!("{:.0}", row.avg_pages),
            ]);
        }
        table
    }
}

/// Runs the Figure 6 experiment: page divergence is a property of the tiling
/// and the DMA, so the oracle MMU is used (the MMU choice cannot change it).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig06_page_divergence(scale: ExperimentScale) -> Result<Fig06Result, SimError> {
    fig06_page_divergence_on(&ExperimentRunner::serial(), scale)
}

/// [`fig06_page_divergence`] on a caller-provided runner. The oracle runs it
/// needs are exactly the memoized baselines of the performance sweeps, so on a
/// shared runner this experiment costs no extra simulation at all.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig06_page_divergence_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<Fig06Result, SimError> {
    let cells = scale.grid();
    let rows = runner.run_jobs("characterization/fig06", cells.len(), |i| {
        let (workload_id, batch) = cells[i];
        let result =
            runner.oracle_point(workload_id, batch, PageSize::Size4K, NpuConfig::tpu_like())?;
        Ok(PageDivergenceRow {
            workload: workload_id,
            batch,
            max_pages: result.max_pages_per_tile(),
            avg_pages: result.avg_pages_per_tile(),
        })
    })?;
    Ok(Fig06Result { rows })
}

/// Figure 7 result: translations requested per 1 000-cycle window over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig07Result {
    /// Workload the trace belongs to.
    pub workload: WorkloadId,
    /// Batch size.
    pub batch: u64,
    /// Window width in cycles.
    pub window_cycles: u64,
    /// Translations issued in each window.
    pub counts: Vec<u64>,
}

impl Fig07Result {
    /// Peak translations per window (the burst ceiling; at most the window
    /// width because the DMA issues one per cycle).
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of windows in which the DMA was bursting at more than half of
    /// its peak issue rate.
    #[must_use]
    pub fn bursty_fraction(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let threshold = self.window_cycles / 2;
        self.counts.iter().filter(|&&c| c > threshold).count() as f64 / self.counts.len() as f64
    }

    /// Renders (a prefix of) the series as a table.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            format!(
                "Figure 7: translations per {}-cycle window ({} b{:02})",
                self.window_cycles,
                self.workload.label(),
                self.batch
            ),
            &["Window start (cycles)", "Translations"],
        );
        for (i, count) in self.counts.iter().enumerate() {
            table.push_row(&[
                (i as u64 * self.window_cycles).to_string(),
                count.to_string(),
            ]);
        }
        table
    }
}

/// Runs the Figure 7 experiment for one workload (the paper shows CNN-1 and
/// RNN-1 at batch 1) under the baseline 4 KB oracle MMU.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig07_translation_bursts(
    workload_id: WorkloadId,
    batch: u64,
) -> Result<Fig07Result, SimError> {
    fig07_translation_bursts_on(&ExperimentRunner::serial(), workload_id, batch)
}

/// [`fig07_translation_bursts`] on a caller-provided runner. Trace-collecting
/// runs are not cacheable (they carry per-cycle state the baselines do not),
/// so this is a single profiled job.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig07_translation_bursts_on(
    runner: &ExperimentRunner,
    workload_id: WorkloadId,
    batch: u64,
) -> Result<Fig07Result, SimError> {
    let mut results = runner.run_jobs("characterization/fig07", 1, |_| {
        let config = DenseSimConfig::with_mmu(MmuConfig::oracle()).with_traces();
        let sim = DenseSimulator::new(config);
        let workload = DenseWorkload::new(workload_id);
        let result = sim.simulate_workload(&workload.layers(batch))?;
        let trace = result.trace.expect("traces were requested");
        Ok(Fig07Result {
            workload: workload_id,
            batch,
            window_cycles: trace.window_cycles,
            counts: trace.counts,
        })
    })?;
    Ok(results.remove(0))
}

/// Figure 14 result: the virtual-address windows touched by consecutive tiles.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct Fig14Result {
    /// Workload the trace belongs to.
    pub workload: WorkloadId,
    /// Batch size.
    pub batch: u64,
    /// `(tile index, operand, VA window start, VA window end)` per tile fetch.
    /// The operand kind serializes via its `Display` labels (`IA`/`W`/`OA`),
    /// keeping the artifact format identical to the historical string form.
    pub windows: Vec<(u64, TensorKind, u64, u64)>,
    /// True if the simulator's per-tile window trace overflowed its cap
    /// ([`crate::dense::TranslationTrace::WINDOW_CAP`]) and `windows` is a
    /// prefix of the real trace. Every workload the paper traces stays under
    /// the cap; the flag keeps a capped trace from silently passing as
    /// complete.
    pub windows_truncated: bool,
}

/// Hand-written (not derived) so that `windows_truncated` is serialized only
/// when set: the untruncated artifacts — all of today's — remain byte-
/// identical to the historical format, while a truncated trace says so in
/// its JSON.
impl Serialize for Fig14Result {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("workload".to_owned(), self.workload.to_value()),
            ("batch".to_owned(), self.batch.to_value()),
            ("windows".to_owned(), self.windows.to_value()),
        ];
        if self.windows_truncated {
            fields.push((
                "windows_truncated".to_owned(),
                self.windows_truncated.to_value(),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl Fig14Result {
    /// Renders the trace as a table, noting in the title when the window
    /// trace was truncated at the simulator's cap.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let truncation_note = if self.windows_truncated {
            " — TRUNCATED at the window cap"
        } else {
            ""
        };
        let mut table = ResultTable::new(
            format!(
                "Figure 14: virtual addresses of consecutive tiles ({}){truncation_note}",
                self.workload.label()
            ),
            &["Tile", "Operand", "VA start", "VA end"],
        );
        for (tile, kind, start, end) in &self.windows {
            table.push_row(&[
                tile.to_string(),
                kind.to_string(),
                format!("{start:#x}"),
                format!("{end:#x}"),
            ]);
        }
        table
    }

    /// True if, per operand, the windows advance monotonically (the streaming
    /// property the TPreg exploits).
    #[must_use]
    pub fn is_streaming(&self) -> bool {
        for kind in [TensorKind::InputActivation, TensorKind::Weight] {
            let mut last = 0u64;
            let mut last_tile = 0u64;
            for (tile, k, start, _) in &self.windows {
                if *k != kind {
                    continue;
                }
                // Restart detection: a new layer or a new sweep of the same
                // operand begins again at a lower address; only require
                // monotonicity within a consecutive run.
                if *start < last && *tile == last_tile + 1 {
                    continue;
                }
                if *tile == last_tile + 1 && *start < last {
                    return false;
                }
                last = *start;
                last_tile = *tile;
            }
        }
        true
    }
}

/// Runs the Figure 14 experiment (AlexNet, batch 1 in the paper).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig14_va_trace(workload_id: WorkloadId, batch: u64) -> Result<Fig14Result, SimError> {
    fig14_va_trace_on(&ExperimentRunner::serial(), workload_id, batch)
}

/// [`fig14_va_trace`] on a caller-provided runner (a single profiled job).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig14_va_trace_on(
    runner: &ExperimentRunner,
    workload_id: WorkloadId,
    batch: u64,
) -> Result<Fig14Result, SimError> {
    let mut results = runner.run_jobs("characterization/fig14", 1, |_| {
        let config = DenseSimConfig::with_mmu(MmuConfig::oracle()).with_traces();
        let sim = DenseSimulator::new(config);
        let workload = DenseWorkload::new(workload_id);
        let result = sim.simulate_workload(&workload.layers(batch))?;
        let trace = result.trace.expect("traces were requested");
        Ok(Fig14Result {
            workload: workload_id,
            batch,
            windows: trace.tile_va_windows,
            windows_truncated: trace.windows_truncated,
        })
    })?;
    Ok(results.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig06_reports_kilo_page_tiles_for_rnns() {
        let result = fig06_page_divergence(ExperimentScale::Smoke).unwrap();
        assert_eq!(result.rows.len(), 2);
        let rnn = result
            .rows
            .iter()
            .find(|r| r.workload == WorkloadId::Rnn2)
            .unwrap();
        // A ~5 MB weight tile covers on the order of 1.2K distinct pages.
        assert!(rnn.max_pages > 1000, "max pages {}", rnn.max_pages);
        assert!(rnn.avg_pages > 100.0);
        let table = result.to_table();
        assert_eq!(table.rows().len(), 2);
    }

    #[test]
    fn fig07_shows_full_rate_bursts() {
        let result = fig07_translation_bursts(WorkloadId::Cnn1, 1).unwrap();
        assert!(!result.counts.is_empty());
        // During a burst the DMA issues every cycle: the peak approaches the
        // window width.
        assert!(result.peak() > 900, "peak {}", result.peak());
        assert!(result.peak() <= result.window_cycles);
        assert!(result.bursty_fraction() > 0.0);
    }

    #[test]
    fn fig14_truncation_is_flagged_loudly_but_only_when_real() {
        let mut result = fig14_va_trace(WorkloadId::Cnn1, 1).unwrap();
        // The paper's traces stay under the cap: flag off, and the artifact
        // JSON is byte-identical to the historical three-field format.
        assert!(!result.windows_truncated);
        let json = serde_json::to_string(&result).unwrap();
        assert!(!json.contains("windows_truncated"));
        assert!(!result.to_table().title().contains("TRUNCATED"));
        // A truncated trace says so in both the JSON and the report table.
        result.windows_truncated = true;
        let json = serde_json::to_string(&result).unwrap();
        assert!(
            json.contains("\"windows_truncated\": true")
                || json.contains("\"windows_truncated\":true")
        );
        assert!(result.to_table().title().contains("TRUNCATED"));
    }

    #[test]
    fn fig14_trace_is_streaming() {
        let result = fig14_va_trace(WorkloadId::Cnn1, 1).unwrap();
        assert!(!result.windows.is_empty());
        assert!(result.is_streaming());
        let table = result.to_table();
        assert!(table.rows().len() >= result.windows.len().min(10));
    }
}
