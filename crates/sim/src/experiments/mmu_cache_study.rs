//! The Section IV-C MMU-cache design-space comparison: UPTC vs TPC.
//!
//! The paper compares a physically tagged unified page-table cache (UPTC)
//! against a virtually tagged translation path cache (TPC) by replaying the
//! page-table walks the NPU performs and measuring per-level hit rates and the
//! number of walk memory accesses each design eliminates. This experiment
//! rebuilds that comparison: the walk stream is the sequence of pages the
//! dense simulator actually walks under the NeuMMU configuration.

use serde::{Deserialize, Serialize};

use neummu_mmu::{MmuConfig, TranslationPathCache, UnifiedPageTableCache, WalkCache};
use neummu_npu::{DmaEngine, NpuConfig, TilingPlan};
use neummu_vmem::{AddressSpace, PhysicalMemory, SegmentOptions, VirtAddr};
use neummu_workloads::{DenseWorkload, WorkloadId};

use crate::error::SimError;
use crate::experiments::ExperimentScale;
use crate::report::{pct, ResultTable};
use crate::runner::ExperimentRunner;

/// Per-workload comparison of the two MMU-cache organizations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MmuCacheRow {
    /// Workload identity.
    pub workload: WorkloadId,
    /// Batch size.
    pub batch: u64,
    /// UPTC entry hit rate.
    pub uptc_hit_rate: f64,
    /// TPC hit rates at the L4/L3/L2 depths.
    pub tpc_depth_rates: (f64, f64, f64),
    /// Walk memory accesses remaining with the UPTC.
    pub uptc_accesses: u64,
    /// Walk memory accesses remaining with the TPC.
    pub tpc_accesses: u64,
}

/// Result of the UPTC-vs-TPC study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MmuCacheStudyResult {
    /// One row per `(workload, batch)` point.
    pub rows: Vec<MmuCacheRow>,
}

impl MmuCacheStudyResult {
    /// Fraction of page-table reads that the TPC eliminates relative to the
    /// UPTC (aggregated over all rows); positive when the TPC is better.
    #[must_use]
    pub fn tpc_walk_reduction_vs_uptc(&self) -> f64 {
        let uptc: u64 = self.rows.iter().map(|r| r.uptc_accesses).sum();
        let tpc: u64 = self.rows.iter().map(|r| r.tpc_accesses).sum();
        if uptc == 0 {
            return 0.0;
        }
        1.0 - tpc as f64 / uptc as f64
    }

    /// Renders the result as a table.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Section IV-C: UPTC vs TPC translation caching",
            &[
                "Workload",
                "Batch",
                "UPTC hit rate",
                "TPC L4",
                "TPC L3",
                "TPC L2",
                "UPTC walk reads",
                "TPC walk reads",
            ],
        );
        for row in &self.rows {
            table.push_row(&[
                row.workload.label().to_string(),
                format!("b{:02}", row.batch),
                pct(row.uptc_hit_rate),
                pct(row.tpc_depth_rates.0),
                pct(row.tpc_depth_rates.1),
                pct(row.tpc_depth_rates.2),
                row.uptc_accesses.to_string(),
                row.tpc_accesses.to_string(),
            ]);
        }
        table
    }
}

/// Number of entries given to each cache organization in the comparison
/// (small, as in the paper's discussion of lightweight designs).
const CACHE_ENTRIES: usize = 16;

/// Runs the UPTC-vs-TPC comparison.
///
/// The walk stream replayed into the caches is the page-granular address
/// stream of every tile fetch (the pages a translation engine would walk when
/// its TLB cannot keep up with the burst).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(scale: ExperimentScale) -> Result<MmuCacheStudyResult, SimError> {
    run_on(&ExperimentRunner::serial(), scale)
}

/// [`run`] on a caller-provided runner: one job per `(workload, batch)` cell,
/// each replaying its own walk stream into private cache instances.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<MmuCacheStudyResult, SimError> {
    let npu = NpuConfig::tpu_like();
    let mmu = MmuConfig::neummu();
    let dma = DmaEngine::new(npu.dma);
    let cells = scale.grid();

    let rows = runner.run_jobs("mmu_cache/uptc_vs_tpc", cells.len(), |i| {
        let (workload_id, batch) = cells[i];
        let workload = DenseWorkload::new(workload_id);
        let mut memory = PhysicalMemory::with_npus(1, 64 << 30);
        let mut space = AddressSpace::new("walk-replay");
        let mut uptc = UnifiedPageTableCache::new(CACHE_ENTRIES);
        let mut tpc = TranslationPathCache::new(CACHE_ENTRIES);
        let mut uptc_accesses = 0u64;
        let mut tpc_accesses = 0u64;

        for (layer_index, layer) in workload.layers(batch).iter().enumerate() {
            let plan = TilingPlan::for_layer(layer, &npu)?;
            let opts = SegmentOptions::new(neummu_vmem::MemNode::Npu(0), mmu.page_size);
            let ia = space.alloc_segment(
                format!("l{layer_index}_ia"),
                plan.ia_segment_bytes().max(1),
                opts,
                &mut memory,
            )?;
            let w = space.alloc_segment(
                format!("l{layer_index}_w"),
                plan.w_segment_bytes().max(1),
                opts,
                &mut memory,
            )?;
            for tile in plan.tiles() {
                for (fetch, base) in [(tile.ia_fetch, ia.start()), (tile.w_fetch, w.start())]
                    .into_iter()
                    .filter_map(|(f, b)| f.map(|f| (f, b)))
                {
                    // Walk once per distinct page of the fetch window.
                    let first_page = fetch.offset >> 12;
                    let last_page = (fetch.end().saturating_sub(1)) >> 12;
                    for page in first_page..=last_page {
                        let va = VirtAddr::new(base.raw() + (page << 12));
                        let _ = dma; // the DMA defines the stream granularity
                        let path = space.walk(va);
                        uptc_accesses += u64::from(uptc.access(&path).levels_read);
                        tpc_accesses += u64::from(tpc.access(&path).levels_read);
                    }
                }
            }
        }

        Ok(MmuCacheRow {
            workload: workload_id,
            batch,
            uptc_hit_rate: uptc.hit_rate(),
            tpc_depth_rates: tpc.depth_hit_rates(),
            uptc_accesses,
            tpc_accesses,
        })
    })?;
    Ok(MmuCacheStudyResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpc_is_at_least_as_effective_as_uptc() {
        let result = run(ExperimentScale::Smoke).unwrap();
        assert_eq!(result.rows.len(), 2);
        for row in &result.rows {
            assert!(row.tpc_accesses <= row.uptc_accesses, "{:?}", row.workload);
            assert!(row.tpc_depth_rates.0 >= row.tpc_depth_rates.2);
            assert!(row.uptc_hit_rate > 0.5);
        }
        assert!(result.tpc_walk_reduction_vs_uptc() >= 0.0);
        assert!(result.to_table().rows().len() == 2);
    }
}
