//! One experiment runner per table/figure of the paper's evaluation.
//!
//! Each submodule reproduces a group of related figures:
//!
//! * [`table1`] — the Table I configuration dump.
//! * [`characterization`] — the data-driven characterization figures:
//!   per-tile page divergence (Figure 6), translation-burst time series
//!   (Figure 7) and the tile virtual-address trace (Figure 14).
//! * [`performance`] — the performance/energy figures: baseline IOMMU
//!   (Figure 8), PRMB sweep (Figure 10), PTW sweep with and without PRMB
//!   (Figures 11 and 12a), the energy/performance trade-off (Figure 12b), the
//!   TPreg hit rates (Figure 13), the headline NeuMMU summary (Section IV-D),
//!   large pages (Section VI-A), the spatial-array NPU (Section VI-B) and the
//!   sensitivity study (Section VI-C).
//! * [`mmu_cache_study`] — the UPTC vs TPC design-space comparison
//!   (Section IV-C).
//! * [`recommender`] — the embedding-layer case study: the NUMA latency
//!   breakdown (Figure 15) and demand paging with small vs large pages
//!   (Figure 16).
//! * [`multi_tenant`] — beyond the paper: the tenant-count sweep measuring
//!   per-tenant slowdown and TLB/walker contention when one NPU's
//!   translation front end is time-shared between ASID-tagged tenants.
//! * [`serving`] — beyond the paper: open-loop datacenter serving. Seeded
//!   arrival generators feed bounded admission queues; a load × policy sweep
//!   reports exact per-tenant SLO percentiles and goodput under overload.
//! * [`resilience`] — beyond the paper: device-fault injection. A fault-rate
//!   × recovery-mechanism sweep reports availability/goodput curves, exact
//!   recovery-latency percentiles and faults-disabled mechanism overhead.
//!
//! Every runner takes an [`ExperimentScale`]: `Full` regenerates the figure
//! over the complete benchmark suite (what the `neummu-experiments` binary
//! does), `Smoke` runs a reduced subset so that tests and Criterion benches
//! finish quickly while exercising the same code paths.

pub mod characterization;
pub mod mmu_cache_study;
pub mod multi_tenant;
pub mod performance;
pub mod recommender;
pub mod resilience;
pub mod serving;
pub mod table1;

use serde::{Deserialize, Serialize};

use neummu_workloads::{WorkloadId, DENSE_BATCH_SIZES};

/// How much of the benchmark suite an experiment covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// The complete suite used by the paper (all workloads, all batch sizes).
    Full,
    /// A reduced subset for tests and benchmarks: one CNN and one RNN at
    /// batch 1.
    Smoke,
}

impl ExperimentScale {
    /// The dense workloads covered at this scale.
    #[must_use]
    pub fn workloads(self) -> Vec<WorkloadId> {
        match self {
            ExperimentScale::Full => WorkloadId::ALL.to_vec(),
            ExperimentScale::Smoke => vec![WorkloadId::Cnn1, WorkloadId::Rnn2],
        }
    }

    /// The batch sizes covered at this scale.
    #[must_use]
    pub fn batches(self) -> Vec<u64> {
        match self {
            ExperimentScale::Full => DENSE_BATCH_SIZES.to_vec(),
            ExperimentScale::Smoke => vec![1],
        }
    }

    /// The `(workload, batch)` grid covered at this scale, in figure order —
    /// the canonical cell enumeration every experiment family iterates. Job
    /// order (and therefore artifact row order and oracle-cache key sharing)
    /// follows this single definition.
    #[must_use]
    pub fn grid(self) -> Vec<(WorkloadId, u64)> {
        let batches = self.batches();
        self.workloads()
            .into_iter()
            .flat_map(|workload| batches.iter().map(move |&batch| (workload, batch)))
            .collect()
    }

    /// A label for artifact file names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExperimentScale::Full => "full",
            ExperimentScale::Smoke => "smoke",
        }
    }
}

/// A single `(workload, batch)` point of the dense suite with a measured
/// normalized performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensePoint {
    /// Workload identity.
    pub workload: WorkloadId,
    /// Batch size.
    pub batch: u64,
    /// Performance normalized to the oracular MMU (1.0 = no overhead).
    pub normalized_perf: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_enumerate_workloads_and_batches() {
        assert_eq!(ExperimentScale::Full.workloads().len(), 6);
        assert_eq!(ExperimentScale::Full.batches(), vec![1, 4, 8]);
        assert_eq!(ExperimentScale::Smoke.workloads().len(), 2);
        assert_eq!(ExperimentScale::Smoke.batches(), vec![1]);
        assert_eq!(ExperimentScale::Smoke.label(), "smoke");
    }

    #[test]
    fn grid_is_workload_major_batch_minor() {
        assert_eq!(
            ExperimentScale::Smoke.grid(),
            vec![(WorkloadId::Cnn1, 1), (WorkloadId::Rnn2, 1)]
        );
        let full = ExperimentScale::Full.grid();
        assert_eq!(full.len(), 18);
        assert_eq!(full[0], (WorkloadId::Cnn1, 1));
        assert_eq!(full[2], (WorkloadId::Cnn1, 8));
        assert_eq!(full[3], (WorkloadId::Cnn2, 1));
    }
}
