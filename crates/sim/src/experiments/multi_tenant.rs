//! The multi-tenant contention experiment family.
//!
//! NeuMMU's evaluation assumes the NPU is owned by a single model; a serving
//! deployment time-shares it. This family opens that scenario axis:
//!
//! * a **tenant-count sweep** (1 → 8 at full scale) over a fixed,
//!   deterministic workload mix, every sweep point a shared-resource run of
//!   the [`TenantScheduler`],
//! * **per-tenant slowdown** — each tenant's shared-run completion divided by
//!   its memoized contention-free baseline
//!   ([`ExperimentRunner::isolated_tenant_point`]), and
//! * **contention breakdowns** — per-tenant IOTLB hit rates (shared vs
//!   isolated) and each tenant's share of the total walker occupancy, the
//!   counter-validated story of *where* the slowdown comes from.

use serde::{Deserialize, Serialize};

use neummu_mmu::MmuConfig;
use neummu_workloads::WorkloadId;

use crate::error::SimError;
use crate::experiments::ExperimentScale;
use crate::multi_tenant::{MultiTenantConfig, TenantScheduler, TenantSpec, TenantStats};
use crate::report::{norm, pct, ResultTable};
use crate::runner::ExperimentRunner;

/// The deterministic tenant mix of the sweep: the scale's workloads, cycled
/// at batch 1 (batch 1 keeps the full 1→8 sweep tractable; the batch axis is
/// already covered by the single-tenant figures).
///
/// # Example
///
/// ```
/// use neummu_sim::experiments::{multi_tenant, ExperimentScale};
///
/// let mix = multi_tenant::tenant_mix(ExperimentScale::Smoke, 3);
/// let labels: Vec<String> = mix.iter().map(|t| t.label()).collect();
/// assert_eq!(labels, ["CNN-1/b01", "RNN-2/b01", "CNN-1/b01"]);
/// ```
#[must_use]
pub fn tenant_mix(scale: ExperimentScale, tenant_count: usize) -> Vec<TenantSpec> {
    let workloads = scale.workloads();
    (0..tenant_count)
        .map(|i| TenantSpec::new(workloads[i % workloads.len()], 1))
        .collect()
}

/// The tenant counts swept at each scale (1 → 8 at full scale).
#[must_use]
pub fn tenant_counts(scale: ExperimentScale) -> Vec<usize> {
    match scale {
        ExperimentScale::Full => (1..=8).collect(),
        ExperimentScale::Smoke => vec![1, 2],
    }
}

/// One tenant of one sweep point, with its shared-run counters and its
/// contention-free baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantContentionRow {
    /// How many tenants shared the NPU in this sweep point.
    pub tenant_count: usize,
    /// The tenant's workload/batch.
    pub tenant: TenantSpec,
    /// Counters of the shared (contended) run.
    pub shared: TenantStats,
    /// Counters of the tenant's isolated (contention-free) baseline run.
    pub isolated: TenantStats,
}

impl TenantContentionRow {
    /// Per-tenant slowdown: shared completion cycles over isolated completion
    /// cycles (≥ 1.0 up to scheduling rounding).
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        if self.isolated.completion_cycle == 0 {
            return 0.0;
        }
        self.shared.completion_cycle as f64 / self.isolated.completion_cycle as f64
    }

    /// IOTLB hit rate lost to cross-tenant capacity contention (isolated
    /// minus shared).
    #[must_use]
    pub fn tlb_hit_rate_loss(&self) -> f64 {
        self.isolated.tlb_hit_rate() - self.shared.tlb_hit_rate()
    }
}

/// One sweep point's aggregate: the makespan of running the mix to
/// completion on one NPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepPointSummary {
    /// Tenant count of the point.
    pub tenant_count: usize,
    /// Cycle at which the last tenant finished.
    pub makespan_cycles: u64,
}

/// The multi-tenant tenant-count sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantSweepResult {
    /// Scheduling burst (transactions per tenant turn) the sweep used.
    pub burst_transactions: u64,
    /// One row per `(tenant count, tenant)`.
    pub rows: Vec<TenantContentionRow>,
    /// One summary per tenant count.
    pub points: Vec<SweepPointSummary>,
}

impl MultiTenantSweepResult {
    /// The rows of one sweep point.
    pub fn rows_of(&self, tenant_count: usize) -> impl Iterator<Item = &TenantContentionRow> {
        self.rows
            .iter()
            .filter(move |row| row.tenant_count == tenant_count)
    }

    /// Mean per-tenant slowdown of one sweep point.
    #[must_use]
    pub fn mean_slowdown(&self, tenant_count: usize) -> f64 {
        let slowdowns: Vec<f64> = self.rows_of(tenant_count).map(|r| r.slowdown()).collect();
        crate::report::mean(&slowdowns)
    }

    /// Renders the sweep as a table: one row per tenant per sweep point,
    /// with the slowdown and the TLB/walker contention breakdowns.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            format!(
                "Multi-tenant sweep: per-tenant slowdown vs isolated run \
                 (round-robin, burst {})",
                self.burst_transactions
            ),
            &[
                "Tenants",
                "ASID",
                "Tenant",
                "Slowdown",
                "TLB hit (shared)",
                "TLB hit (isolated)",
                "Walker share",
                "Stall cycles",
            ],
        );
        for point in &self.points {
            let point_rows: Vec<&TenantContentionRow> = self.rows_of(point.tenant_count).collect();
            let walk_total: u64 = point_rows.iter().map(|r| r.shared.walk_levels_read).sum();
            for row in &point_rows {
                let walker_share = if walk_total == 0 {
                    0.0
                } else {
                    row.shared.walk_levels_read as f64 / walk_total as f64
                };
                table.push_row(&[
                    point.tenant_count.to_string(),
                    row.shared.asid.to_string(),
                    row.tenant.label(),
                    norm(row.slowdown()),
                    pct(row.shared.tlb_hit_rate()),
                    pct(row.isolated.tlb_hit_rate()),
                    pct(walker_share),
                    row.shared.stall_cycles.to_string(),
                ]);
            }
        }
        table
    }

    /// Renders the per-tenant counter table of the most-contended sweep point
    /// (the largest tenant count) — the raw event counts behind the
    /// breakdowns.
    #[must_use]
    pub fn counters_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Per-tenant counters (most-contended sweep point)",
            &[
                "ASID",
                "Tenant",
                "Requests",
                "TLB hits",
                "Merged",
                "Walks",
                "Walk levels",
                "Stall cycles",
                "Final TLB entries",
                "Completion cycle",
            ],
        );
        let Some(max_count) = self.points.iter().map(|p| p.tenant_count).max() else {
            return table;
        };
        for row in self.rows_of(max_count) {
            let s = &row.shared;
            table.push_row(&[
                s.asid.to_string(),
                row.tenant.label(),
                s.requests.to_string(),
                s.tlb_hits.to_string(),
                s.merged.to_string(),
                s.walks.to_string(),
                s.walk_levels_read.to_string(),
                s.stall_cycles.to_string(),
                s.final_tlb_occupancy.to_string(),
                s.completion_cycle.to_string(),
            ]);
        }
        table
    }
}

/// Runs the tenant-count sweep on a serial runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn tenant_sweep(scale: ExperimentScale) -> Result<MultiTenantSweepResult, SimError> {
    tenant_sweep_on(&ExperimentRunner::serial(), scale)
}

/// [`tenant_sweep`] on a caller-provided runner: one parallel job per tenant
/// count, with every tenant's contention-free baseline served from the
/// runner's scenario-keyed memoization cache (each distinct tenant simulates
/// its baseline once across the whole sweep).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn tenant_sweep_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<MultiTenantSweepResult, SimError> {
    let config = MultiTenantConfig::with_mmu(MmuConfig::neummu());
    let counts = tenant_counts(scale);
    let shared_runs = runner.run_jobs("multi_tenant/shared", counts.len(), |i| {
        TenantScheduler::new(config).run(&tenant_mix(scale, counts[i]))
    })?;

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (&tenant_count, shared) in counts.iter().zip(&shared_runs) {
        points.push(SweepPointSummary {
            tenant_count,
            makespan_cycles: shared.makespan_cycles,
        });
        for (spec, stats) in shared.tenants.iter().zip(&shared.stats) {
            let isolated = runner.isolated_tenant_point(*spec, config)?;
            rows.push(TenantContentionRow {
                tenant_count,
                tenant: *spec,
                shared: *stats,
                isolated: *isolated,
            });
        }
    }
    Ok(MultiTenantSweepResult {
        burst_transactions: config.burst_transactions,
        rows,
        points,
    })
}

/// The workload mix used when a caller wants "the" canonical N-tenant
/// contended run outside the sweep (benches, examples): the full-scale mix.
#[must_use]
pub fn canonical_mix(tenant_count: usize) -> Vec<TenantSpec> {
    (0..tenant_count)
        .map(|i| TenantSpec::new(WorkloadId::ALL[i % WorkloadId::ALL.len()], 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: ExperimentScale = ExperimentScale::Smoke;

    #[test]
    fn sweep_shapes_follow_the_scale() {
        assert_eq!(tenant_counts(SMOKE), vec![1, 2]);
        assert_eq!(
            tenant_counts(ExperimentScale::Full),
            (1..=8).collect::<Vec<_>>()
        );
        let mix = tenant_mix(ExperimentScale::Full, 8);
        assert_eq!(mix.len(), 8);
        assert_eq!(mix[0].workload, WorkloadId::Cnn1);
        assert_eq!(mix[6].workload, WorkloadId::Cnn1, "mix cycles after 6");
        assert_eq!(canonical_mix(7)[6].workload, WorkloadId::Cnn1);
    }

    #[test]
    fn smoke_sweep_measures_contention() {
        let runner = ExperimentRunner::serial();
        let result = tenant_sweep_on(&runner, SMOKE).unwrap();
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.rows.len(), 1 + 2);
        // A lone tenant suffers no slowdown.
        let solo = &result.rows[0];
        assert_eq!(solo.tenant_count, 1);
        assert!(
            (solo.slowdown() - 1.0).abs() < 1e-9,
            "solo slowdown {}",
            solo.slowdown()
        );
        // Two tenants sharing one front end are both slowed down.
        for row in result.rows_of(2) {
            assert!(
                row.slowdown() > 1.0,
                "{} slowdown {}",
                row.tenant.label(),
                row.slowdown()
            );
        }
        assert!(result.mean_slowdown(2) > 1.0);
        // The two-point sweep needs exactly two distinct isolated baselines,
        // memoized across sweep points (CNN-1 appears in both).
        assert_eq!(runner.oracle_cache().simulations(), 2);
        assert!(runner.oracle_cache().hits() >= 1);
        // Tables render with the expected shapes.
        assert_eq!(result.to_table().rows().len(), 3);
        let counters = result.counters_table();
        assert_eq!(counters.rows().len(), 2);
        assert!(counters.to_markdown().contains("asid:1"));
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let serial = tenant_sweep_on(&ExperimentRunner::new(1), SMOKE).unwrap();
        let parallel = tenant_sweep_on(&ExperimentRunner::new(4), SMOKE).unwrap();
        assert_eq!(serial, parallel);
    }
}
