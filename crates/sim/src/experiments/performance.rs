//! Performance and energy experiments: Figures 8, 10, 11, 12, 13, the
//! Section IV-D summary, and the Section VI studies.

use serde::{Deserialize, Serialize};

use neummu_mmu::MmuConfig;
use neummu_npu::NpuConfig;
use neummu_vmem::PageSize;
use neummu_workloads::{DenseWorkload, WorkloadId};

use crate::dense::{DenseSimConfig, DenseSimulator, WorkloadResult};
use crate::error::SimError;
use crate::experiments::{DensePoint, ExperimentScale};
use crate::report::{geomean, mean, norm, pct, ResultTable};
use crate::runner::ExperimentRunner;

/// A normalized-performance sweep over the dense suite for several MMU
/// configurations (the common shape of Figures 8, 10, 11 and 12a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizedSweep {
    /// Human-readable name of the swept parameter (e.g. `PTW`).
    pub parameter: String,
    /// The label of each configuration (e.g. `PTW(8)`).
    pub config_labels: Vec<String>,
    /// For each configuration, one point per `(workload, batch)`.
    pub points: Vec<Vec<DensePoint>>,
}

impl NormalizedSweep {
    /// Average normalized performance of each configuration.
    #[must_use]
    pub fn averages(&self) -> Vec<f64> {
        self.points
            .iter()
            .map(|pts| mean(&pts.iter().map(|p| p.normalized_perf).collect::<Vec<_>>()))
            .collect()
    }

    /// Renders the sweep as a table (rows: workload/batch, columns: configs).
    #[must_use]
    pub fn to_table(&self, title: &str) -> ResultTable {
        let mut headers: Vec<&str> = vec!["Workload", "Batch"];
        let labels: Vec<String> = self.config_labels.clone();
        for label in &labels {
            headers.push(label.as_str());
        }
        let mut table = ResultTable::new(title, &headers);
        if let Some(first) = self.points.first() {
            for (i, point) in first.iter().enumerate() {
                let mut row = vec![
                    point.workload.label().to_string(),
                    format!("b{:02}", point.batch),
                ];
                for config_points in &self.points {
                    row.push(norm(config_points[i].normalized_perf));
                }
                table.push_row(&row);
            }
        }
        let mut avg_row = vec!["Average".to_string(), "-".to_string()];
        for avg in self.averages() {
            avg_row.push(norm(avg));
        }
        table.push_row(&avg_row);
        table
    }
}

/// Runs a sweep of MMU configurations over the dense suite as one job per
/// `(config, workload, batch)` cell. Every cell normalizes against the
/// runner's memoized oracle baseline, so each baseline simulates once per
/// `(workload, batch, page size)` instead of once per configuration column.
fn sweep(
    runner: &ExperimentRunner,
    parameter: &str,
    configs: &[(String, MmuConfig)],
    scale: ExperimentScale,
    npu: NpuConfig,
) -> Result<NormalizedSweep, SimError> {
    let grid = scale.grid();
    let cells: Vec<(MmuConfig, WorkloadId, u64)> = configs
        .iter()
        .flat_map(|(_, mmu)| grid.iter().map(|&(w, b)| (*mmu, w, b)))
        .collect();
    let phase = format!("performance/{parameter}");
    let values = runner.run_jobs(&phase, cells.len(), |i| {
        let (mmu, workload_id, batch) = cells[i];
        runner.normalized_point(workload_id, batch, mmu, npu)
    })?;
    let points = values
        .chunks(grid.len())
        .map(|chunk| {
            chunk
                .iter()
                .zip(&grid)
                .map(|(&normalized_perf, &(workload, batch))| DensePoint {
                    workload,
                    batch,
                    normalized_perf,
                })
                .collect()
        })
        .collect();
    Ok(NormalizedSweep {
        parameter: parameter.to_string(),
        config_labels: configs.iter().map(|(l, _)| l.clone()).collect(),
        points,
    })
}

/// Figure 8: normalized performance of the baseline IOMMU (2048-entry TLB,
/// 8 PTWs) with 4 KB pages, relative to the oracular MMU.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig08_baseline_iommu(scale: ExperimentScale) -> Result<NormalizedSweep, SimError> {
    fig08_baseline_iommu_on(&ExperimentRunner::serial(), scale)
}

/// [`fig08_baseline_iommu`] on a caller-provided runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig08_baseline_iommu_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<NormalizedSweep, SimError> {
    sweep(
        runner,
        "Baseline IOMMU",
        &[("IOMMU".to_string(), MmuConfig::baseline_iommu())],
        scale,
        NpuConfig::tpu_like(),
    )
}

/// Figure 10: sensitivity to the number of PRMB mergeable slots (8 PTWs).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig10_prmb_sweep(scale: ExperimentScale) -> Result<NormalizedSweep, SimError> {
    fig10_prmb_sweep_on(&ExperimentRunner::serial(), scale)
}

/// [`fig10_prmb_sweep`] on a caller-provided runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig10_prmb_sweep_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<NormalizedSweep, SimError> {
    let configs: Vec<(String, MmuConfig)> = [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&slots| {
            (
                format!("PRMB({slots})"),
                MmuConfig::baseline_iommu().with_prmb_slots(slots),
            )
        })
        .collect();
    sweep(runner, "PRMB slots", &configs, scale, NpuConfig::tpu_like())
}

/// Figure 11: sensitivity to the number of PTWs with PRMB(32).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig11_ptw_sweep(scale: ExperimentScale) -> Result<NormalizedSweep, SimError> {
    fig11_ptw_sweep_on(&ExperimentRunner::serial(), scale)
}

/// [`fig11_ptw_sweep`] on a caller-provided runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig11_ptw_sweep_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<NormalizedSweep, SimError> {
    let counts: &[usize] = match scale {
        ExperimentScale::Full => &[8, 16, 32, 64, 128, 256, 512, 1024],
        ExperimentScale::Smoke => &[8, 128],
    };
    let configs: Vec<(String, MmuConfig)> = counts
        .iter()
        .map(|&ptws| {
            (
                format!("PTW({ptws})"),
                MmuConfig::baseline_iommu()
                    .with_prmb_slots(32)
                    .with_ptws(ptws),
            )
        })
        .collect();
    sweep(
        runner,
        "PTWs with PRMB(32)",
        &configs,
        scale,
        NpuConfig::tpu_like(),
    )
}

/// Figure 12a: sensitivity to the number of PTWs *without* the PRMB.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig12a_ptw_no_prmb(scale: ExperimentScale) -> Result<NormalizedSweep, SimError> {
    fig12a_ptw_no_prmb_on(&ExperimentRunner::serial(), scale)
}

/// [`fig12a_ptw_no_prmb`] on a caller-provided runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig12a_ptw_no_prmb_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<NormalizedSweep, SimError> {
    let counts: &[usize] = match scale {
        ExperimentScale::Full => &[8, 16, 32, 64, 128, 256, 512, 1024],
        ExperimentScale::Smoke => &[8, 1024],
    };
    let configs: Vec<(String, MmuConfig)> = counts
        .iter()
        .map(|&ptws| {
            (
                format!("PTW({ptws})"),
                MmuConfig::baseline_iommu().with_ptws(ptws),
            )
        })
        .collect();
    sweep(
        runner,
        "PTWs without PRMB",
        &configs,
        scale,
        NpuConfig::tpu_like(),
    )
}

/// One `[PRMB, PTW]` design point of Figure 12b.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyPerfPoint {
    /// PRMB mergeable slots per walker.
    pub prmb_slots: usize,
    /// Number of page-table walkers.
    pub num_ptws: usize,
    /// Average normalized performance over the suite.
    pub normalized_perf: f64,
    /// Translation energy normalized to the `[32, 128]` NeuMMU design point.
    pub normalized_energy: f64,
}

/// Figure 12b: energy and performance of `[PRMB, PTW]` design points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12bResult {
    /// The swept design points.
    pub points: Vec<EnergyPerfPoint>,
}

impl Fig12bResult {
    /// Renders the result as a table.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Figure 12b: energy vs performance of [PRMB, PTW] design points",
            &["[PRMB, PTW]", "Normalized performance", "Normalized energy"],
        );
        for p in &self.points {
            table.push_row(&[
                format!("[{},{}]", p.prmb_slots, p.num_ptws),
                norm(p.normalized_perf),
                norm(p.normalized_energy),
            ]);
        }
        table
    }
}

/// Runs the Figure 12b experiment.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig12b_energy_perf(scale: ExperimentScale) -> Result<Fig12bResult, SimError> {
    fig12b_energy_perf_on(&ExperimentRunner::serial(), scale)
}

/// [`fig12b_energy_perf`] on a caller-provided runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig12b_energy_perf_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<Fig12bResult, SimError> {
    let design_points: &[(usize, usize)] = match scale {
        ExperimentScale::Full => &[
            (512, 8),
            (256, 16),
            (128, 32),
            (64, 64),
            (32, 128),
            (16, 256),
            (8, 512),
            (4, 1024),
            (2, 2048),
            (1, 4096),
        ],
        ExperimentScale::Smoke => &[(32, 128), (1, 4096)],
    };
    let npu = NpuConfig::tpu_like();
    let grid = scale.grid();
    let cells: Vec<((usize, usize), WorkloadId, u64)> = design_points
        .iter()
        .flat_map(|&dp| grid.iter().map(move |&(w, b)| (dp, w, b)))
        .collect();
    let values = runner.run_jobs("performance/fig12b", cells.len(), |i| {
        let ((prmb, ptws), workload_id, batch) = cells[i];
        let mmu = MmuConfig::neummu().with_prmb_slots(prmb).with_ptws(ptws);
        let oracle = runner.oracle_point(workload_id, batch, mmu.page_size, npu)?;
        let run = runner.dense_point(workload_id, batch, mmu, npu)?;
        Ok((run.normalized_to(&oracle), run.translation_energy_nj))
    })?;
    // Aggregate per design point in cell order — the same workload-major,
    // batch-minor order the serial loop used, so float sums are identical.
    let mut measured = Vec::new();
    for (dp_index, &(prmb, ptws)) in design_points.iter().enumerate() {
        let cells_of_point = &values[dp_index * grid.len()..(dp_index + 1) * grid.len()];
        let perfs: Vec<f64> = cells_of_point.iter().map(|&(perf, _)| perf).collect();
        let energy: f64 = cells_of_point.iter().map(|&(_, energy)| energy).sum();
        measured.push((prmb, ptws, mean(&perfs), energy));
    }
    let reference_energy = measured
        .iter()
        .find(|(prmb, ptws, _, _)| *prmb == 32 && *ptws == 128)
        .map_or_else(|| measured[0].3, |m| m.3)
        .max(1e-9);
    let points = measured
        .into_iter()
        .map(
            |(prmb_slots, num_ptws, normalized_perf, energy)| EnergyPerfPoint {
                prmb_slots,
                num_ptws,
                normalized_perf,
                normalized_energy: energy / reference_energy,
            },
        )
        .collect();
    Ok(Fig12bResult { points })
}

/// One row of Figure 13: TPreg tag-match rates of a workload/batch point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpregHitRow {
    /// Workload identity.
    pub workload: WorkloadId,
    /// Batch size.
    pub batch: u64,
    /// L4-index match rate.
    pub l4_rate: f64,
    /// L3-index match rate.
    pub l3_rate: f64,
    /// L2-index match rate.
    pub l2_rate: f64,
}

/// Figure 13 result: TPreg hit rates across the dense suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig13Result {
    /// One row per `(workload, batch)` point.
    pub rows: Vec<TpregHitRow>,
}

impl Fig13Result {
    /// Renders the result as a table.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Figure 13: TPreg tag-match rate at the L4/L3/L2 indices",
            &["Workload", "Batch", "L4 idx", "L3 idx", "L2 idx"],
        );
        for row in &self.rows {
            table.push_row(&[
                row.workload.label().to_string(),
                format!("b{:02}", row.batch),
                pct(row.l4_rate),
                pct(row.l3_rate),
                pct(row.l2_rate),
            ]);
        }
        table
    }
}

/// Runs the Figure 13 experiment under the NeuMMU design point.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig13_tpreg_hit_rate(scale: ExperimentScale) -> Result<Fig13Result, SimError> {
    fig13_tpreg_hit_rate_on(&ExperimentRunner::serial(), scale)
}

/// [`fig13_tpreg_hit_rate`] on a caller-provided runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig13_tpreg_hit_rate_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<Fig13Result, SimError> {
    let npu = NpuConfig::tpu_like();
    let cells = scale.grid();
    let rows = runner.run_jobs("performance/fig13", cells.len(), |i| {
        let (workload_id, batch) = cells[i];
        let run = runner.dense_point(workload_id, batch, MmuConfig::neummu(), npu)?;
        Ok(TpregHitRow {
            workload: workload_id,
            batch,
            l4_rate: run.translation.tpreg_l4_rate(),
            l3_rate: run.translation.tpreg_l3_rate(),
            l2_rate: run.translation.tpreg_l2_rate(),
        })
    })?;
    Ok(Fig13Result { rows })
}

/// The headline Section IV-D summary: baseline IOMMU vs NeuMMU overheads,
/// energy ratio, and walk-access reduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryResult {
    /// Average performance overhead of the baseline IOMMU (1 − normalized).
    pub iommu_avg_overhead: f64,
    /// Average performance overhead of NeuMMU.
    pub neummu_avg_overhead: f64,
    /// Baseline-IOMMU translation energy divided by NeuMMU translation energy.
    pub energy_reduction: f64,
    /// Baseline-IOMMU page-walk DRAM accesses divided by NeuMMU's.
    pub walk_access_reduction: f64,
}

impl SummaryResult {
    /// Renders the result as a table.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Section IV-D summary: NeuMMU vs baseline IOMMU",
            &["Metric", "Value"],
        );
        table.push_row(&[
            "Baseline IOMMU avg performance overhead",
            &pct(self.iommu_avg_overhead),
        ]);
        table.push_row(&[
            "NeuMMU avg performance overhead",
            &pct(self.neummu_avg_overhead),
        ]);
        table.push_row(&[
            "Translation energy reduction (IOMMU / NeuMMU)",
            &format!("{:.1}x", self.energy_reduction),
        ]);
        table.push_row(&[
            "Page-walk memory-access reduction (IOMMU / NeuMMU)",
            &format!("{:.1}x", self.walk_access_reduction),
        ]);
        table
    }
}

/// Runs the Section IV-D summary experiment.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn summary_neummu(scale: ExperimentScale) -> Result<SummaryResult, SimError> {
    summary_neummu_on(&ExperimentRunner::serial(), scale)
}

/// Per-point measurements backing [`SummaryResult`].
struct SummaryCell {
    iommu_perf: f64,
    neummu_perf: f64,
    iommu_energy: f64,
    neummu_energy: f64,
    iommu_walk_accesses: u64,
    neummu_walk_accesses: u64,
}

/// [`summary_neummu`] on a caller-provided runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn summary_neummu_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<SummaryResult, SimError> {
    let npu = NpuConfig::tpu_like();
    let cells = scale.grid();
    let measured = runner.run_jobs("performance/summary", cells.len(), |i| {
        let (workload_id, batch) = cells[i];
        let oracle = runner.oracle_point(workload_id, batch, MmuConfig::oracle().page_size, npu)?;
        let iommu = runner.dense_point(workload_id, batch, MmuConfig::baseline_iommu(), npu)?;
        let neummu = runner.dense_point(workload_id, batch, MmuConfig::neummu(), npu)?;
        Ok(SummaryCell {
            iommu_perf: iommu.normalized_to(&oracle),
            neummu_perf: neummu.normalized_to(&oracle),
            iommu_energy: iommu.translation_energy_nj,
            neummu_energy: neummu.translation_energy_nj,
            iommu_walk_accesses: iommu.walk_memory_accesses,
            neummu_walk_accesses: neummu.walk_memory_accesses,
        })
    })?;
    let mut iommu_perfs = Vec::new();
    let mut neummu_perfs = Vec::new();
    let mut iommu_energy = 0.0;
    let mut neummu_energy = 0.0;
    let mut iommu_walk_accesses = 0u64;
    let mut neummu_walk_accesses = 0u64;
    for cell in &measured {
        iommu_perfs.push(cell.iommu_perf);
        neummu_perfs.push(cell.neummu_perf);
        iommu_energy += cell.iommu_energy;
        neummu_energy += cell.neummu_energy;
        iommu_walk_accesses += cell.iommu_walk_accesses;
        neummu_walk_accesses += cell.neummu_walk_accesses;
    }
    Ok(SummaryResult {
        iommu_avg_overhead: 1.0 - mean(&iommu_perfs),
        neummu_avg_overhead: 1.0 - mean(&neummu_perfs),
        energy_reduction: iommu_energy / neummu_energy.max(1e-9),
        walk_access_reduction: iommu_walk_accesses as f64 / neummu_walk_accesses.max(1) as f64,
    })
}

/// Section VI-A: the dense suite with 2 MB large pages, baseline IOMMU and
/// NeuMMU, both normalized to a large-page oracle.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn largepage_dense(scale: ExperimentScale) -> Result<NormalizedSweep, SimError> {
    largepage_dense_on(&ExperimentRunner::serial(), scale)
}

/// [`largepage_dense`] on a caller-provided runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn largepage_dense_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<NormalizedSweep, SimError> {
    let configs = vec![
        (
            "IOMMU-2MB".to_string(),
            MmuConfig::baseline_iommu().with_page_size(PageSize::Size2M),
        ),
        (
            "NeuMMU-2MB".to_string(),
            MmuConfig::neummu().with_page_size(PageSize::Size2M),
        ),
    ];
    sweep(
        runner,
        "Large pages",
        &configs,
        scale,
        NpuConfig::tpu_like(),
    )
}

/// Section VI-B: the spatial-array NPU with the baseline IOMMU and NeuMMU.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn spatial_npu(scale: ExperimentScale) -> Result<NormalizedSweep, SimError> {
    spatial_npu_on(&ExperimentRunner::serial(), scale)
}

/// [`spatial_npu`] on a caller-provided runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn spatial_npu_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<NormalizedSweep, SimError> {
    let configs = vec![
        ("IOMMU".to_string(), MmuConfig::baseline_iommu()),
        ("NeuMMU".to_string(), MmuConfig::neummu()),
    ];
    sweep(
        runner,
        "Spatial-array NPU",
        &configs,
        scale,
        NpuConfig::spatial_array(),
    )
}

/// One sensitivity point of Section VI-C.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Description of the configuration.
    pub label: String,
    /// Average normalized performance across the covered suite.
    pub avg_normalized_perf: f64,
    /// Worst-case normalized performance.
    pub min_normalized_perf: f64,
}

/// Section VI-C sensitivity result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityResult {
    /// Architecture-parameter sensitivity points (PRMB / PTW / TLB sweeps).
    pub architecture_points: Vec<SensitivityPoint>,
    /// Large-batch (common-layer) points: `(workload, batch, IOMMU, NeuMMU)`.
    pub large_batch_points: Vec<(WorkloadId, u64, f64, f64)>,
}

impl SensitivityResult {
    /// Average normalized performance over every architecture point.
    #[must_use]
    pub fn overall_average(&self) -> f64 {
        mean(
            &self
                .architecture_points
                .iter()
                .map(|p| p.avg_normalized_perf)
                .collect::<Vec<_>>(),
        )
    }

    /// Worst normalized performance over every architecture point.
    #[must_use]
    pub fn overall_minimum(&self) -> f64 {
        self.architecture_points
            .iter()
            .map(|p| p.min_normalized_perf)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the result as a table.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Section VI-C: NeuMMU sensitivity",
            &[
                "Configuration",
                "Avg normalized perf",
                "Min normalized perf",
            ],
        );
        for p in &self.architecture_points {
            table.push_row(&[
                p.label.clone(),
                norm(p.avg_normalized_perf),
                norm(p.min_normalized_perf),
            ]);
        }
        for (workload, batch, iommu, neummu) in &self.large_batch_points {
            table.push_row(&[
                format!(
                    "{} common layer b{batch} (IOMMU vs NeuMMU)",
                    workload.label()
                ),
                norm(*iommu),
                norm(*neummu),
            ]);
        }
        table
    }
}

/// Runs the Section VI-C sensitivity study: architecture sweeps over the
/// dense suite plus large-batch common-layer runs.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn sensitivity(scale: ExperimentScale) -> Result<SensitivityResult, SimError> {
    sensitivity_on(&ExperimentRunner::serial(), scale)
}

/// [`sensitivity`] on a caller-provided runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn sensitivity_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<SensitivityResult, SimError> {
    let npu = NpuConfig::tpu_like();
    let arch_configs: Vec<(String, MmuConfig)> = match scale {
        ExperimentScale::Full => vec![
            (
                "PRMB(1) PTW(128)".into(),
                MmuConfig::neummu().with_prmb_slots(1),
            ),
            (
                "PRMB(8) PTW(128)".into(),
                MmuConfig::neummu().with_prmb_slots(8),
            ),
            ("PRMB(32) PTW(64)".into(), MmuConfig::neummu().with_ptws(64)),
            (
                "PRMB(32) PTW(256)".into(),
                MmuConfig::neummu().with_ptws(256),
            ),
            ("TLB(128)".into(), MmuConfig::neummu().with_tlb_entries(128)),
            ("TLB(512)".into(), MmuConfig::neummu().with_tlb_entries(512)),
            ("No TPreg".into(), MmuConfig::neummu().with_tpreg(false)),
        ],
        ExperimentScale::Smoke => vec![
            ("PRMB(32) PTW(64)".into(), MmuConfig::neummu().with_ptws(64)),
            ("TLB(128)".into(), MmuConfig::neummu().with_tlb_entries(128)),
        ],
    };

    let grid = scale.grid();
    let arch_cells: Vec<(MmuConfig, WorkloadId, u64)> = arch_configs
        .iter()
        .flat_map(|(_, mmu)| grid.iter().map(|&(w, b)| (*mmu, w, b)))
        .collect();
    let arch_values = runner.run_jobs("performance/sensitivity", arch_cells.len(), |i| {
        let (mmu, workload_id, batch) = arch_cells[i];
        runner.normalized_point(workload_id, batch, mmu, npu)
    })?;
    let architecture_points = arch_configs
        .iter()
        .zip(arch_values.chunks(grid.len()))
        .map(|((label, _), perfs)| SensitivityPoint {
            label: label.clone(),
            avg_normalized_perf: mean(perfs),
            min_normalized_perf: perfs.iter().copied().fold(f64::INFINITY, f64::min),
        })
        .collect();

    // Large-batch study over the per-network common layer. The common layer is
    // not the full workload, so its oracle runs stay out of the memoization
    // cache (they would alias full-workload keys) and live inside each job.
    let large_batches: &[u64] = match scale {
        ExperimentScale::Full => &[32, 64, 128],
        ExperimentScale::Smoke => &[32],
    };
    let mut large_cells = Vec::new();
    for workload_id in scale.workloads() {
        for &batch in large_batches {
            large_cells.push((workload_id, batch));
        }
    }
    let large_batch_points = runner.run_jobs(
        "performance/sensitivity-large-batch",
        large_cells.len(),
        |i| {
            let (workload_id, batch) = large_cells[i];
            let layer = DenseWorkload::new(workload_id).common_layer(batch);
            let sim_for = |mmu: MmuConfig| -> Result<WorkloadResult, SimError> {
                let mut config = DenseSimConfig::with_mmu(mmu);
                config.npu = npu;
                DenseSimulator::new(config).simulate_layer(&layer)
            };
            let oracle = sim_for(MmuConfig::oracle())?;
            let iommu = sim_for(MmuConfig::baseline_iommu())?.normalized_to(&oracle);
            let neummu = sim_for(MmuConfig::neummu())?.normalized_to(&oracle);
            Ok((workload_id, batch, iommu, neummu))
        },
    )?;

    Ok(SensitivityResult {
        architecture_points,
        large_batch_points,
    })
}

/// Geometric-mean helper re-exported for the experiments binary.
#[must_use]
pub fn geomean_of(points: &[DensePoint]) -> f64 {
    geomean(&points.iter().map(|p| p.normalized_perf).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: ExperimentScale = ExperimentScale::Smoke;

    #[test]
    fn fig08_baseline_iommu_loses_most_of_its_performance() {
        let sweep = fig08_baseline_iommu(SMOKE).unwrap();
        let avg = sweep.averages()[0];
        assert!(avg < 0.6, "baseline IOMMU normalized perf {avg}");
        let table = sweep.to_table("Figure 8");
        assert!(table.to_markdown().contains("Average"));
    }

    #[test]
    fn fig10_more_prmb_slots_help() {
        // Smoke-scale variant with two slot counts to bound runtime.
        let configs = vec![
            (
                "PRMB(1)".to_string(),
                MmuConfig::baseline_iommu().with_prmb_slots(1),
            ),
            (
                "PRMB(32)".to_string(),
                MmuConfig::baseline_iommu().with_prmb_slots(32),
            ),
        ];
        let sweep = super::sweep(
            &ExperimentRunner::serial(),
            "PRMB slots",
            &configs,
            SMOKE,
            NpuConfig::tpu_like(),
        )
        .unwrap();
        let avgs = sweep.averages();
        assert!(
            avgs[1] >= avgs[0],
            "PRMB(32) {} should beat PRMB(1) {}",
            avgs[1],
            avgs[0]
        );
    }

    #[test]
    fn sweeps_simulate_each_oracle_baseline_exactly_once() {
        // Two configuration columns over the smoke grid: the oracle baseline
        // of each (workload, batch, page size) key must simulate once, with
        // every other request served from the memoization cache.
        let runner = ExperimentRunner::serial();
        let configs = vec![
            ("IOMMU".to_string(), MmuConfig::baseline_iommu()),
            ("NeuMMU".to_string(), MmuConfig::neummu()),
        ];
        let sweep = super::sweep(
            &runner,
            "memoization",
            &configs,
            SMOKE,
            NpuConfig::tpu_like(),
        )
        .unwrap();
        let grid_cells = SMOKE.workloads().len() * SMOKE.batches().len();
        assert_eq!(sweep.points.len(), 2);
        assert_eq!(
            runner.oracle_cache().simulations() as usize,
            grid_cells,
            "one oracle simulation per (workload, batch, page size)"
        );
        assert_eq!(
            runner.oracle_cache().hits() as usize,
            grid_cells * (configs.len() - 1),
            "every further baseline request is a cache hit"
        );
    }

    #[test]
    fn fig11_more_ptws_close_the_gap() {
        let sweep = fig11_ptw_sweep(SMOKE).unwrap();
        let avgs = sweep.averages();
        // 8 vs 128 walkers with PRMB(32).
        assert!(avgs[1] > avgs[0]);
        assert!(
            avgs[1] > 0.9,
            "128 PTWs with PRMB should be near oracle, got {}",
            avgs[1]
        );
    }

    #[test]
    fn fig12_many_ptws_without_prmb_match_perf_but_waste_energy() {
        let with_prmb = fig12b_energy_perf(SMOKE).unwrap();
        let nominal = &with_prmb.points[0];
        let no_prmb_like = &with_prmb.points[1]; // [1, 4096]
        assert!(no_prmb_like.normalized_perf > 0.9);
        assert!(nominal.normalized_perf > 0.9);
        assert!(
            no_prmb_like.normalized_energy > 2.0 * nominal.normalized_energy,
            "expected the merge-less design point to spend much more energy: {} vs {}",
            no_prmb_like.normalized_energy,
            nominal.normalized_energy
        );
    }

    #[test]
    fn fig13_tpreg_hit_rates_are_high_at_l4_l3() {
        let result = fig13_tpreg_hit_rate(SMOKE).unwrap();
        for row in &result.rows {
            assert!(row.l4_rate > 0.9, "{:?} l4 {}", row.workload, row.l4_rate);
            assert!(row.l3_rate > 0.9);
            assert!(row.l2_rate <= row.l3_rate + 1e-9);
        }
    }

    #[test]
    fn summary_shows_neummu_closing_the_gap() {
        let summary = summary_neummu(SMOKE).unwrap();
        assert!(
            summary.iommu_avg_overhead > 0.4,
            "iommu overhead {}",
            summary.iommu_avg_overhead
        );
        assert!(
            summary.neummu_avg_overhead < 0.1,
            "neummu overhead {}",
            summary.neummu_avg_overhead
        );
        assert!(summary.energy_reduction > 2.0);
        assert!(summary.walk_access_reduction > 2.0);
        assert!(summary.to_table().rows().len() == 4);
    }

    #[test]
    fn largepages_reduce_dense_overheads() {
        let large = largepage_dense(SMOKE).unwrap();
        let small = fig08_baseline_iommu(SMOKE).unwrap();
        // IOMMU with 2 MB pages performs much better than with 4 KB pages.
        assert!(large.averages()[0] > small.averages()[0]);
        // NeuMMU stays near the oracle under large pages too.
        assert!(large.averages()[1] > 0.9);
    }

    #[test]
    fn spatial_array_npu_benefits_similarly() {
        let result = spatial_npu(SMOKE).unwrap();
        let avgs = result.averages();
        assert!(
            avgs[1] > avgs[0],
            "NeuMMU should beat IOMMU on the spatial NPU"
        );
        assert!(avgs[1] > 0.85);
    }
}
