//! The embedding-layer case study: Figures 15 and 16.

use serde::{Deserialize, Serialize};

use neummu_mem::interconnect::TransferKind;
use neummu_mmu::{MmuConfig, MmuKind};
use neummu_vmem::PageSize;
use neummu_workloads::{sparse_suite, EmbeddingModel};

use crate::embedding::{
    EmbeddingPhaseBreakdown, EmbeddingSimConfig, EmbeddingSimulator, GatherStrategy,
};
use crate::error::SimError;
use crate::experiments::ExperimentScale;
use crate::report::{norm, ResultTable};
use crate::runner::ExperimentRunner;

/// Batch sizes of the Figure 15 study.
pub const FIG15_BATCHES: [u64; 3] = [1, 8, 64];
/// Batch sizes of the Figure 16 study.
pub const FIG16_BATCHES: [u64; 3] = [1, 4, 8];

fn sparse_models(scale: ExperimentScale) -> Vec<EmbeddingModel> {
    match scale {
        ExperimentScale::Full => sparse_suite(),
        ExperimentScale::Smoke => vec![EmbeddingModel::ncf()],
    }
}

fn batches(scale: ExperimentScale, full: &[u64]) -> Vec<u64> {
    match scale {
        ExperimentScale::Full => full.to_vec(),
        ExperimentScale::Smoke => vec![full[1]],
    }
}

/// One bar of Figure 15: a model/batch/strategy combination with its latency
/// breakdown, normalized to the MMU-less baseline of the same model/batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig15Row {
    /// Model name (NCF or DLRM).
    pub model: String,
    /// Minibatch size.
    pub batch: u64,
    /// Gather strategy label (Baseline / NUMA(slow) / NUMA(fast)).
    pub strategy: String,
    /// Latency breakdown of the step.
    pub breakdown: EmbeddingPhaseBreakdown,
    /// Total latency normalized to the baseline strategy (baseline = 1.0).
    pub normalized_latency: f64,
}

/// Figure 15 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig15Result {
    /// One row per model/batch/strategy combination.
    pub rows: Vec<Fig15Row>,
}

impl Fig15Result {
    /// Average latency reduction of the given strategy relative to the
    /// baseline (e.g. 0.31 means 31% lower latency).
    #[must_use]
    pub fn average_latency_reduction(&self, strategy_label: &str) -> f64 {
        let reductions: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.strategy == strategy_label)
            .map(|r| 1.0 - r.normalized_latency)
            .collect();
        if reductions.is_empty() {
            0.0
        } else {
            reductions.iter().sum::<f64>() / reductions.len() as f64
        }
    }

    /// Renders the result as a table.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Figure 15: latency breakdown of embedding gathers (normalized to the MMU-less baseline)",
            &["Model", "Batch", "Strategy", "GEMM", "Reduction", "Else", "Embedding lookup", "Total (normalized)"],
        );
        for row in &self.rows {
            let total = row.breakdown.total_cycles().max(1) as f64;
            table.push_row(&[
                row.model.clone(),
                format!("b{:02}", row.batch),
                row.strategy.clone(),
                norm(row.breakdown.gemm_cycles as f64 / total * row.normalized_latency),
                norm(row.breakdown.reduction_cycles as f64 / total * row.normalized_latency),
                norm(row.breakdown.other_cycles as f64 / total * row.normalized_latency),
                norm(row.breakdown.embedding_gather_cycles as f64 / total * row.normalized_latency),
                norm(row.normalized_latency),
            ]);
        }
        table
    }
}

/// Runs the Figure 15 experiment: MMU-less CPU-relayed copies vs NUMA over
/// PCIe vs NUMA over the NPU↔NPU link, for NCF and DLRM.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig15_numa_breakdown(scale: ExperimentScale) -> Result<Fig15Result, SimError> {
    fig15_numa_breakdown_on(&ExperimentRunner::serial(), scale)
}

/// [`fig15_numa_breakdown`] on a caller-provided runner: one job per
/// `(model, batch)` cell, each producing the three strategy rows.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig15_numa_breakdown_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<Fig15Result, SimError> {
    let sim = EmbeddingSimulator::new(EmbeddingSimConfig::with_mmu(MmuConfig::neummu()));
    let strategies = [
        GatherStrategy::HostRelayedCopy,
        GatherStrategy::NumaDirect {
            link: TransferKind::Pcie,
        },
        GatherStrategy::NumaDirect {
            link: TransferKind::NpuLink,
        },
    ];
    let mut cells = Vec::new();
    for model in sparse_models(scale) {
        for &batch in &batches(scale, &FIG15_BATCHES) {
            cells.push((model.clone(), batch));
        }
    }
    let row_groups = runner.run_jobs("recommender/fig15", cells.len(), |i| {
        let (model, batch) = &cells[i];
        let batch = *batch;
        let baseline = sim.simulate(model, batch, GatherStrategy::HostRelayedCopy)?;
        let baseline_total = baseline.total_cycles().max(1) as f64;
        let mut rows = Vec::with_capacity(strategies.len());
        for strategy in strategies {
            let breakdown = if matches!(strategy, GatherStrategy::HostRelayedCopy) {
                baseline
            } else {
                sim.simulate(model, batch, strategy)?
            };
            rows.push(Fig15Row {
                model: model.name().to_string(),
                batch,
                strategy: strategy.label().to_string(),
                breakdown,
                normalized_latency: breakdown.total_cycles() as f64 / baseline_total,
            });
        }
        Ok(rows)
    })?;
    Ok(Fig15Result {
        rows: row_groups.into_iter().flatten().collect(),
    })
}

/// One bar of Figure 16: demand paging under a given page size and MMU,
/// normalized to the oracular MMU with 4 KB pages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig16Row {
    /// Model name.
    pub model: String,
    /// Minibatch size.
    pub batch: u64,
    /// Page size used for demand paging.
    pub page_size: PageSize,
    /// MMU design point (baseline IOMMU or NeuMMU).
    pub mmu: MmuKind,
    /// Performance normalized to the 4 KB oracle (higher is better).
    pub normalized_perf: f64,
    /// Bytes moved over the interconnect by page migrations.
    pub migrated_bytes: u64,
}

/// Figure 16 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig16Result {
    /// One row per model/batch/page-size/MMU combination.
    pub rows: Vec<Fig16Row>,
}

impl Fig16Result {
    /// Average normalized performance of a `(page size, MMU)` combination.
    #[must_use]
    pub fn average(&self, page_size: PageSize, mmu: MmuKind) -> f64 {
        let values: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.page_size == page_size && r.mmu == mmu)
            .map(|r| r.normalized_perf)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Renders the result as a table.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Figure 16: demand paging of sparse embeddings (normalized to the 4KB oracle)",
            &[
                "Model",
                "Batch",
                "Page size",
                "MMU",
                "Normalized perf",
                "Migrated MB",
            ],
        );
        for row in &self.rows {
            table.push_row(&[
                row.model.clone(),
                format!("b{:02}", row.batch),
                row.page_size.to_string(),
                row.mmu.label().to_string(),
                norm(row.normalized_perf),
                format!("{:.1}", row.migrated_bytes as f64 / (1 << 20) as f64),
            ]);
        }
        table
    }
}

/// Runs the Figure 16 experiment: demand paging with 4 KB vs 2 MB pages under
/// the baseline IOMMU and NeuMMU, all normalized to a 4 KB oracle.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig16_demand_paging(scale: ExperimentScale) -> Result<Fig16Result, SimError> {
    fig16_demand_paging_on(&ExperimentRunner::serial(), scale)
}

/// [`fig16_demand_paging`] on a caller-provided runner: one job per
/// `(model, batch)` cell, each simulating its own oracle baseline and the four
/// `(page size, MMU)` combinations.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig16_demand_paging_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<Fig16Result, SimError> {
    let link = TransferKind::NpuLink;
    let strategy = GatherStrategy::DemandPaging { link };
    let mut cells = Vec::new();
    for model in sparse_models(scale) {
        for &batch in &batches(scale, &FIG16_BATCHES) {
            cells.push((model.clone(), batch));
        }
    }
    let row_groups = runner.run_jobs("recommender/fig16", cells.len(), |i| {
        let (model, batch) = &cells[i];
        let batch = *batch;
        let oracle = EmbeddingSimulator::new(EmbeddingSimConfig::with_mmu(MmuConfig::oracle()))
            .simulate(model, batch, strategy)?;
        let oracle_cycles = oracle.total_cycles().max(1) as f64;
        let mut rows = Vec::with_capacity(4);
        for page_size in [PageSize::Size4K, PageSize::Size2M] {
            for mmu in [MmuConfig::baseline_iommu(), MmuConfig::neummu()] {
                let mmu = mmu.with_page_size(page_size);
                let run = EmbeddingSimulator::new(EmbeddingSimConfig::with_mmu(mmu))
                    .simulate(model, batch, strategy)?;
                rows.push(Fig16Row {
                    model: model.name().to_string(),
                    batch,
                    page_size,
                    mmu: if mmu.prmb_slots_per_ptw > 0 {
                        MmuKind::NeuMmu
                    } else {
                        MmuKind::BaselineIommu
                    },
                    normalized_perf: oracle_cycles / run.total_cycles().max(1) as f64,
                    migrated_bytes: run.interconnect_bytes,
                });
            }
        }
        Ok(rows)
    })?;
    Ok(Fig16Result {
        rows: row_groups.into_iter().flatten().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: ExperimentScale = ExperimentScale::Smoke;

    #[test]
    fn fig15_numa_reduces_latency() {
        let result = fig15_numa_breakdown(SMOKE).unwrap();
        assert!(!result.rows.is_empty());
        // The baseline rows are exactly 1.0 by construction.
        for row in result.rows.iter().filter(|r| r.strategy == "Baseline") {
            assert!((row.normalized_latency - 1.0).abs() < 1e-9);
        }
        let slow = result.average_latency_reduction("NUMA(slow)");
        let fast = result.average_latency_reduction("NUMA(fast)");
        assert!(slow > 0.0, "NUMA(slow) should reduce latency, got {slow}");
        assert!(
            fast >= slow,
            "NUMA(fast) {fast} should be at least NUMA(slow) {slow}"
        );
        assert!(result.to_table().rows().len() >= 3);
    }

    #[test]
    fn fig16_small_pages_beat_large_pages_for_sparse_access() {
        let result = fig16_demand_paging(SMOKE).unwrap();
        let neummu_4k = result.average(PageSize::Size4K, MmuKind::NeuMmu);
        let neummu_2m = result.average(PageSize::Size2M, MmuKind::NeuMmu);
        let iommu_4k = result.average(PageSize::Size4K, MmuKind::BaselineIommu);
        assert!(neummu_4k > 0.7, "NeuMMU 4K normalized perf {neummu_4k}");
        assert!(
            neummu_4k > neummu_2m,
            "4K {neummu_4k} should beat 2M {neummu_2m}"
        );
        assert!(
            neummu_4k >= iommu_4k,
            "NeuMMU {neummu_4k} should be >= IOMMU {iommu_4k}"
        );
        assert!(result.to_table().rows().len() >= 4);
    }
}
