//! The resilience experiment family: fault-rate × recovery-mechanism sweeps.
//!
//! Where [`crate::experiments::serving`] asks how a *healthy* front end
//! behaves under load, this family asks the availability question: when the
//! translation device itself misbehaves — walks time out, host fault
//! responses get dropped, PTE reads come back corrupted, walker lanes wedge —
//! **how much goodput does each recovery mechanism buy back, and what does it
//! cost when nothing is wrong?** Every sweep point runs the same open-loop
//! tenant population at a fixed 1.2× overload through one shared NeuMMU
//! engine with a seeded [`DeviceFaultConfig`], varying only the injected
//! fault rate and which mechanisms are armed:
//!
//! * `all-off` — no recovery at all: faulted walks ride to the livelock
//!   detector's bound and report translation faults (the honesty baseline —
//!   it may spend most of its makespan livelock-detecting),
//! * one point per single mechanism — bounded retry, walker-pool watchdog,
//!   walker quarantine, fault-response retransmit, per-tenant circuit
//!   breaker — isolating each mechanism's contribution,
//! * `all-on` — the full recovery stack.
//!
//! The artifacts are availability/goodput curves per mechanism, exact
//! (nearest-rank, never interpolated) recovery-latency percentiles rebuilt
//! from the engine's [`FaultCounters`], and a faults-disabled overhead table
//! comparing every mechanism's zero-rate point against the `all-off`
//! zero-rate baseline. Everything is deterministic: fault plans and arrival
//! streams derive from fixed base seeds via [`derive_seed`], so the family's
//! artifacts are byte-identical across thread counts and store-resumed runs.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use neummu_mmu::{
    DeviceFaultConfig, FaultCounters, FaultKind, FaultRate, MmuConfig, ResilienceConfig,
};

use crate::error::SimError;
use crate::experiments::ExperimentScale;
use crate::report::{norm, pct, ResultTable};
use crate::runner::ExperimentRunner;
use crate::serving::{
    derive_seed, ArrivalConfig, ArrivalShape, CircuitBreakerConfig, LatencyHistogram,
    ServingConfig, ServingSimulator, ServingTenantSpec,
};

/// Base seed of the family's arrival streams (each tenant's lane seed derives
/// from it via [`derive_seed`]; deliberately distinct from the serving
/// family's seed so the two populations are decorrelated).
pub const ARRIVAL_SEED: u64 = 0x0FA1_7ED0_0D15_EA5E;

/// Base seed of the family's fault plans (each sweep point's plan seed
/// derives from it via [`derive_seed`] over the point's grid index).
pub const FAULT_SEED: u64 = 0x0BAD_DE1C_E000_5EED;

/// One armed recovery-mechanism set of the sweep, in artifact order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mechanism {
    /// No recovery: every injected fault rides to the livelock bound.
    AllOff,
    /// Bounded retry with exponential backoff only.
    RetryOnly,
    /// Walker-pool watchdog only.
    WatchdogOnly,
    /// Walker quarantine only (the livelock detector still identifies the
    /// wedged lane and parks it, but without the watchdog the stuck walk
    /// itself is reported hung).
    QuarantineOnly,
    /// Fault-response retransmit only.
    RetransmitOnly,
    /// Per-tenant circuit breaker only (serving-plane degradation; the
    /// engine itself recovers nothing).
    BreakerOnly,
    /// The full recovery stack: retry + watchdog + quarantine + retransmit
    /// + circuit breaker.
    AllOn,
}

impl Mechanism {
    /// Every mechanism set, in artifact order.
    pub const ALL: [Mechanism; 7] = [
        Mechanism::AllOff,
        Mechanism::RetryOnly,
        Mechanism::WatchdogOnly,
        Mechanism::QuarantineOnly,
        Mechanism::RetransmitOnly,
        Mechanism::BreakerOnly,
        Mechanism::AllOn,
    ];

    /// Stable artifact label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::AllOff => "all-off",
            Mechanism::RetryOnly => "retry",
            Mechanism::WatchdogOnly => "watchdog",
            Mechanism::QuarantineOnly => "quarantine",
            Mechanism::RetransmitOnly => "retransmit",
            Mechanism::BreakerOnly => "breaker",
            Mechanism::AllOn => "all-on",
        }
    }

    /// The engine-side resilience configuration this set arms.
    #[must_use]
    pub fn resilience(self) -> ResilienceConfig {
        match self {
            Mechanism::AllOff | Mechanism::BreakerOnly => ResilienceConfig::all_off(),
            Mechanism::RetryOnly => ResilienceConfig::all_off().with_retry(true),
            Mechanism::WatchdogOnly => ResilienceConfig::all_off().with_watchdog(true),
            Mechanism::QuarantineOnly => ResilienceConfig::all_off().with_quarantine(true),
            Mechanism::RetransmitOnly => ResilienceConfig::all_off().with_retransmit(true),
            Mechanism::AllOn => ResilienceConfig::all_on(),
        }
    }

    /// Whether this set arms the serving-plane circuit breaker.
    #[must_use]
    pub fn uses_breaker(self) -> bool {
        matches!(self, Mechanism::BreakerOnly | Mechanism::AllOn)
    }
}

/// The mechanism sets swept at each scale, in artifact order.
#[must_use]
pub fn mechanisms(scale: ExperimentScale) -> Vec<Mechanism> {
    match scale {
        ExperimentScale::Full => Mechanism::ALL.to_vec(),
        ExperimentScale::Smoke => vec![Mechanism::AllOff, Mechanism::RetryOnly, Mechanism::AllOn],
    }
}

/// The per-walk fault rates swept at each scale (`0.0` is the
/// faults-disabled overhead point).
#[must_use]
pub fn fault_rates(scale: ExperimentScale) -> Vec<f64> {
    match scale {
        ExperimentScale::Full => vec![0.0, 0.002, 0.02],
        ExperimentScale::Smoke => vec![0.0, 0.02],
    }
}

/// Tenants per sweep point at each scale.
#[must_use]
pub fn tenant_count(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Full => 8,
        ExperimentScale::Smoke => 3,
    }
}

/// Arrival horizon (cycles of open-loop traffic) at each scale.
#[must_use]
pub fn horizon_cycles(scale: ExperimentScale) -> u64 {
    match scale {
        ExperimentScale::Full => 1_000_000,
        ExperimentScale::Smoke => 20_000,
    }
}

/// Offered-load factor of every sweep point: a mild 1.2× overload, so shed
/// capacity (not idle slack) absorbs recovery latency and the availability
/// curves have something to lose.
#[must_use]
pub fn load_factor(_scale: ExperimentScale) -> f64 {
    1.2
}

/// The circuit-breaker configuration of the breaker-armed mechanism sets.
#[must_use]
pub fn breaker(scale: ExperimentScale) -> CircuitBreakerConfig {
    match scale {
        ExperimentScale::Full => CircuitBreakerConfig {
            sojourn_slo_p99_cycles: 50_000,
            window_requests: 64,
            cooldown_cycles: 50_000,
        },
        ExperimentScale::Smoke => CircuitBreakerConfig {
            sojourn_slo_p99_cycles: 5_000,
            window_requests: 8,
            cooldown_cycles: 4_000,
        },
    }
}

/// The seeded device-fault plan of one sweep point. All four fault kinds run
/// at `rate`; the walker-stuck lane additionally injects in bursts of two,
/// exercising the per-kind burst knob.
#[must_use]
pub fn device_faults(seed: u64, rate: f64) -> DeviceFaultConfig {
    DeviceFaultConfig::uniform(seed, rate)
        .with_kind(FaultKind::WalkerStuck, FaultRate::bursty(rate, 2))
}

/// The serving configuration of one sweep point.
#[must_use]
pub fn point_config(
    scale: ExperimentScale,
    mechanism: Mechanism,
    faults: DeviceFaultConfig,
) -> ServingConfig {
    let mut config =
        ServingConfig::with_mmu(MmuConfig::neummu()).with_faults(faults, mechanism.resilience());
    if mechanism.uses_breaker() {
        config = config.with_breaker(breaker(scale));
    }
    match scale {
        ExperimentScale::Full => config,
        ExperimentScale::Smoke => config
            .with_burst(16)
            .with_txns_per_request(32)
            .with_queue_depth(8)
            .with_sample_interval(4096),
    }
}

/// The deterministic tenant population shared by every sweep point (arrival
/// streams are identical across points, so curves differ only by fault rate
/// and mechanism set): workloads cycle the scale's suite, arrival shapes
/// cycle Poisson → bursty → diurnal, weights cycle 1..=4.
#[must_use]
pub fn tenant_population(scale: ExperimentScale, txns_per_request: u64) -> Vec<ServingTenantSpec> {
    let workloads = scale.workloads();
    let count = tenant_count(scale);
    let horizon = horizon_cycles(scale);
    let rate_per_mcycle = load_factor(scale) * 1e6 / (count as f64 * txns_per_request as f64);
    (0..count)
        .map(|index| {
            let shape = match index % 3 {
                0 => ArrivalShape::Poisson,
                1 => ArrivalShape::Bursty {
                    mean_burst_arrivals: 8.0,
                    duty_fraction: 0.25,
                },
                _ => ArrivalShape::Diurnal {
                    period_cycles: horizon / 4,
                    trough_fraction: 0.3,
                },
            };
            ServingTenantSpec {
                workload: workloads[index % workloads.len()],
                batch: 1,
                weight: 1 + (index as u64) % 4,
                arrivals: ArrivalConfig {
                    shape,
                    rate_per_mcycle,
                    horizon_cycles: horizon,
                    seed: derive_seed(ARRIVAL_SEED, index as u64),
                },
            }
        })
        .collect()
}

/// One sweep point: availability, goodput and exact fault accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePointRow {
    /// Armed mechanism set of the point.
    pub mechanism: Mechanism,
    /// Per-walk fault rate of the point.
    pub fault_rate: f64,
    /// Requests offered to the admission queues (post-breaker).
    pub offered: u64,
    /// Requests whose service completed.
    pub completed: u64,
    /// Requests shed by the bounded queues.
    pub dropped: u64,
    /// Arrivals shed by open circuit breakers (never offered).
    pub shed: u64,
    /// Completed fraction of all generated arrivals
    /// (`completed / (offered + shed)`).
    pub availability: f64,
    /// Completed requests per Mcycle of makespan.
    pub goodput_per_mcycle: f64,
    /// Cycle at which the last completed request's data arrived.
    pub makespan_cycles: u64,
    /// Faults the plan injected.
    pub injected: u64,
    /// Injected faults a mechanism detected (recovered or cleanly failed).
    pub detected: u64,
    /// Detected faults whose walk still completed with a valid translation.
    pub recovered: u64,
    /// Injected faults that rode to the livelock detector's bound.
    pub hung: u64,
    /// Exact nearest-rank p50 of recovery latency (extra cycles beyond the
    /// fault-free walk), over recovered faults; `None` when none recovered.
    pub recovery_p50: Option<u64>,
    /// Exact nearest-rank p99 of recovery latency.
    pub recovery_p99: Option<u64>,
    /// Worst observed recovery latency.
    pub recovery_max: u64,
    /// Exact recovery-latency histogram (`extra cycles → count`), the raw
    /// data behind the percentiles.
    pub recovery_latency: BTreeMap<u64, u64>,
    /// Times any tenant's circuit breaker opened.
    pub breaker_trips: u64,
}

/// Per-fault-kind accounting of one sweep point (emitted for points that
/// injected at least one fault).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceKindRow {
    /// Armed mechanism set of the point.
    pub mechanism: Mechanism,
    /// Per-walk fault rate of the point.
    pub fault_rate: f64,
    /// Fault-kind label (`timeout` / `dropped` / `transient` / `stuck`).
    pub kind: &'static str,
    /// Faults of this kind the plan injected.
    pub injected: u64,
    /// Injected faults of this kind a mechanism detected.
    pub detected: u64,
    /// Detected faults of this kind whose walk still completed.
    pub recovered: u64,
    /// Faults of this kind that rode to the livelock bound.
    pub hung: u64,
}

/// The complete fault-rate × mechanism sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSweepResult {
    /// Tenants per point.
    pub tenant_count: usize,
    /// Arrival horizon per point.
    pub horizon_cycles: u64,
    /// Offered-load factor of every point.
    pub load_factor: f64,
    /// One row per `(mechanism, rate)` point, mechanism-major.
    pub points: Vec<ResiliencePointRow>,
    /// Per-kind rows of every point that injected faults.
    pub kinds: Vec<ResilienceKindRow>,
}

impl ResilienceSweepResult {
    /// The zero-rate row of one mechanism set, if swept.
    fn zero_rate_point(&self, mechanism: Mechanism) -> Option<&ResiliencePointRow> {
        self.points
            .iter()
            .find(|p| p.mechanism == mechanism && p.fault_rate == 0.0)
    }

    /// Renders the availability/goodput curve: one row per sweep point.
    #[must_use]
    pub fn availability_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            format!(
                "Resilience availability under injected device faults ({} tenants, {:.1}x load)",
                self.tenant_count, self.load_factor
            ),
            &[
                "Mechanism",
                "Rate",
                "Offered",
                "Completed",
                "Dropped",
                "Shed",
                "Availability",
                "Goodput/Mcycle",
                "Makespan",
                "Breaker trips",
            ],
        );
        for point in &self.points {
            table.push_row(&[
                point.mechanism.label().to_string(),
                norm(point.fault_rate),
                point.offered.to_string(),
                point.completed.to_string(),
                point.dropped.to_string(),
                point.shed.to_string(),
                pct(point.availability),
                norm(point.goodput_per_mcycle),
                point.makespan_cycles.to_string(),
                point.breaker_trips.to_string(),
            ]);
        }
        table
    }

    /// Renders the exact recovery accounting of every fault-injecting point:
    /// injected/detected/recovered/hung totals and nearest-rank
    /// recovery-latency percentiles.
    #[must_use]
    pub fn recovery_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Resilience recovery latency (exact nearest-rank, extra cycles beyond the fault-free walk)",
            &[
                "Mechanism",
                "Rate",
                "Injected",
                "Detected",
                "Recovered",
                "Hung",
                "p50",
                "p99",
                "Max",
            ],
        );
        let fmt = |p: Option<u64>| p.map_or_else(|| "-".to_string(), |v| v.to_string());
        for point in self.points.iter().filter(|p| p.injected > 0) {
            table.push_row(&[
                point.mechanism.label().to_string(),
                norm(point.fault_rate),
                point.injected.to_string(),
                point.detected.to_string(),
                point.recovered.to_string(),
                point.hung.to_string(),
                fmt(point.recovery_p50),
                fmt(point.recovery_p99),
                point.recovery_max.to_string(),
            ]);
        }
        table
    }

    /// Renders the faults-disabled overhead of every mechanism set: its
    /// zero-rate point against the `all-off` zero-rate baseline. With every
    /// rate at zero the fault plan is disarmed and the engine's fault gate is
    /// one dead branch, so any engine-side delta here is a regression; only
    /// the breaker-armed sets may legitimately differ (they shed on SLO, not
    /// on faults).
    #[must_use]
    pub fn overhead_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Resilience mechanism overhead with faults disabled (vs all-off baseline)",
            &[
                "Mechanism",
                "Completed",
                "Makespan",
                "Makespan delta",
                "Goodput/Mcycle",
                "Goodput delta",
            ],
        );
        let Some(baseline) = self.zero_rate_point(Mechanism::AllOff) else {
            return table;
        };
        for mechanism in Mechanism::ALL {
            let Some(point) = self.zero_rate_point(mechanism) else {
                continue;
            };
            let makespan_delta = if baseline.makespan_cycles == 0 {
                0.0
            } else {
                point.makespan_cycles as f64 / baseline.makespan_cycles as f64 - 1.0
            };
            let goodput_delta = if baseline.goodput_per_mcycle == 0.0 {
                0.0
            } else {
                point.goodput_per_mcycle / baseline.goodput_per_mcycle - 1.0
            };
            table.push_row(&[
                mechanism.label().to_string(),
                point.completed.to_string(),
                point.makespan_cycles.to_string(),
                pct(makespan_delta),
                norm(point.goodput_per_mcycle),
                pct(goodput_delta),
            ]);
        }
        table
    }
}

/// Runs the fault-rate × mechanism sweep on a serial runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn resilience_sweep(scale: ExperimentScale) -> Result<ResilienceSweepResult, SimError> {
    resilience_sweep_on(&ExperimentRunner::serial(), scale)
}

/// [`resilience_sweep`] on a caller-provided runner: one parallel job per
/// `(mechanism, rate)` point. Job order is mechanism-major, rate-minor;
/// results are reassembled in job-index order so the artifact is independent
/// of thread count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn resilience_sweep_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<ResilienceSweepResult, SimError> {
    let mechanisms = mechanisms(scale);
    let rates = fault_rates(scale);
    let grid: Vec<(Mechanism, f64)> = mechanisms
        .iter()
        .flat_map(|&mechanism| rates.iter().map(move |&rate| (mechanism, rate)))
        .collect();
    let results = runner.run_jobs("resilience/point", grid.len(), |i| {
        let (mechanism, rate) = grid[i];
        let faults = device_faults(derive_seed(FAULT_SEED, i as u64), rate);
        let config = point_config(scale, mechanism, faults);
        let population = tenant_population(scale, config.txns_per_request);
        ServingSimulator::new(config).run(&population)
    })?;

    let mut points = Vec::new();
    let mut kinds = Vec::new();
    for (&(mechanism, fault_rate), result) in grid.iter().zip(&results) {
        let counters = result
            .fault_counters
            .as_ref()
            .cloned()
            .unwrap_or_else(FaultCounters::default);
        // Rebuild the exact recovery histogram from the engine's
        // pre-counted `(extra cycles → count)` map; nearest-rank
        // percentiles then come from the same machinery as the SLO tables.
        let mut recovery = LatencyHistogram::new();
        for (&latency, &count) in &counters.recovery_latency {
            recovery.record_n(latency, count);
        }
        let offered = result.offered_requests();
        let shed = result.shed_requests();
        let completed = result.completed_requests();
        let generated = offered + shed;
        points.push(ResiliencePointRow {
            mechanism,
            fault_rate,
            offered,
            completed,
            dropped: result.stats.iter().map(|s| s.queue.dropped).sum(),
            shed,
            availability: if generated == 0 {
                0.0
            } else {
                completed as f64 / generated as f64
            },
            goodput_per_mcycle: result.goodput_per_mcycle(),
            makespan_cycles: result.makespan_cycles,
            injected: counters.total_injected(),
            detected: counters.total_detected(),
            recovered: counters.total_recovered(),
            hung: counters.total_hung(),
            recovery_p50: recovery.p50(),
            recovery_p99: recovery.p99(),
            recovery_max: recovery.max(),
            recovery_latency: counters.recovery_latency.clone(),
            breaker_trips: result.breaker_trips(),
        });
        if counters.total_injected() > 0 {
            for kind in FaultKind::ALL {
                kinds.push(ResilienceKindRow {
                    mechanism,
                    fault_rate,
                    kind: kind.label(),
                    injected: counters.injected[kind.index()],
                    detected: counters.detected[kind.index()],
                    recovered: counters.recovered[kind.index()],
                    hung: counters.hung[kind.index()],
                });
            }
        }
    }
    Ok(ResilienceSweepResult {
        tenant_count: tenant_count(scale),
        horizon_cycles: horizon_cycles(scale),
        load_factor: load_factor(scale),
        points,
        kinds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: ExperimentScale = ExperimentScale::Smoke;

    #[test]
    fn sweep_shapes_follow_the_scale() {
        assert_eq!(mechanisms(SMOKE).len(), 3);
        assert_eq!(fault_rates(SMOKE), vec![0.0, 0.02]);
        assert_eq!(mechanisms(ExperimentScale::Full).len(), 7);
        assert_eq!(fault_rates(ExperimentScale::Full), vec![0.0, 0.002, 0.02]);
        assert_eq!(tenant_count(ExperimentScale::Full), 8);
        let population = tenant_population(SMOKE, 32);
        assert_eq!(population.len(), 3);
        // All three arrival shapes appear; seeds are decorrelated lanes.
        let shapes: Vec<&str> = population
            .iter()
            .map(|t| t.arrivals.shape.label())
            .collect();
        assert_eq!(shapes, ["poisson", "bursty", "diurnal"]);
        assert_ne!(population[0].arrivals.seed, population[1].arrivals.seed);
        // The resilience population is decorrelated from the serving family.
        assert_ne!(
            population[0].arrivals.seed,
            crate::experiments::serving::tenant_population(SMOKE, 1.2, 32)[0]
                .arrivals
                .seed
        );
        // Mechanism sets arm what their names say.
        assert!(!Mechanism::AllOff.resilience().retry);
        assert!(Mechanism::RetryOnly.resilience().retry);
        assert!(!Mechanism::RetryOnly.resilience().watchdog);
        assert!(Mechanism::AllOn.resilience().quarantine);
        assert!(Mechanism::BreakerOnly.uses_breaker());
        assert!(!Mechanism::RetryOnly.uses_breaker());
    }

    #[test]
    fn smoke_sweep_produces_resilience_artifacts() {
        let result = resilience_sweep(SMOKE).unwrap();
        assert_eq!(result.points.len(), 3 * 2);
        for point in &result.points {
            // Conservation at drain: every offered request either completed
            // or was shed by the bounded queue.
            assert_eq!(
                point.offered,
                point.completed + point.dropped,
                "{} rate {} leaked requests",
                point.mechanism.label(),
                point.fault_rate
            );
            // Fault accounting: every injected fault is either detected
            // (recovered or cleanly failed) or hung at the livelock bound.
            assert_eq!(point.injected, point.detected + point.hung);
            assert!(point.recovered <= point.detected);
            if point.fault_rate == 0.0 {
                assert_eq!(point.injected, 0, "zero-rate point injected faults");
            } else {
                assert!(point.injected > 0, "fault point injected nothing");
            }
        }
        // The all-off baseline livelock-detects under faults; the full
        // recovery stack never hangs a walk.
        let faulted = |mechanism: Mechanism| {
            result
                .points
                .iter()
                .find(|p| p.mechanism == mechanism && p.fault_rate > 0.0)
                .unwrap()
        };
        assert!(faulted(Mechanism::AllOff).hung > 0);
        assert_eq!(faulted(Mechanism::AllOff).recovered, 0);
        assert_eq!(faulted(Mechanism::AllOn).hung, 0);
        assert!(faulted(Mechanism::AllOn).recovered > 0);
        assert!(faulted(Mechanism::AllOn).recovery_p50.is_some());
        // Recovery buys availability back.
        assert!(
            faulted(Mechanism::AllOn).availability > faulted(Mechanism::AllOff).availability,
            "recovery stack must out-complete the all-off baseline"
        );
        // Per-kind rows cover every kind of every fault-injecting point, and
        // their totals match the point rows.
        for point in result.points.iter().filter(|p| p.injected > 0) {
            let of_point: Vec<&ResilienceKindRow> = result
                .kinds
                .iter()
                .filter(|k| k.mechanism == point.mechanism && k.fault_rate == point.fault_rate)
                .collect();
            assert_eq!(of_point.len(), 4);
            assert_eq!(
                of_point.iter().map(|k| k.injected).sum::<u64>(),
                point.injected
            );
            assert_eq!(of_point.iter().map(|k| k.hung).sum::<u64>(), point.hung);
        }
        // Tables render with the expected shapes.
        assert_eq!(result.availability_table().rows().len(), 6);
        assert_eq!(result.recovery_table().rows().len(), 3);
        assert_eq!(result.overhead_table().rows().len(), 3);
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let serial = resilience_sweep_on(&ExperimentRunner::new(1), SMOKE).unwrap();
        let parallel = resilience_sweep_on(&ExperimentRunner::new(4), SMOKE).unwrap();
        assert_eq!(serial, parallel);
    }
}
