//! The open-loop serving experiment family: offered load × policy sweeps
//! with per-tenant SLO artifacts.
//!
//! Where [`crate::experiments::multi_tenant`] asks *how much slower does a
//! closed batch of tenants finish*, this family asks the datacenter question:
//! under open-loop traffic at a given offered load, **which requests meet
//! their latency SLO, and what does the front end do when they can't?** Each
//! sweep point runs tens of tenants with heterogeneous model mixes, arrival
//! shapes (Poisson / bursty / diurnal), and weights through bounded admission
//! queues and one shared NeuMMU translation engine, under one scheduling
//! policy. The artifacts are the serving classics:
//!
//! * exact (nearest-rank, never interpolated) per-tenant sojourn percentiles
//!   p50 / p99 / p99.9,
//! * goodput-under-overload curves — completed requests per Mcycle as offered
//!   load crosses saturation, per policy,
//! * queue-depth timelines per sweep point.
//!
//! Everything is deterministic: seeds derive from a fixed base via
//! [`derive_seed`], so the family's artifacts are byte-identical across
//! thread counts and store-resumed runs.

use serde::{Deserialize, Serialize};

use neummu_mmu::MmuConfig;

use crate::error::SimError;
use crate::experiments::ExperimentScale;
use crate::report::{norm, pct, ResultTable};
use crate::runner::ExperimentRunner;
use crate::serving::{
    derive_seed, ArrivalConfig, ArrivalShape, QueueDepthSample, ServingConfig, ServingPolicy,
    ServingSimulator, ServingTenantSpec,
};

/// Base seed of the family's arrival streams (each tenant's lane seed derives
/// from it via [`derive_seed`]).
pub const ARRIVAL_SEED: u64 = 0x00AD_BEEF_5E21_1E5C;

/// The policies the family sweeps, in artifact order.
#[must_use]
pub fn policies(scale: ExperimentScale) -> Vec<ServingPolicy> {
    let occupancy_cap_pct = match scale {
        // At full scale 32 tenants share the IOTLB, so a fair share is ~3%;
        // cap hogs at 8%. The smoke run has 4 tenants (fair share 25%).
        ExperimentScale::Full => 8,
        ExperimentScale::Smoke => 30,
    };
    vec![
        ServingPolicy::RoundRobin,
        ServingPolicy::WeightedFair,
        ServingPolicy::BurstQuantum,
        ServingPolicy::TlbAware { occupancy_cap_pct },
    ]
}

/// The offered-load factors swept at each scale, as fractions of the front
/// end's nominal one-transaction-per-cycle service capacity (so `2.0` is a
/// 2× overload — the goodput curve's interesting side).
#[must_use]
pub fn load_factors(scale: ExperimentScale) -> Vec<f64> {
    match scale {
        ExperimentScale::Full => vec![0.5, 1.0, 2.0],
        ExperimentScale::Smoke => vec![0.6, 1.8],
    }
}

/// Tenants per sweep point at each scale.
#[must_use]
pub fn tenant_count(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Full => 32,
        ExperimentScale::Smoke => 4,
    }
}

/// Arrival horizon (cycles of open-loop traffic) at each scale.
#[must_use]
pub fn horizon_cycles(scale: ExperimentScale) -> u64 {
    match scale {
        ExperimentScale::Full => 2_000_000,
        ExperimentScale::Smoke => 24_000,
    }
}

/// The serving configuration of one sweep point (shared by every policy and
/// load: only [`ServingConfig::policy`] varies across points).
#[must_use]
pub fn point_config(scale: ExperimentScale, policy: ServingPolicy) -> ServingConfig {
    let base = ServingConfig::with_mmu(MmuConfig::neummu()).with_policy(policy);
    match scale {
        ExperimentScale::Full => base,
        ExperimentScale::Smoke => base
            .with_burst(16)
            .with_txns_per_request(32)
            .with_queue_depth(8)
            .with_sample_interval(4096),
    }
}

/// The deterministic heterogeneous tenant population of one sweep point:
/// workloads cycle the scale's suite, arrival shapes cycle
/// Poisson → bursty → diurnal, weights cycle 1..=4, and every tenant gets a
/// decorrelated seed lane. `load_factor` is split evenly: each tenant offers
/// `load · capacity / (tenant_count · txns_per_request)` requests per cycle.
#[must_use]
pub fn tenant_population(
    scale: ExperimentScale,
    load_factor: f64,
    txns_per_request: u64,
) -> Vec<ServingTenantSpec> {
    let workloads = scale.workloads();
    let count = tenant_count(scale);
    let horizon = horizon_cycles(scale);
    let rate_per_mcycle = load_factor * 1e6 / (count as f64 * txns_per_request as f64);
    (0..count)
        .map(|index| {
            let shape = match index % 3 {
                0 => ArrivalShape::Poisson,
                1 => ArrivalShape::Bursty {
                    mean_burst_arrivals: 8.0,
                    duty_fraction: 0.25,
                },
                _ => ArrivalShape::Diurnal {
                    period_cycles: horizon / 4,
                    trough_fraction: 0.3,
                },
            };
            ServingTenantSpec {
                workload: workloads[index % workloads.len()],
                batch: 1,
                weight: 1 + (index as u64) % 4,
                arrivals: ArrivalConfig {
                    shape,
                    rate_per_mcycle,
                    horizon_cycles: horizon,
                    seed: derive_seed(ARRIVAL_SEED, index as u64),
                },
            }
        })
        .collect()
}

/// One tenant of one sweep point: queue accounting and exact SLO percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSloRow {
    /// Scheduling policy of the point.
    pub policy: ServingPolicy,
    /// Offered-load factor of the point.
    pub load_factor: f64,
    /// Tenant index within the point (its ASID allocation order).
    pub tenant_index: usize,
    /// `workload/batch` label.
    pub tenant_label: String,
    /// Arrival-shape label (`poisson` / `bursty` / `diurnal`).
    pub shape: &'static str,
    /// WFQ weight.
    pub weight: u64,
    /// Requests the arrival process offered.
    pub offered: u64,
    /// Requests whose service completed.
    pub completed: u64,
    /// Requests shed by the bounded queue.
    pub dropped: u64,
    /// Deepest the tenant's bounded queue ever got.
    pub peak_depth: u64,
    /// Exact nearest-rank sojourn percentiles in cycles (`None` when the
    /// tenant completed nothing).
    pub sojourn_p50: Option<u64>,
    /// Exact nearest-rank p99 sojourn.
    pub sojourn_p99: Option<u64>,
    /// Exact nearest-rank p99.9 sojourn.
    pub sojourn_p999: Option<u64>,
    /// Worst observed sojourn.
    pub sojourn_max: u64,
    /// Exact nearest-rank p99 of per-request translation-stall cycles.
    pub stall_p99: Option<u64>,
    /// DMA transactions the tenant's completed service issued.
    pub translation_requests: u64,
    /// IOTLB hit rate of the tenant's translations.
    pub tlb_hit_rate: f64,
}

/// One sweep point's aggregate: the goodput-curve sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingPointSummary {
    /// Scheduling policy of the point.
    pub policy: ServingPolicy,
    /// Offered-load factor of the point.
    pub load_factor: f64,
    /// Requests offered across all tenants.
    pub offered: u64,
    /// Requests completed across all tenants.
    pub completed: u64,
    /// Requests shed across all tenants.
    pub dropped: u64,
    /// Cycle at which the last completed request's data arrived.
    pub makespan_cycles: u64,
    /// Goodput: completed requests per Mcycle of makespan.
    pub goodput_per_mcycle: f64,
    /// Queue-depth timeline of the point.
    pub timeline: Vec<QueueDepthSample>,
}

/// The complete load × policy sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSweepResult {
    /// Tenants per point.
    pub tenant_count: usize,
    /// DMA transactions per request.
    pub txns_per_request: u64,
    /// Arrival horizon per point.
    pub horizon_cycles: u64,
    /// One row per `(policy, load, tenant)`.
    pub rows: Vec<ServingSloRow>,
    /// One summary per `(policy, load)`.
    pub points: Vec<ServingPointSummary>,
}

impl ServingSweepResult {
    /// The rows of one sweep point.
    pub fn rows_of(
        &self,
        policy: ServingPolicy,
        load_factor: f64,
    ) -> impl Iterator<Item = &ServingSloRow> {
        self.rows
            .iter()
            .filter(move |row| row.policy == policy && row.load_factor == load_factor)
    }

    /// Renders the per-tenant SLO table of the highest-load point of each
    /// policy (the tail percentiles under the worst pressure).
    #[must_use]
    pub fn slo_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            format!(
                "Serving SLO percentiles at peak load ({} tenants, exact nearest-rank)",
                self.tenant_count
            ),
            &[
                "Policy",
                "Load",
                "Tenant",
                "Shape",
                "Weight",
                "Offered",
                "Completed",
                "Dropped",
                "p50",
                "p99",
                "p99.9",
                "Max",
            ],
        );
        let Some(peak) = self
            .points
            .iter()
            .map(|p| p.load_factor)
            .fold(None, |max: Option<f64>, load| {
                Some(max.map_or(load, |m| m.max(load)))
            })
        else {
            return table;
        };
        let fmt = |p: Option<u64>| p.map_or_else(|| "-".to_string(), |v| v.to_string());
        for row in self.rows.iter().filter(|row| row.load_factor == peak) {
            table.push_row(&[
                row.policy.label().to_string(),
                norm(row.load_factor),
                row.tenant_label.clone(),
                row.shape.to_string(),
                row.weight.to_string(),
                row.offered.to_string(),
                row.completed.to_string(),
                row.dropped.to_string(),
                fmt(row.sojourn_p50),
                fmt(row.sojourn_p99),
                fmt(row.sojourn_p999),
                row.sojourn_max.to_string(),
            ]);
        }
        table
    }

    /// Renders the goodput-under-overload curve: one row per sweep point.
    #[must_use]
    pub fn goodput_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Serving goodput under offered load (completed requests per Mcycle)",
            &[
                "Policy",
                "Load",
                "Offered",
                "Completed",
                "Dropped",
                "Drop rate",
                "Goodput/Mcycle",
                "Makespan",
            ],
        );
        for point in &self.points {
            let drop_rate = if point.offered == 0 {
                0.0
            } else {
                point.dropped as f64 / point.offered as f64
            };
            table.push_row(&[
                point.policy.label().to_string(),
                norm(point.load_factor),
                point.offered.to_string(),
                point.completed.to_string(),
                point.dropped.to_string(),
                pct(drop_rate),
                norm(point.goodput_per_mcycle),
                point.makespan_cycles.to_string(),
            ]);
        }
        table
    }

    /// Renders per-tenant translation counters of the highest-load
    /// round-robin point (raw events behind the SLO numbers).
    #[must_use]
    pub fn counters_table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "Serving per-tenant translation counters (round-robin, peak load)",
            &[
                "Tenant",
                "Shape",
                "Requests",
                "TLB hit rate",
                "Stall p99",
                "Peak queue depth",
            ],
        );
        let Some(peak) = self
            .points
            .iter()
            .filter(|p| p.policy == ServingPolicy::RoundRobin)
            .map(|p| p.load_factor)
            .fold(None, |max: Option<f64>, load| {
                Some(max.map_or(load, |m| m.max(load)))
            })
        else {
            return table;
        };
        let fmt = |p: Option<u64>| p.map_or_else(|| "-".to_string(), |v| v.to_string());
        for row in self.rows_of(ServingPolicy::RoundRobin, peak) {
            table.push_row(&[
                row.tenant_label.clone(),
                row.shape.to_string(),
                row.translation_requests.to_string(),
                pct(row.tlb_hit_rate),
                fmt(row.stall_p99),
                row.peak_depth.to_string(),
            ]);
        }
        table
    }
}

/// Runs the load × policy sweep on a serial runner.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn serving_sweep(scale: ExperimentScale) -> Result<ServingSweepResult, SimError> {
    serving_sweep_on(&ExperimentRunner::serial(), scale)
}

/// [`serving_sweep`] on a caller-provided runner: one parallel job per
/// `(policy, load)` point. Job order is policy-major, load-minor; results are
/// reassembled in job-index order so the artifact is independent of thread
/// count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn serving_sweep_on(
    runner: &ExperimentRunner,
    scale: ExperimentScale,
) -> Result<ServingSweepResult, SimError> {
    let policies = policies(scale);
    let loads = load_factors(scale);
    let txns_per_request = point_config(scale, ServingPolicy::RoundRobin).txns_per_request;
    let grid: Vec<(ServingPolicy, f64)> = policies
        .iter()
        .flat_map(|&policy| loads.iter().map(move |&load| (policy, load)))
        .collect();
    let results = runner.run_jobs("serving/point", grid.len(), |i| {
        let (policy, load) = grid[i];
        let config = point_config(scale, policy);
        let population = tenant_population(scale, load, config.txns_per_request);
        ServingSimulator::new(config).run(&population)
    })?;

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (&(policy, load_factor), result) in grid.iter().zip(&results) {
        points.push(ServingPointSummary {
            policy,
            load_factor,
            offered: result.offered_requests(),
            completed: result.completed_requests(),
            dropped: result.stats.iter().map(|s| s.queue.dropped).sum(),
            makespan_cycles: result.makespan_cycles,
            goodput_per_mcycle: result.goodput_per_mcycle(),
            timeline: result.timeline.clone(),
        });
        for (tenant_index, (spec, stats)) in result.tenants.iter().zip(&result.stats).enumerate() {
            rows.push(ServingSloRow {
                policy,
                load_factor,
                tenant_index,
                tenant_label: spec.label(),
                shape: spec.arrivals.shape.label(),
                weight: spec.weight,
                offered: stats.queue.offered,
                completed: stats.queue.completed,
                dropped: stats.queue.dropped,
                peak_depth: stats.queue.peak_depth,
                sojourn_p50: stats.sojourn.p50(),
                sojourn_p99: stats.sojourn.p99(),
                sojourn_p999: stats.sojourn.p999(),
                sojourn_max: stats.sojourn.max(),
                stall_p99: stats.stall.p99(),
                translation_requests: stats.translation.requests,
                tlb_hit_rate: stats.translation.tlb_hit_rate(),
            });
        }
    }
    Ok(ServingSweepResult {
        tenant_count: tenant_count(scale),
        txns_per_request,
        horizon_cycles: horizon_cycles(scale),
        rows,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: ExperimentScale = ExperimentScale::Smoke;

    #[test]
    fn sweep_shapes_follow_the_scale() {
        assert_eq!(policies(SMOKE).len(), 4);
        assert_eq!(load_factors(SMOKE), vec![0.6, 1.8]);
        assert_eq!(tenant_count(ExperimentScale::Full), 32);
        assert_eq!(load_factors(ExperimentScale::Full), vec![0.5, 1.0, 2.0]);
        let population = tenant_population(SMOKE, 1.0, 32);
        assert_eq!(population.len(), 4);
        // Heterogeneity: all three arrival shapes appear, weights cycle.
        let shapes: Vec<&str> = population
            .iter()
            .map(|t| t.arrivals.shape.label())
            .collect();
        assert_eq!(shapes, ["poisson", "bursty", "diurnal", "poisson"]);
        assert_eq!(population[0].weight, 1);
        assert_eq!(population[3].weight, 4);
        // Seeds are decorrelated lanes of the family seed.
        assert_ne!(population[0].arrivals.seed, population[1].arrivals.seed);
    }

    #[test]
    fn smoke_sweep_produces_slo_artifacts() {
        let result = serving_sweep(SMOKE).unwrap();
        assert_eq!(result.points.len(), 4 * 2);
        assert_eq!(result.rows.len(), 4 * 2 * 4);
        for point in &result.points {
            assert!(
                point.offered > 0,
                "{} offered nothing",
                point.policy.label()
            );
            assert!(
                point.completed > 0,
                "{} completed nothing",
                point.policy.label()
            );
            assert!(!point.timeline.is_empty());
            // Conservation at drain: every offered request either completed
            // or was shed by the bounded queue.
            assert_eq!(point.offered, point.completed + point.dropped);
        }
        // Overload sheds load: the 1.8× points drop requests, the 0.6×
        // points drop (almost) none and complete more than they drop.
        let under: Vec<&ServingPointSummary> = result
            .points
            .iter()
            .filter(|p| p.load_factor < 1.0)
            .collect();
        let over: Vec<&ServingPointSummary> = result
            .points
            .iter()
            .filter(|p| p.load_factor > 1.0)
            .collect();
        let under_drop: u64 = under.iter().map(|p| p.dropped).sum();
        let over_drop: u64 = over.iter().map(|p| p.dropped).sum();
        assert!(
            over_drop > under_drop,
            "overload must shed more ({over_drop} vs {under_drop})"
        );
        // SLO percentiles are populated and ordered for every tenant that
        // completed requests.
        for row in &result.rows {
            if row.completed > 0 {
                let (p50, p99, p999) = (
                    row.sojourn_p50.unwrap(),
                    row.sojourn_p99.unwrap(),
                    row.sojourn_p999.unwrap(),
                );
                assert!(p50 <= p99 && p99 <= p999 && p999 <= row.sojourn_max);
            }
        }
        // Tables render with the expected shapes.
        assert_eq!(result.slo_table().rows().len(), 4 * 4);
        assert_eq!(result.goodput_table().rows().len(), 8);
        assert_eq!(result.counters_table().rows().len(), 4);
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let serial = serving_sweep_on(&ExperimentRunner::new(1), SMOKE).unwrap();
        let parallel = serving_sweep_on(&ExperimentRunner::new(4), SMOKE).unwrap();
        assert_eq!(serial, parallel);
    }
}
