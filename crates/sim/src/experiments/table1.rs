//! Table I: the baseline NPU / IOMMU / interconnect configuration.

use neummu_mem::dram::DramConfig;
use neummu_mem::interconnect::InterconnectConfig;
use neummu_mmu::MmuConfig;
use neummu_npu::NpuConfig;

use crate::report::ResultTable;
use crate::runner::ExperimentRunner;

/// [`run`] on a caller-provided runner (a single job, so the configuration
/// dump shows up in the self-profile like every other experiment).
#[must_use]
pub fn run_on(runner: &ExperimentRunner) -> ResultTable {
    runner
        .run_jobs("table1/configuration", 1, |_| Ok(run()))
        .expect("table1 is infallible")
        .remove(0)
}

/// Produces the Table I configuration dump as a result table.
#[must_use]
pub fn run() -> ResultTable {
    let npu = NpuConfig::tpu_like();
    let dram = DramConfig::table1();
    let mmu = MmuConfig::baseline_iommu();
    let ic = InterconnectConfig::table1();

    let mut table = ResultTable::new(
        "Table I: baseline configuration",
        &["Group", "Parameter", "Value"],
    );
    table.push_row(&["Processor", "Systolic-array dimension", "128 x 128"]);
    table.push_row(&[
        "Processor",
        "Operating frequency",
        &format!("{} GHz", npu.frequency_ghz),
    ]);
    table.push_row(&[
        "Processor",
        "Scratchpad size (activations/weights)",
        &format!(
            "{}/{} MB",
            npu.act_spm_bytes >> 20,
            npu.weight_spm_bytes >> 20
        ),
    ]);
    table.push_row(&[
        "Memory",
        "Number of memory channels",
        &dram.num_channels.to_string(),
    ]);
    table.push_row(&[
        "Memory",
        "Memory bandwidth",
        &format!("{} GB/sec", dram.bandwidth_bytes_per_cycle as u64),
    ]);
    table.push_row(&[
        "Memory",
        "Memory access latency",
        &format!("{} cycles", dram.access_latency_cycles),
    ]);
    table.push_row(&[
        "IOMMU",
        "Number of TLB entries",
        &mmu.tlb_entries.to_string(),
    ]);
    table.push_row(&[
        "IOMMU",
        "TLB hit latency",
        &format!("{} cycles", mmu.tlb_hit_latency),
    ]);
    table.push_row(&[
        "IOMMU",
        "Number of page-table walkers",
        &mmu.num_ptws.to_string(),
    ]);
    table.push_row(&[
        "IOMMU",
        "Latency to walk page-tables",
        &format!("{} cycles per level", mmu.walk_latency_per_level),
    ]);
    table.push_row(&[
        "Interconnect",
        "NUMA access latency",
        &format!("{} cycles", ic.numa_hop_latency_cycles),
    ]);
    table.push_row(&[
        "Interconnect",
        "CPU-NPU bandwidth",
        &format!("{} GB/sec", ic.pcie.bandwidth_bytes_per_cycle as u64),
    ]);
    table.push_row(&[
        "Interconnect",
        "NPU-NPU bandwidth",
        &format!("{} GB/sec", ic.npu_link.bandwidth_bytes_per_cycle as u64),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let table = run();
        let md = table.to_markdown();
        for expected in [
            "128 x 128",
            "1 GHz",
            "15/10 MB",
            "600 GB/sec",
            "100 cycles",
            "2048",
            "5 cycles",
            "100 cycles per level",
            "150 cycles",
            "16 GB/sec",
            "160 GB/sec",
        ] {
            assert!(md.contains(expected), "missing `{expected}` in:\n{md}");
        }
        assert_eq!(table.rows().len(), 13);
    }
}
