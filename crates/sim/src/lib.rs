//! Integrated NPU + MMU simulator and the per-figure experiment runners.
//!
//! This crate ties the substrates together into the two simulators the paper's
//! evaluation is built on:
//!
//! * [`dense`] — the per-layer, per-tile pipeline simulator for conventional
//!   dense DNNs (Figures 6–14 and the Section VI studies). It drives one
//!   translation request per DMA transaction through an
//!   [`neummu_mmu::AddressTranslator`] and overlaps each tile's compute phase
//!   with the next tile's memory phase, exactly as sketched in Figure 3.
//! * [`embedding`] — the multi-NPU embedding-layer case study of Section V
//!   (Figures 15 and 16): model-parallel embedding tables, CPU-relayed copies
//!   vs. fine-grained NUMA gathers vs. demand paging.
//!
//! Two schedulers stack on top: [`multi_tenant`] runs a closed-loop batch of
//! tenants to completion on one shared engine, and [`serving`] is the
//! open-loop datacenter leg — seeded arrival generators, bounded admission
//! queues, pluggable scheduling policies and exact SLO percentiles.
//!
//! [`experiments`] contains one runner per table/figure of the paper; each
//! returns a typed result that can be rendered with [`report`]. [`runner`]
//! executes those experiments as parallel job graphs on a scoped thread pool,
//! with memoized oracle baselines and a wall-clock self-profile; serial and
//! parallel schedules produce bit-identical results.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dense;
pub mod embedding;
pub mod error;
pub mod experiments;
pub mod multi_tenant;
pub mod persist;
pub mod report;
pub mod runner;
pub mod serving;

pub use dense::{DenseSimConfig, DenseSimulator, LayerResult, TranslationTrace, WorkloadResult};
pub use embedding::{
    EmbeddingPhaseBreakdown, EmbeddingSimConfig, EmbeddingSimulator, GatherStrategy,
};
pub use error::SimError;
pub use multi_tenant::{
    MultiTenantConfig, MultiTenantResult, ResourceMode, TenantScheduler, TenantSpec, TenantStats,
};
pub use report::ResultTable;
pub use runner::{ExperimentRunner, OracleCache, SelfProfile};
pub use serving::{
    ArrivalConfig, ArrivalShape, CircuitBreakerConfig, LatencyHistogram, OverflowPolicy,
    ServingConfig, ServingFaults, ServingPolicy, ServingResult, ServingSimulator,
    ServingTenantSpec,
};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::dense::{
        DenseSimConfig, DenseSimulator, LayerResult, TranslationTrace, WorkloadResult,
    };
    pub use crate::embedding::{
        EmbeddingPhaseBreakdown, EmbeddingSimConfig, EmbeddingSimulator, GatherStrategy,
    };
    pub use crate::error::SimError;
    pub use crate::multi_tenant::{
        MultiTenantConfig, MultiTenantResult, ResourceMode, TenantScheduler, TenantSpec,
        TenantStats,
    };
    pub use crate::report::ResultTable;
    pub use crate::runner::{ExperimentRunner, OracleCache, SelfProfile};
    pub use crate::serving::{
        ArrivalConfig, ArrivalShape, CircuitBreakerConfig, LatencyHistogram, OverflowPolicy,
        ServingConfig, ServingFaults, ServingPolicy, ServingResult, ServingSimulator,
        ServingTenantSpec,
    };
}
