//! Multi-tenant NPU sharing: one translation front end, many tenants.
//!
//! The paper models a single address space per NPU, but the serving scenario
//! it motivates — a TPU-style accelerator behind heavy inference traffic —
//! time-shares one NPU between many models and users. This module supplies
//! the timing model for that scenario:
//!
//! * every tenant is a dense workload with a **private page table** (its own
//!   [`neummu_vmem::AddressSpace`], registered under an [`Asid`] in an
//!   [`AddressSpaceRegistry`]),
//! * a [`TenantScheduler`] multiplexes the tenants' DMA translation streams
//!   onto **one shared cycle-accounted translation engine and one shared
//!   HBM** with round-robin, burst-interleaved scheduling (the DMA front end
//!   accepts at most one translation request per cycle, so tenants contend
//!   for IOTLB capacity, PTS/PRMB slots, walker bandwidth and DRAM
//!   bandwidth),
//! * per-tenant [`TenantStats`] event counters (in the spirit of
//!   CounterPoint's cheap measured counters) expose exactly where the
//!   cross-tenant interference lands: TLB hit-rate collapse, lost merges,
//!   extra walker occupancy, stall cycles.
//!
//! The model follows the dense simulator's accounting of the *memory phase*:
//! each tenant's stream is the exact per-transaction DMA decomposition of its
//! layers' tile fetches (one translation request per transaction, data
//! scheduled on the DRAM bandwidth server once the translation completes),
//! and a tenant is finished when its last byte has arrived. Compute phases
//! are not modelled here — translation throughput under contention is the
//! quantity of interest, and it is unaffected by the overlap structure.
//!
//! [`ResourceMode::Isolated`] runs the same interleaved schedule with
//! per-tenant private engines, DRAM servers and clocks — contention
//! disabled. A tenant's stats in that mode are *identical* to a run of that
//! tenant alone, which is both the baseline that defines per-tenant slowdown
//! and a sharp correctness check on the scheduler's bookkeeping (locked in by
//! a proptest in `crates/sim/tests/multi_tenant.rs`).

use serde::{Deserialize, Serialize};

use neummu_mem::dram::{DramConfig, DramModel};
use neummu_mmu::{MmuConfig, MmuKind, TranslationEngine, TranslationSource};
use neummu_npu::{DmaEngine, NpuConfig, PageRun, PageRunIter, TileFetch, TilingPlan};
use neummu_vmem::{
    AddressSpaceRegistry, Asid, MemNode, NodeSpec, PhysicalMemory, SegmentOptions, VirtAddr,
};
use neummu_workloads::{DenseWorkload, WorkloadId};

use crate::error::SimError;
use crate::serving::{PolicyState, ServingPolicy};

/// One tenant time-sharing the NPU: a dense workload at a batch size.
///
/// # Example
///
/// ```
/// use neummu_sim::multi_tenant::TenantSpec;
/// use neummu_workloads::WorkloadId;
///
/// let tenant = TenantSpec::new(WorkloadId::Cnn1, 1);
/// assert_eq!(tenant.label(), "CNN-1/b01");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// The tenant's workload.
    pub workload: WorkloadId,
    /// The tenant's batch size.
    pub batch: u64,
}

impl TenantSpec {
    /// Creates a tenant spec.
    #[must_use]
    pub fn new(workload: WorkloadId, batch: u64) -> Self {
        TenantSpec { workload, batch }
    }

    /// Human-readable `workload/batch` label (figure notation).
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/b{:02}", self.workload.label(), self.batch)
    }
}

/// Whether tenants contend for the translation and memory hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceMode {
    /// One IOTLB, one walker pool, one DRAM shared by every tenant — the
    /// contended serving scenario.
    Shared,
    /// Contention disabled: every tenant gets private resources and a
    /// private clock. Per-tenant results are identical to running each
    /// tenant alone (the slowdown baseline).
    Isolated,
}

/// Configuration of a multi-tenant scheduler run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantConfig {
    /// MMU design point of the (shared or per-tenant) translation engine.
    /// Must be cycle-accounted ([`MmuKind::Oracle`] is rejected: an oracle
    /// translates for free, so there is nothing to contend for).
    pub mmu: MmuConfig,
    /// NPU architecture parameters (tiling, DMA transaction size).
    pub npu: NpuConfig,
    /// Local memory system parameters.
    pub dram: DramConfig,
    /// Memory node the tenants' operands live on.
    pub node: MemNode,
    /// Backing capacity allocated to each tenant's operands.
    pub memory_capacity_bytes: u64,
    /// Scheduling quantum: how many DMA transactions a tenant issues before
    /// the front end switches to the next tenant (burst interleaving; `1` is
    /// fine-grained round-robin).
    pub burst_transactions: u64,
    /// Shared (contended) or isolated (contention-free baseline) resources.
    pub mode: ResourceMode,
}

impl MultiTenantConfig {
    /// The paper's default setup (TPU-like NPU, Table I memory system) with
    /// the given MMU design point, shared resources and a 64-transaction
    /// scheduling burst.
    #[must_use]
    pub fn with_mmu(mmu: MmuConfig) -> Self {
        MultiTenantConfig {
            mmu,
            npu: NpuConfig::tpu_like(),
            dram: DramConfig::table1(),
            node: MemNode::Npu(0),
            memory_capacity_bytes: 64 << 30,
            burst_transactions: 64,
            mode: ResourceMode::Shared,
        }
    }

    /// Disables contention: per-tenant private engines, DRAM and clocks.
    #[must_use]
    pub fn isolated(mut self) -> Self {
        self.mode = ResourceMode::Isolated;
        self
    }

    /// Overrides the scheduling burst (transactions per tenant turn).
    #[must_use]
    pub fn with_burst(mut self, burst_transactions: u64) -> Self {
        self.burst_transactions = burst_transactions;
        self
    }
}

/// Per-tenant event counters and timing of one scheduler run.
///
/// The counters are the multi-tenant extension of the repo's telemetry
/// philosophy: cheap measured event counts that validate (or refute) the
/// microarchitectural story — here, how much of a tenant's slowdown is TLB
/// contention vs walker occupancy vs front-end stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant's context tag.
    pub asid: Asid,
    /// Translation requests issued (one per DMA transaction).
    pub requests: u64,
    /// Requests that hit the (shared) IOTLB.
    pub tlb_hits: u64,
    /// Requests merged into an in-flight same-context walk by the PTS/PRMB.
    pub merged: u64,
    /// Page-table walks spent on this tenant.
    pub walks: u64,
    /// Page-table levels read by this tenant's walks (its walker-occupancy
    /// and walk-energy footprint).
    pub walk_levels_read: u64,
    /// Translation faults (always zero for eagerly mapped dense operands).
    pub faults: u64,
    /// Cycles this tenant's requests spent stalled for translation bandwidth
    /// (accept cycle minus issue cycle, summed).
    pub stall_cycles: u64,
    /// Cycle at which the tenant's last byte of data arrived.
    pub completion_cycle: u64,
    /// IOTLB entries the tenant held when it finished (capacity share).
    pub final_tlb_occupancy: u64,
}

impl TenantStats {
    pub(crate) fn new(asid: Asid) -> Self {
        TenantStats {
            asid,
            requests: 0,
            tlb_hits: 0,
            merged: 0,
            walks: 0,
            walk_levels_read: 0,
            faults: 0,
            stall_cycles: 0,
            completion_cycle: 0,
            final_tlb_occupancy: 0,
        }
    }

    /// IOTLB hit rate of the tenant's own request stream.
    #[must_use]
    pub fn tlb_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / self.requests as f64
        }
    }

    /// Cycles of walker busy time attributable to the tenant, given the
    /// engine's per-level walk latency.
    #[must_use]
    pub fn walker_busy_cycles(&self, walk_latency_per_level: u64) -> u64 {
        self.walk_levels_read * walk_latency_per_level
    }
}

/// The outcome of one multi-tenant scheduler run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantResult {
    /// Tenant mix the run executed, in ASID order.
    pub tenants: Vec<TenantSpec>,
    /// Per-tenant counters and timing, in ASID order.
    pub stats: Vec<TenantStats>,
    /// Cycle at which the last tenant finished.
    pub makespan_cycles: u64,
}

impl MultiTenantResult {
    /// The stats of the tenant registered under `asid`.
    #[must_use]
    pub fn tenant(&self, asid: Asid) -> Option<&TenantStats> {
        self.stats.get(asid.index())
    }

    /// Each tenant's share of the total walker busy cycles (the
    /// walker-occupancy breakdown; empty if no tenant walked).
    #[must_use]
    pub fn walker_occupancy_shares(&self) -> Vec<f64> {
        let total: u64 = self.stats.iter().map(|s| s.walk_levels_read).sum();
        if total == 0 {
            return vec![0.0; self.stats.len()];
        }
        self.stats
            .iter()
            .map(|s| s.walk_levels_read as f64 / total as f64)
            .collect()
    }
}

/// One tenant's DMA translation stream: the page-run decomposition of its
/// layers' tile fetches, yielded lazily in program order.
///
/// The stream hands out [`PageRun`]s clipped to the scheduler's remaining
/// burst quota, so a run never spans a tenant switch; a run the shared
/// engine could not fully replay is pushed back and resumes from its suffix.
/// The transaction sequence this produces is exactly the per-transaction
/// decomposition the scheduler used to iterate.
///
/// A *cyclic* stream (the open-loop serving simulator's mode) restarts from
/// the first fetch when the last one is exhausted — each inference request
/// re-fetches the model's operands at the same virtual addresses — and
/// therefore never runs dry.
pub(crate) struct TenantStream {
    dma: DmaEngine,
    /// `(segment base, fetch)` for every IA/W fetch of every tile of every
    /// layer, in issue order.
    fetches: Vec<(u64, TileFetch)>,
    next_fetch: usize,
    current: Option<(u64, PageRunIter)>,
    /// Remainder of a clipped or partially consumed run (with its base VA).
    pending: Option<(u64, PageRun)>,
    /// Wrap around at the end of the fetch list instead of ending.
    cyclic: bool,
}

impl TenantStream {
    /// Creates a stream over the given fetch list.
    pub(crate) fn new(dma: DmaEngine, fetches: Vec<(u64, TileFetch)>, cyclic: bool) -> Self {
        TenantStream {
            dma,
            fetches,
            next_fetch: 0,
            current: None,
            pending: None,
            cyclic,
        }
    }

    /// Fetches not yet started (a backlog proxy for depth-aware policies; the
    /// in-progress fetch is not counted).
    pub(crate) fn fetches_remaining(&self) -> u64 {
        (self.fetches.len() - self.next_fetch) as u64
    }

    /// The next same-page run of at most `max_txns` transactions, with the
    /// segment base VA its offsets are relative to.
    pub(crate) fn next_run(&mut self, max_txns: u64, page_bytes: u64) -> Option<(u64, PageRun)> {
        let (base, run) = match self.pending.take() {
            Some(pending) => pending,
            None => loop {
                if let Some((base, iter)) = self.current.as_mut() {
                    if let Some(run) = iter.next() {
                        break (*base, run);
                    }
                    self.current = None;
                }
                if self.next_fetch == self.fetches.len() && self.cyclic {
                    self.next_fetch = 0;
                }
                let &(base, fetch) = self.fetches.get(self.next_fetch)?;
                self.next_fetch += 1;
                self.current = Some((base, self.dma.page_runs(&fetch, base, page_bytes)));
            },
        };
        if run.txn_count > max_txns {
            self.pending = Some((base, run.suffix(max_txns)));
            Some((base, run.prefix(max_txns)))
        } else {
            Some((base, run))
        }
    }

    /// Returns the unconsumed tail of a run to the front of the stream.
    ///
    /// When the run being returned was itself the clipped prefix of a longer
    /// run, the clip remainder is still pending; the two are contiguous
    /// pieces of the same original run, so they are rejoined rather than one
    /// overwriting the other.
    pub(crate) fn push_back(&mut self, base: u64, run: PageRun) {
        self.pending = Some(match self.pending.take() {
            Some((pending_base, clip_remainder)) => {
                debug_assert_eq!(base, pending_base, "pieces of one run share a base");
                (base, run.join(&clip_remainder))
            }
            None => (base, run),
        });
    }
}

/// Maps one tenant's dense operands (per-layer IA and weight segments) into
/// its private address space and returns the `(segment base, fetch)` pairs of
/// its tile fetch stream, in issue order. Shared between the closed-loop
/// scheduler and the open-loop serving simulator so both drive the engine
/// with identical per-tenant streams.
pub(crate) fn map_tenant_fetches(
    space: &mut neummu_vmem::AddressSpace,
    workload: WorkloadId,
    batch: u64,
    npu: &NpuConfig,
    node: MemNode,
    memory_capacity_bytes: u64,
    page_size: neummu_vmem::PageSize,
) -> Result<Vec<(u64, TileFetch)>, SimError> {
    // Every tenant draws frames from its own backing pool: physical frame
    // identity never affects timing, and a private pool keeps a tenant's
    // layout independent of who else is scheduled.
    let mut memory = PhysicalMemory::new(&[NodeSpec::new(node, memory_capacity_bytes)]);
    let layers = DenseWorkload::new(workload).layers(batch);
    let seg_opts = SegmentOptions::new(node, page_size);
    let mut fetches = Vec::new();
    for (layer_index, layer) in layers.iter().enumerate() {
        let plan = TilingPlan::for_layer(layer, npu)?;
        let ia_seg = space.alloc_segment(
            format!("l{layer_index}_{}_ia", layer.name()),
            plan.ia_segment_bytes().max(1),
            seg_opts,
            &mut memory,
        )?;
        let w_seg = space.alloc_segment(
            format!("l{layer_index}_{}_w", layer.name()),
            plan.w_segment_bytes().max(1),
            seg_opts,
            &mut memory,
        )?;
        for tile in plan.tiles() {
            if let Some(fetch) = tile.ia_fetch {
                fetches.push((ia_seg.start().raw(), fetch));
            }
            if let Some(fetch) = tile.w_fetch {
                fetches.push((w_seg.start().raw(), fetch));
            }
        }
    }
    Ok(fetches)
}

/// Per-tenant or shared simulation resources, depending on the mode.
struct Resources {
    engines: Vec<TranslationEngine>,
    drams: Vec<DramModel>,
    clocks: Vec<u64>,
}

impl Resources {
    fn index_for(&self, tenant: usize) -> usize {
        if self.engines.len() == 1 {
            0
        } else {
            tenant
        }
    }
}

/// Burst-interleaving scheduler that multiplexes N tenants' translation
/// streams onto one NPU's translation front end under a pluggable
/// [`ServingPolicy`] (round-robin by default — the historical behaviour,
/// bit-identical to the original rotation).
#[derive(Debug, Clone)]
pub struct TenantScheduler {
    config: MultiTenantConfig,
    policy: ServingPolicy,
    /// Per-tenant WFQ weights (tenant-indexed; missing entries default to 1).
    weights: Vec<u64>,
}

impl TenantScheduler {
    /// Creates a round-robin scheduler with the given configuration.
    #[must_use]
    pub fn new(config: MultiTenantConfig) -> Self {
        TenantScheduler {
            config,
            policy: ServingPolicy::RoundRobin,
            weights: Vec::new(),
        }
    }

    /// Overrides the scheduling policy (round-robin if never called).
    #[must_use]
    pub fn with_policy(mut self, policy: ServingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets per-tenant weighted-fair weights (tenant-indexed; missing entries
    /// default to 1; only read by [`ServingPolicy::WeightedFair`]).
    #[must_use]
    pub fn with_weights(mut self, weights: Vec<u64>) -> Self {
        self.weights = weights;
        self
    }

    /// The scheduler's configuration.
    #[must_use]
    pub fn config(&self) -> &MultiTenantConfig {
        &self.config
    }

    /// The scheduler's policy.
    #[must_use]
    pub fn policy(&self) -> ServingPolicy {
        self.policy
    }

    /// Runs the tenant mix to completion and returns per-tenant counters.
    ///
    /// Tenants are registered in order (tenant `i` gets ASID `i`), their
    /// streams are interleaved in bursts of
    /// [`MultiTenantConfig::burst_transactions`] transactions, and the run
    /// ends when every stream is exhausted and its data has arrived.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] for an empty tenant list, a zero burst,
    ///   or an oracular MMU (nothing to contend for).
    /// * Propagates tiling and mapping errors.
    pub fn run(&self, tenants: &[TenantSpec]) -> Result<MultiTenantResult, SimError> {
        let config = &self.config;
        if tenants.is_empty() {
            return Err(SimError::InvalidConfig {
                reason: "multi-tenant run needs at least one tenant".to_string(),
            });
        }
        if config.burst_transactions == 0 {
            return Err(SimError::InvalidConfig {
                reason: "scheduling burst must be at least one transaction".to_string(),
            });
        }
        if config.mmu.kind == MmuKind::Oracle {
            return Err(SimError::InvalidConfig {
                reason: "the multi-tenant scheduler models contention on a cycle-accounted \
                         engine; the oracular MMU has nothing to contend for"
                    .to_string(),
            });
        }
        config.npu.validate()?;

        // Per-tenant address spaces (private page tables) and streams.
        let mut registry = AddressSpaceRegistry::new();
        let mut streams = Vec::with_capacity(tenants.len());
        let mut stats: Vec<TenantStats> = Vec::with_capacity(tenants.len());
        for spec in tenants {
            let asid = registry.create(format!("tenant-{}", spec.label()));
            let space = registry.get_mut(asid).expect("just created");
            let fetches = map_tenant_fetches(
                space,
                spec.workload,
                spec.batch,
                &config.npu,
                config.node,
                config.memory_capacity_bytes,
                config.mmu.page_size,
            )?;
            streams.push(TenantStream::new(
                DmaEngine::new(config.npu.dma),
                fetches,
                false,
            ));
            stats.push(TenantStats::new(asid));
        }

        // Shared mode: one engine/DRAM/clock. Isolated mode: one per tenant.
        let replicas = match config.mode {
            ResourceMode::Shared => 1,
            ResourceMode::Isolated => tenants.len(),
        };
        let mut resources = Resources {
            engines: (0..replicas)
                .map(|_| TranslationEngine::new(config.mmu))
                .collect(),
            drams: (0..replicas).map(|_| DramModel::new(config.dram)).collect(),
            clocks: vec![0u64; replicas],
        };

        // Policy-picked turns over live tenants, `burst_transactions` per
        // turn. Each turn consumes its quantum as same-page runs through the
        // run-coalesced engine path: runs are clipped to the remaining quota
        // (a run never spans a tenant switch), and a partially replayed run
        // resumes from its suffix — so the request sequence the shared
        // engine observes is exactly the old per-transaction interleaving.
        // Under the default round-robin policy the cyclic cursor visits live
        // tenants in exactly the order the original `VecDeque` rotation did
        // (pop front, serve, push back), so default runs are bit-identical to
        // the pre-policy scheduler.
        let page_bytes = config.mmu.page_size.bytes();
        // One `tenant/turn` trace span per scheduler turn: the tenant's slice
        // of the shared front end, in simulated cycles, with the number of
        // transactions it got through as the payload.
        let turn_trace = neummu_trace::global().map(|sink| (sink, sink.kind("tenant/turn")));
        let mut policy_state = PolicyState::new(self.policy, tenants.len(), &self.weights);
        let mut live = vec![true; tenants.len()];
        let mut live_count = tenants.len();
        let mut depths = vec![0u64; tenants.len()];
        let mut occupancies = vec![0u64; tenants.len()];
        while live_count > 0 {
            if self.policy.needs_depths() {
                for (tenant, depth) in depths.iter_mut().enumerate() {
                    *depth = if live[tenant] {
                        streams[tenant].fetches_remaining()
                    } else {
                        0
                    };
                }
            }
            if self.policy.needs_occupancy() {
                for (tenant, occupancy) in occupancies.iter_mut().enumerate() {
                    *occupancy = resources.engines[resources.index_for(tenant)]
                        .tlb()
                        .occupancy_of(stats[tenant].asid) as u64;
                }
            }
            let tlb_capacity = resources.engines[0].tlb().capacity() as u64;
            let tenant = policy_state
                .pick(&live, &depths, &occupancies, tlb_capacity)
                .expect("at least one tenant is live");
            use neummu_mmu::AddressTranslator as _;
            let slot = resources.index_for(tenant);
            let asid = stats[tenant].asid;
            let turn_start = resources.clocks[slot];
            let space = registry.get(asid).expect("registered above");
            let page_table = space.page_table();
            let mut exhausted = false;
            let mut quota = config.burst_transactions;
            while quota > 0 {
                let Some((base, run)) = streams[tenant].next_run(quota, page_bytes) else {
                    exhausted = true;
                    break;
                };
                let issue = resources.clocks[slot];
                let va = VirtAddr::new(base + run.first.offset);
                let out = resources.engines[slot].translate_run_tagged(
                    page_table,
                    asid,
                    va,
                    run.txn_count,
                    issue,
                );
                let tenant_stats = &mut stats[tenant];
                tenant_stats.requests += out.consumed;
                tenant_stats.stall_cycles += out.first.accept_cycle - issue;
                for (source, requests) in
                    [(out.first.source, 1), (out.replay_source, out.replayed())]
                {
                    if requests == 0 {
                        continue;
                    }
                    match source {
                        TranslationSource::TlbHit => tenant_stats.tlb_hits += requests,
                        TranslationSource::Merged => tenant_stats.merged += requests,
                        TranslationSource::PageWalk { levels_read } => {
                            tenant_stats.walks += requests;
                            tenant_stats.walk_levels_read += requests * u64::from(levels_read);
                        }
                        TranslationSource::Oracle => unreachable!("oracle configs are rejected"),
                    }
                }
                if out.first.fault {
                    tenant_stats.faults += 1;
                }
                if out.replay_fault {
                    tenant_stats.faults += out.replayed();
                }
                resources.clocks[slot] = out.last_accept() + 1;
                let scheduled = run.prefix(out.consumed);
                let data_ready = resources.drams[slot].schedule_run(
                    out.first.complete_cycle,
                    out.complete_stride,
                    scheduled.txn_count,
                    scheduled.first.bytes,
                    scheduled.interior_txn_bytes(),
                    scheduled.txn_len(scheduled.txn_count - 1),
                );
                tenant_stats.completion_cycle = tenant_stats.completion_cycle.max(data_ready);
                quota -= out.consumed;
                if out.consumed < run.txn_count {
                    streams[tenant].push_back(base, run.suffix(out.consumed));
                }
            }
            let consumed = config.burst_transactions - quota;
            if let Some((sink, kind)) = turn_trace {
                if consumed > 0 {
                    sink.emit(neummu_trace::Event {
                        kind,
                        asid: asid.raw(),
                        start: turn_start,
                        end: resources.clocks[slot],
                        payload: consumed,
                    });
                }
            }
            policy_state.charge(tenant, consumed);
            if exhausted {
                stats[tenant].final_tlb_occupancy = resources.engines[resources.index_for(tenant)]
                    .tlb()
                    .occupancy_of(asid) as u64;
                live[tenant] = false;
                live_count -= 1;
            }
        }

        let makespan_cycles = stats.iter().map(|s| s.completion_cycle).max().unwrap_or(0);
        Ok(MultiTenantResult {
            tenants: tenants.to_vec(),
            stats,
            makespan_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_tenants(n: usize) -> Vec<TenantSpec> {
        let mix = [WorkloadId::Cnn1, WorkloadId::Rnn2];
        (0..n).map(|i| TenantSpec::new(mix[i % 2], 1)).collect()
    }

    #[test]
    fn empty_zero_burst_and_oracle_configs_are_rejected() {
        let scheduler = TenantScheduler::new(MultiTenantConfig::with_mmu(MmuConfig::neummu()));
        assert!(matches!(
            scheduler.run(&[]),
            Err(SimError::InvalidConfig { .. })
        ));
        let zero_burst =
            TenantScheduler::new(MultiTenantConfig::with_mmu(MmuConfig::neummu()).with_burst(0));
        assert!(matches!(
            zero_burst.run(&smoke_tenants(1)),
            Err(SimError::InvalidConfig { .. })
        ));
        let oracle = TenantScheduler::new(MultiTenantConfig::with_mmu(MmuConfig::oracle()));
        assert!(matches!(
            oracle.run(&smoke_tenants(1)),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn single_tenant_shared_equals_isolated() {
        // With one tenant there is nobody to contend with: shared and
        // isolated modes must agree bit for bit.
        let tenants = smoke_tenants(1);
        let shared = TenantScheduler::new(MultiTenantConfig::with_mmu(MmuConfig::neummu()))
            .run(&tenants)
            .unwrap();
        let isolated =
            TenantScheduler::new(MultiTenantConfig::with_mmu(MmuConfig::neummu()).isolated())
                .run(&tenants)
                .unwrap();
        assert_eq!(shared, isolated);
        assert!(shared.stats[0].requests > 0);
        assert_eq!(shared.makespan_cycles, shared.stats[0].completion_cycle);
    }

    #[test]
    fn contention_slows_tenants_down() {
        let tenants = smoke_tenants(2);
        let shared = TenantScheduler::new(MultiTenantConfig::with_mmu(MmuConfig::neummu()))
            .run(&tenants)
            .unwrap();
        let isolated =
            TenantScheduler::new(MultiTenantConfig::with_mmu(MmuConfig::neummu()).isolated())
                .run(&tenants)
                .unwrap();
        for (s, i) in shared.stats.iter().zip(&isolated.stats) {
            assert_eq!(s.requests, i.requests, "same stream either way");
            assert!(
                s.completion_cycle >= i.completion_cycle,
                "sharing cannot speed a tenant up: {} vs {}",
                s.completion_cycle,
                i.completion_cycle
            );
        }
        assert!(
            shared.makespan_cycles
                > isolated
                    .stats
                    .iter()
                    .map(|s| s.completion_cycle)
                    .max()
                    .unwrap()
                    / 2,
            "two interleaved tenants cannot be faster than half an isolated tenant"
        );
    }

    #[test]
    fn isolated_interleaved_matches_solo_runs() {
        // The contention-disabled interleaved run must reproduce each
        // tenant's solo run exactly (modulo the ASID tag).
        let tenants = smoke_tenants(2);
        let config = MultiTenantConfig::with_mmu(MmuConfig::neummu()).isolated();
        let interleaved = TenantScheduler::new(config).run(&tenants).unwrap();
        for (index, spec) in tenants.iter().enumerate() {
            let solo = TenantScheduler::new(config).run(&[*spec]).unwrap();
            let mut expected = solo.stats[0];
            expected.asid = Asid::new(index as u16);
            assert_eq!(interleaved.stats[index], expected, "{}", spec.label());
        }
    }

    #[test]
    fn partially_replayed_clipped_runs_lose_no_transactions() {
        // Regression: a run clipped by the burst quantum whose prefix the
        // engine then only partially replays (here a 1-slot PRMB exhausts
        // after the first merge) must resume from the rejoined remainder —
        // not overwrite it. Per-tenant request totals are invariant under
        // the burst quantum: burst 1 clips every run to a single
        // transaction, so it can never hit the partial-replay path and
        // serves as the reference stream length.
        let tenants = smoke_tenants(2);
        let mmu = MmuConfig::neummu().with_ptws(2).with_prmb_slots(1);
        let reference = TenantScheduler::new(MultiTenantConfig::with_mmu(mmu).with_burst(1))
            .run(&tenants)
            .unwrap();
        for burst in [3u64, 5, 64] {
            let clipped = TenantScheduler::new(MultiTenantConfig::with_mmu(mmu).with_burst(burst))
                .run(&tenants)
                .unwrap();
            for (tenant, (c, r)) in clipped.stats.iter().zip(&reference.stats).enumerate() {
                assert_eq!(
                    c.requests, r.requests,
                    "tenant {tenant} lost transactions at burst {burst}"
                );
                assert_eq!(c.tlb_hits + c.merged + c.walks, c.requests);
            }
        }
    }

    #[test]
    fn walker_occupancy_shares_sum_to_one() {
        let result = TenantScheduler::new(MultiTenantConfig::with_mmu(MmuConfig::neummu()))
            .run(&smoke_tenants(2))
            .unwrap();
        let shares = result.walker_occupancy_shares();
        assert_eq!(shares.len(), 2);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "shares sum to {sum}");
        assert!(result.tenant(Asid::new(0)).is_some());
        assert!(result.tenant(Asid::new(7)).is_none());
    }
}
