//! Binary codecs that let simulation results live in a [`neummu_store`] slot.
//!
//! The vendored `serde` stand-in can serialize but not deserialize, so the
//! persistent oracle store needs an explicit, versioned binary format. The
//! codecs here are plain functions (not trait impls — both the types and any
//! candidate trait are foreign to this pairing) that write every field in
//! declaration order through [`neummu_store::ByteWriter`] and read them back
//! symmetrically through [`neummu_store::ByteReader`], with
//! [`ByteReader::finish`] rejecting trailing bytes so a schema drift between
//! writer and reader can never be silently absorbed.
//!
//! Versioning is carried by the store *key namespace*, not by the payload:
//! keys are minted under [`ORACLE_NAMESPACE`] / [`TENANT_NAMESPACE`], and any
//! change to the encoded layout must bump the namespace so old slots become
//! key-mismatch misses (recomputed, never misread).
//!
//! [`ByteReader::finish`]: neummu_store::ByteReader::finish

use neummu_npu::TensorKind;
use neummu_store::{ByteReader, ByteWriter, CodecError};
use neummu_vmem::Asid;

use crate::dense::{LayerResult, TranslationTrace, WorkloadResult};
use crate::multi_tenant::TenantStats;

/// Key namespace for persisted dense/oracle [`WorkloadResult`] slots. Bump
/// the `v` on any codec change.
pub const ORACLE_NAMESPACE: &str = "oracle/v1";

/// Key namespace for persisted multi-tenant [`TenantStats`] baselines.
pub const TENANT_NAMESPACE: &str = "tenant/v1";

fn put_tensor_kind(writer: &mut ByteWriter, kind: TensorKind) {
    writer.u8(match kind {
        TensorKind::InputActivation => 0,
        TensorKind::Weight => 1,
        TensorKind::OutputActivation => 2,
    });
}

fn take_tensor_kind(reader: &mut ByteReader<'_>) -> Result<TensorKind, CodecError> {
    match reader.u8()? {
        0 => Ok(TensorKind::InputActivation),
        1 => Ok(TensorKind::Weight),
        2 => Ok(TensorKind::OutputActivation),
        _ => Err(CodecError::Invalid("unknown TensorKind tag")),
    }
}

fn put_translation_stats(writer: &mut ByteWriter, stats: &neummu_mmu::TranslationStats) {
    writer.u64(stats.requests);
    writer.u64(stats.tlb_hits);
    writer.u64(stats.tlb_misses);
    writer.u64(stats.merged);
    writer.u64(stats.walks);
    writer.u64(stats.walk_memory_accesses);
    writer.u64(stats.tpreg_skipped_levels);
    writer.u64(stats.tpreg_l4_hits);
    writer.u64(stats.tpreg_l3_hits);
    writer.u64(stats.tpreg_l2_hits);
    writer.u64(stats.tpreg_lookups);
    writer.u64(stats.structural_stalls);
    writer.u64(stats.stall_cycles);
    writer.u64(stats.faults);
    writer.u64(stats.last_completion_cycle);
}

fn take_translation_stats(
    reader: &mut ByteReader<'_>,
) -> Result<neummu_mmu::TranslationStats, CodecError> {
    Ok(neummu_mmu::TranslationStats {
        requests: reader.u64()?,
        tlb_hits: reader.u64()?,
        tlb_misses: reader.u64()?,
        merged: reader.u64()?,
        walks: reader.u64()?,
        walk_memory_accesses: reader.u64()?,
        tpreg_skipped_levels: reader.u64()?,
        tpreg_l4_hits: reader.u64()?,
        tpreg_l3_hits: reader.u64()?,
        tpreg_l2_hits: reader.u64()?,
        tpreg_lookups: reader.u64()?,
        structural_stalls: reader.u64()?,
        stall_cycles: reader.u64()?,
        faults: reader.u64()?,
        last_completion_cycle: reader.u64()?,
    })
}

fn put_layer_result(writer: &mut ByteWriter, layer: &LayerResult) {
    writer.str(&layer.layer_name);
    writer.u64(layer.step_cycles);
    writer.u64(layer.repeats);
    writer.u64(layer.total_cycles);
    writer.u64(layer.compute_cycles);
    writer.u64(layer.memory_cycles);
    writer.u64(layer.tile_count);
    writer.u64(layer.translation_requests);
    writer.u64(layer.max_pages_per_tile);
    writer.f64(layer.avg_pages_per_tile);
}

fn take_layer_result(reader: &mut ByteReader<'_>) -> Result<LayerResult, CodecError> {
    Ok(LayerResult {
        layer_name: reader.str()?,
        step_cycles: reader.u64()?,
        repeats: reader.u64()?,
        total_cycles: reader.u64()?,
        compute_cycles: reader.u64()?,
        memory_cycles: reader.u64()?,
        tile_count: reader.u64()?,
        translation_requests: reader.u64()?,
        max_pages_per_tile: reader.u64()?,
        avg_pages_per_tile: reader.f64()?,
    })
}

fn put_trace(writer: &mut ByteWriter, trace: &TranslationTrace) {
    writer.u64(trace.window_cycles);
    writer.u64(trace.counts.len() as u64);
    for &count in &trace.counts {
        writer.u64(count);
    }
    writer.u64(trace.tile_va_windows.len() as u64);
    for &(tile, kind, start, end) in &trace.tile_va_windows {
        writer.u64(tile);
        put_tensor_kind(writer, kind);
        writer.u64(start);
        writer.u64(end);
    }
    writer.bool(trace.windows_truncated);
}

fn take_len(reader: &mut ByteReader<'_>) -> Result<usize, CodecError> {
    let len = reader.u64()?;
    // Each element needs at least one byte; anything longer than the
    // remaining input is structurally impossible, not merely truncated.
    if len > reader.remaining() as u64 {
        return Err(CodecError::Invalid("length prefix exceeds input"));
    }
    Ok(len as usize)
}

fn take_trace(reader: &mut ByteReader<'_>) -> Result<TranslationTrace, CodecError> {
    let window_cycles = reader.u64()?;
    let count_len = take_len(reader)?;
    let mut counts = Vec::with_capacity(count_len);
    for _ in 0..count_len {
        counts.push(reader.u64()?);
    }
    let window_len = take_len(reader)?;
    let mut tile_va_windows = Vec::with_capacity(window_len);
    for _ in 0..window_len {
        let tile = reader.u64()?;
        let kind = take_tensor_kind(reader)?;
        let start = reader.u64()?;
        let end = reader.u64()?;
        tile_va_windows.push((tile, kind, start, end));
    }
    let windows_truncated = reader.bool()?;
    Ok(TranslationTrace {
        window_cycles,
        counts,
        tile_va_windows,
        windows_truncated,
    })
}

/// Encodes a [`WorkloadResult`] (layers, translation stats and optional
/// traces included) into the store payload format.
#[must_use]
pub fn encode_workload_result(result: &WorkloadResult) -> Vec<u8> {
    let mut writer = ByteWriter::new();
    writer.u64(result.total_cycles);
    writer.u64(result.layers.len() as u64);
    for layer in &result.layers {
        put_layer_result(&mut writer, layer);
    }
    put_translation_stats(&mut writer, &result.translation);
    writer.f64(result.translation_energy_nj);
    writer.u64(result.walk_memory_accesses);
    writer.bool(result.trace.is_some());
    if let Some(trace) = &result.trace {
        put_trace(&mut writer, trace);
    }
    writer.into_bytes()
}

/// Decodes a payload produced by [`encode_workload_result`].
///
/// # Errors
///
/// [`CodecError`] if the payload is truncated, carries an unknown tag, or
/// has trailing bytes (a writer/reader schema mismatch).
pub fn decode_workload_result(payload: &[u8]) -> Result<WorkloadResult, CodecError> {
    let mut reader = ByteReader::new(payload);
    let total_cycles = reader.u64()?;
    let layer_len = take_len(&mut reader)?;
    let mut layers = Vec::with_capacity(layer_len);
    for _ in 0..layer_len {
        layers.push(take_layer_result(&mut reader)?);
    }
    let translation = take_translation_stats(&mut reader)?;
    let translation_energy_nj = reader.f64()?;
    let walk_memory_accesses = reader.u64()?;
    let trace = if reader.bool()? {
        Some(take_trace(&mut reader)?)
    } else {
        None
    };
    reader.finish()?;
    Ok(WorkloadResult {
        total_cycles,
        layers,
        translation,
        translation_energy_nj,
        walk_memory_accesses,
        trace,
    })
}

/// Encodes the per-tenant baseline table persisted for multi-tenant isolation
/// experiments.
#[must_use]
pub fn encode_tenant_stats(stats: &[TenantStats]) -> Vec<u8> {
    let mut writer = ByteWriter::new();
    writer.u64(stats.len() as u64);
    for tenant in stats {
        writer.u16(tenant.asid.raw());
        writer.u64(tenant.requests);
        writer.u64(tenant.tlb_hits);
        writer.u64(tenant.merged);
        writer.u64(tenant.walks);
        writer.u64(tenant.walk_levels_read);
        writer.u64(tenant.faults);
        writer.u64(tenant.stall_cycles);
        writer.u64(tenant.completion_cycle);
        writer.u64(tenant.final_tlb_occupancy);
    }
    writer.into_bytes()
}

/// Decodes a payload produced by [`encode_tenant_stats`].
///
/// # Errors
///
/// [`CodecError`] on truncated input or trailing bytes.
pub fn decode_tenant_stats(payload: &[u8]) -> Result<Vec<TenantStats>, CodecError> {
    let mut reader = ByteReader::new(payload);
    let len = take_len(&mut reader)?;
    let mut stats = Vec::with_capacity(len);
    for _ in 0..len {
        stats.push(TenantStats {
            asid: Asid::new(reader.u16()?),
            requests: reader.u64()?,
            tlb_hits: reader.u64()?,
            merged: reader.u64()?,
            walks: reader.u64()?,
            walk_levels_read: reader.u64()?,
            faults: reader.u64()?,
            stall_cycles: reader.u64()?,
            completion_cycle: reader.u64()?,
            final_tlb_occupancy: reader.u64()?,
        });
    }
    reader.finish()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{DenseSimConfig, DenseSimulator};

    fn sample_result(with_trace: bool) -> WorkloadResult {
        let workload = neummu_workloads::DenseWorkload::new(neummu_workloads::WorkloadId::Rnn1);
        let mut config = DenseSimConfig::with_mmu(neummu_mmu::MmuConfig::neummu());
        if with_trace {
            config = config.with_traces();
        }
        DenseSimulator::new(config)
            .simulate_workload(&workload.layers(1))
            .expect("dense run")
    }

    #[test]
    fn workload_result_roundtrips_without_trace() {
        let result = sample_result(false);
        let decoded = decode_workload_result(&encode_workload_result(&result)).unwrap();
        assert_eq!(decoded, result);
    }

    #[test]
    fn workload_result_roundtrips_with_trace() {
        let result = sample_result(true);
        assert!(result.trace.is_some(), "trace recording must be on");
        let decoded = decode_workload_result(&encode_workload_result(&result)).unwrap();
        assert_eq!(decoded, result);
    }

    #[test]
    fn truncated_and_padded_payloads_are_rejected() {
        let bytes = encode_workload_result(&sample_result(false));
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_workload_result(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(matches!(
            decode_workload_result(&padded),
            Err(CodecError::TrailingBytes)
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        // A payload claiming u64::MAX layers must fail fast on the length
        // check, not attempt a giant reservation.
        let mut writer = ByteWriter::new();
        writer.u64(123); // total_cycles
        writer.u64(u64::MAX); // layer count
        assert!(matches!(
            decode_workload_result(&writer.into_bytes()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn tenant_stats_roundtrip() {
        let stats = vec![
            TenantStats {
                asid: Asid::new(1),
                requests: 10,
                tlb_hits: 7,
                merged: 1,
                walks: 2,
                walk_levels_read: 8,
                faults: 0,
                stall_cycles: 5,
                completion_cycle: 999,
                final_tlb_occupancy: 12,
            },
            TenantStats {
                asid: Asid::new(2),
                requests: 3,
                tlb_hits: 0,
                merged: 0,
                walks: 3,
                walk_levels_read: 12,
                faults: 1,
                stall_cycles: 44,
                completion_cycle: 1234,
                final_tlb_occupancy: 1,
            },
        ];
        let decoded = decode_tenant_stats(&encode_tenant_stats(&stats)).unwrap();
        assert_eq!(decoded, stats);
    }

    #[test]
    fn tensor_kind_tags_are_exhaustive_and_stable() {
        for kind in [
            TensorKind::InputActivation,
            TensorKind::Weight,
            TensorKind::OutputActivation,
        ] {
            let mut writer = ByteWriter::new();
            put_tensor_kind(&mut writer, kind);
            let bytes = writer.into_bytes();
            let mut reader = ByteReader::new(&bytes);
            assert_eq!(take_tensor_kind(&mut reader).unwrap(), kind);
            reader.finish().unwrap();
        }
        let mut reader = ByteReader::new(&[9]);
        assert!(take_tensor_kind(&mut reader).is_err());
    }
}
