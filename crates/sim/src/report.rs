//! Result tables: the tabular output format shared by every experiment.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A simple rectangular result table with a title, column headers and rows.
///
/// Every experiment runner returns its data both as typed records and as a
/// `ResultTable`, which the `neummu-experiments` binary renders to Markdown
/// and CSV artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row<S: ToString>(&mut self, row: &[S]) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table `{}` has {} columns",
            row.len(),
            self.title,
            self.headers.len()
        );
        self.rows
            .push(row.iter().map(ToString::to_string).collect());
    }

    /// Renders the table as GitHub-flavoured Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table as CSV (header row first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats a normalized value with three decimals.
#[must_use]
pub fn norm(value: f64) -> String {
    format!("{value:.3}")
}

/// Geometric mean of a slice of positive values (0.0 for an empty slice).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice (0.0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render_markdown() {
        let mut table = ResultTable::new("Figure 8", &["Workload", "Batch", "Normalized perf"]);
        table.push_row(&["CNN-1", "1", "0.051"]);
        table.push_row(&["RNN-1", "8", "0.034"]);
        let md = table.to_markdown();
        assert!(md.contains("### Figure 8"));
        assert!(md.contains("| CNN-1 | 1 | 0.051 |"));
        assert!(md.starts_with("### "));
        assert_eq!(table.rows().len(), 2);
        assert_eq!(table.to_string(), md);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut table = ResultTable::new("t", &["a", "b"]);
        table.push_row(&["x,y", "he said \"hi\""]);
        let csv = table.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_rejected() {
        let mut table = ResultTable::new("t", &["a", "b"]);
        table.push_row(&["only one"]);
    }

    #[test]
    fn statistics_helpers() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(norm(0.9999), "1.000");
    }
}
