//! The parallel experiment runner.
//!
//! The paper's evaluation is a grid of `(workload, batch, MMU design point)`
//! simulation cells, every cell independent of every other. This module turns
//! that grid into a job list executed on a hand-rolled scoped thread pool
//! ([`pool`]), with two cross-cutting services:
//!
//! * an **oracle-memoization cache** ([`oracle_cache`]) so that each oracle
//!   baseline — which depends only on `(workload, batch, page size, NPU)`,
//!   never on the candidate MMU — is simulated exactly once per runner
//!   lifetime instead of once per swept configuration, and
//! * a **self-profile** ([`profile`]) recording per-job wall-clock time under
//!   a phase label, so `neummu-experiments` can report where simulation time
//!   goes.
//!
//! # Determinism
//!
//! Parallel and serial schedules produce bit-identical results: each job is a
//! pure function of its index, results are collected in index order, and all
//! floating-point aggregation happens after collection, in that order. The
//! memoized oracle result is produced by exactly the simulation the serial
//! path would run, so sharing it cannot perturb a single bit. This is locked
//! in by the `determinism` integration test and by the CI step that diffs a
//! `--threads 4` artifact tree against a serial one.

pub mod oracle_cache;
pub mod pool;
pub mod profile;

pub use oracle_cache::{OracleCache, OracleKey};
pub use profile::{PhaseStats, SelfProfile};

use std::sync::Arc;
use std::time::Instant;

use neummu_mmu::MmuConfig;
use neummu_npu::NpuConfig;
use neummu_vmem::PageSize;
use neummu_workloads::{DenseWorkload, WorkloadId};

use crate::dense::{DenseSimConfig, DenseSimulator, WorkloadResult};
use crate::error::SimError;

/// Executes experiment job graphs on a thread pool with shared oracle
/// memoization and self-profiling.
///
/// One runner is meant to live for a whole experiments run (the
/// `neummu-experiments` binary builds exactly one), so oracle baselines are
/// shared across experiment families: Figure 8 and the Section IV-D summary,
/// for example, normalize against the very same memoized baselines.
#[derive(Debug)]
pub struct ExperimentRunner {
    threads: usize,
    oracle_cache: OracleCache,
    profile: SelfProfile,
}

impl Default for ExperimentRunner {
    /// Equivalent to `ExperimentRunner::new(0)`: available parallelism.
    fn default() -> Self {
        Self::new(0)
    }
}

impl ExperimentRunner {
    /// Creates a runner with the given worker-thread count; `0` selects the
    /// machine's available parallelism and `1` is the serial reference path.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        ExperimentRunner {
            threads,
            oracle_cache: OracleCache::new(),
            profile: SelfProfile::new(),
        }
    }

    /// A single-threaded runner (today's serial execution order).
    #[must_use]
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Attaches a persistent slot store (see
    /// [`OracleCache::attach_store`]): memoized baselines are restored from
    /// and committed to it, so interrupted sweeps resume instead of
    /// recomputing. Builder-style, called before the runner is shared.
    #[must_use]
    pub fn with_store(mut self, store: Arc<neummu_store::Store>) -> Self {
        self.oracle_cache.attach_store(store);
        self
    }

    /// Number of worker threads jobs run on.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared oracle-baseline cache.
    #[must_use]
    pub fn oracle_cache(&self) -> &OracleCache {
        &self.oracle_cache
    }

    /// The wall-clock self-profile accumulated so far.
    #[must_use]
    pub fn profile(&self) -> &SelfProfile {
        &self.profile
    }

    /// Runs `job(0..count)` on the pool and returns the results in job-index
    /// order, recording each job's wall-clock time under `phase`.
    ///
    /// # Errors
    ///
    /// If any job fails, returns the error of the lowest-indexed failing job
    /// (independent of scheduling, so error reporting is deterministic too).
    pub fn run_jobs<T, F>(&self, phase: &str, count: usize, job: F) -> Result<Vec<T>, SimError>
    where
        T: Send,
        F: Fn(usize) -> Result<T, SimError> + Sync,
    {
        pool::run_indexed(self.threads, count, |index| {
            let started = Instant::now();
            let result = job(index);
            self.profile.record(phase, started.elapsed());
            result
        })
        .into_iter()
        .collect()
    }

    /// Simulates one dense-suite point under the given MMU and NPU (the
    /// uncached candidate leg of a normalized measurement).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn dense_point(
        &self,
        workload: WorkloadId,
        batch: u64,
        mmu: MmuConfig,
        npu: NpuConfig,
    ) -> Result<WorkloadResult, SimError> {
        let mut config = DenseSimConfig::with_mmu(mmu);
        config.npu = npu;
        let layers = DenseWorkload::new(workload).layers(batch);
        DenseSimulator::new(config).simulate_workload(&layers)
    }

    /// The memoized oracle baseline for a dense-suite point. A baseline that
    /// actually simulates here is profiled under the dedicated
    /// `oracle/baseline` phase rather than the phase of whichever experiment
    /// job happened to request its key first. (Phase timings are inclusive
    /// wall-clock per job, so a job blocked on another thread's in-flight
    /// baseline still counts that wait in its own phase.)
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn oracle_point(
        &self,
        workload: WorkloadId,
        batch: u64,
        page_size: PageSize,
        npu: NpuConfig,
    ) -> Result<Arc<WorkloadResult>, SimError> {
        self.oracle_cache
            .oracle_result_with(workload, batch, page_size, npu, |elapsed| {
                self.profile.record("oracle/baseline", elapsed);
            })
    }

    /// The memoized contention-free baseline of one tenant: its solo run
    /// through the multi-tenant scheduler with isolation forced on. This is
    /// the denominator of every per-tenant slowdown, keyed by the tenant
    /// point *plus* the scenario fingerprint (MMU design point and
    /// scheduling burst), so a tenant-count sweep simulates each distinct
    /// baseline exactly once per runner lifetime.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn isolated_tenant_point(
        &self,
        spec: crate::multi_tenant::TenantSpec,
        config: crate::multi_tenant::MultiTenantConfig,
    ) -> Result<Arc<crate::multi_tenant::TenantStats>, SimError> {
        let isolated = config.isolated();
        // The whole config is the scenario: every field (MMU design point,
        // DRAM parameters, node, capacity, burst) can shift the baseline's
        // completion cycles, so all of it goes into the fingerprint.
        let key = oracle_cache::OracleKey::for_scenario(
            spec.workload,
            spec.batch,
            isolated.mmu.page_size,
            &isolated.npu,
            format!("mt-isolated/{isolated:?}"),
        );
        self.oracle_cache.tenant_baseline_with(
            key,
            || {
                crate::multi_tenant::TenantScheduler::new(isolated)
                    .run(std::slice::from_ref(&spec))
                    .map(|result| result.stats[0])
            },
            |elapsed| {
                self.profile
                    .record("multi_tenant/isolated-baseline", elapsed)
            },
        )
    }

    /// Performance of `mmu` on a point, normalized to the memoized oracle
    /// baseline at the same page size.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn normalized_point(
        &self,
        workload: WorkloadId,
        batch: u64,
        mmu: MmuConfig,
        npu: NpuConfig,
    ) -> Result<f64, SimError> {
        let oracle = self.oracle_point(workload, batch, mmu.page_size, npu)?;
        let candidate = self.dense_point(workload, batch, mmu, npu)?;
        Ok(candidate.normalized_to(&oracle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let runner = ExperimentRunner::new(0);
        assert!(runner.threads() >= 1);
        assert_eq!(ExperimentRunner::serial().threads(), 1);
        assert_eq!(ExperimentRunner::new(4).threads(), 4);
    }

    #[test]
    fn run_jobs_preserves_index_order_and_profiles() {
        let runner = ExperimentRunner::new(4);
        let results = runner
            .run_jobs("square", 32, |i| Ok(i * i))
            .expect("jobs are infallible");
        assert_eq!(results[31], 31 * 31);
        let phases = runner.profile().phases();
        assert_eq!(phases["square"].jobs, 32);
    }

    #[test]
    fn run_jobs_reports_the_lowest_indexed_error() {
        let runner = ExperimentRunner::new(4);
        let result: Result<Vec<usize>, SimError> = runner.run_jobs("failing", 16, |i| {
            if i % 2 == 1 {
                Err(SimError::InvalidConfig {
                    reason: format!("job {i}"),
                })
            } else {
                Ok(i)
            }
        });
        match result {
            Err(SimError::InvalidConfig { reason }) => assert_eq!(reason, "job 1"),
            other => panic!("expected the job-1 error, got {other:?}"),
        }
    }

    #[test]
    fn normalized_point_uses_the_cache() {
        let runner = ExperimentRunner::serial();
        let npu = NpuConfig::tpu_like();
        let a = runner
            .normalized_point(WorkloadId::Cnn1, 1, MmuConfig::baseline_iommu(), npu)
            .unwrap();
        let b = runner
            .normalized_point(WorkloadId::Cnn1, 1, MmuConfig::neummu(), npu)
            .unwrap();
        assert!(a > 0.0 && b > 0.0);
        assert_eq!(runner.oracle_cache().simulations(), 1);
        assert_eq!(runner.oracle_cache().hits(), 1);
    }
}
