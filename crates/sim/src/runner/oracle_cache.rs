//! Memoization of oracle baseline simulations.
//!
//! Every normalized figure divides a candidate configuration's cycles by the
//! oracular MMU's cycles on the same `(workload, batch)` point. The oracle
//! result does not depend on the candidate MMU at all — only on the workload,
//! the batch size, the translation page size and the NPU architecture — so a
//! sweep over N MMU configurations used to re-simulate the same baseline N
//! times. The cache below runs each baseline exactly once per distinct key and
//! hands out shared references to the result, across threads and across
//! experiments within one runner.
//!
//! The multi-tenant experiment family reuses the same key type for its
//! *isolated tenant baselines* (a tenant's contention-free solo run, the
//! denominator of every per-tenant slowdown): [`OracleKey::scenario`] carries
//! the ASID/tenant-mix fingerprint — MMU design point, scheduling burst,
//! resource mode — so a tenant-count sweep 1→8 simulates each distinct
//! tenant's baseline once instead of once per sweep point.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use neummu_mmu::MmuConfig;
use neummu_npu::NpuConfig;
use neummu_vmem::PageSize;
use neummu_workloads::{DenseWorkload, WorkloadId};

use crate::dense::{DenseSimConfig, DenseSimulator, WorkloadResult};
use crate::error::SimError;
use crate::multi_tenant::TenantStats;

/// Identity of one oracle baseline simulation.
///
/// The paper's sweeps vary only the MMU, so `(workload, batch, page size)`
/// is the key within an experiment family; the NPU fingerprint keeps the
/// spatial-array studies (Section VI-B) from aliasing the TPU-like baselines.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OracleKey {
    /// Workload identity.
    pub workload: WorkloadId,
    /// Batch size.
    pub batch: u64,
    /// Page size the oracle translates at.
    pub page_size: PageSize,
    /// Stable fingerprint of the NPU architecture parameters.
    pub npu_fingerprint: String,
    /// Scenario discriminator. Empty for the classic dense oracle baseline;
    /// the multi-tenant family stores its ASID/tenant-mix fingerprint here
    /// (MMU design point, scheduling burst, resource mode) so isolated
    /// tenant baselines never alias oracle baselines — or each other across
    /// different engine configurations.
    pub scenario: String,
}

impl OracleKey {
    /// Builds the key for a `(workload, batch, page size, NPU)` oracle
    /// baseline point (the empty scenario).
    #[must_use]
    pub fn new(workload: WorkloadId, batch: u64, page_size: PageSize, npu: &NpuConfig) -> Self {
        OracleKey {
            workload,
            batch,
            page_size,
            // NpuConfig is a plain-old-data struct; its Debug rendering is a
            // deterministic fingerprint of every architecture parameter.
            npu_fingerprint: format!("{npu:?}"),
            scenario: String::new(),
        }
    }

    /// [`OracleKey::new`] with an explicit scenario fingerprint (the
    /// multi-tenant isolated-baseline namespace).
    #[must_use]
    pub fn for_scenario(
        workload: WorkloadId,
        batch: u64,
        page_size: PageSize,
        npu: &NpuConfig,
        scenario: impl Into<String>,
    ) -> Self {
        let mut key = Self::new(workload, batch, page_size, npu);
        key.scenario = scenario.into();
        key
    }
}

type Slot<T> = Arc<OnceLock<Result<Arc<T>, SimError>>>;
type SlotMap<T> = Mutex<HashMap<OracleKey, Slot<T>>>;

/// A thread-safe, exactly-once cache of oracle baseline results (and, under
/// scenario-tagged keys, of the multi-tenant family's isolated tenant
/// baselines).
#[derive(Debug, Default)]
pub struct OracleCache {
    slots: SlotMap<WorkloadResult>,
    tenant_slots: SlotMap<TenantStats>,
    simulations: AtomicU64,
    hits: AtomicU64,
}

impl OracleCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the oracle baseline for the point, simulating it on the first
    /// request for its key and reusing the shared result afterwards.
    ///
    /// Concurrent requests for the same key block on the in-flight simulation
    /// instead of duplicating it, so each key is simulated exactly once per
    /// cache lifetime.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (the error is also memoized).
    pub fn oracle_result(
        &self,
        workload: WorkloadId,
        batch: u64,
        page_size: PageSize,
        npu: NpuConfig,
    ) -> Result<Arc<WorkloadResult>, SimError> {
        self.oracle_result_with(workload, batch, page_size, npu, |_| {})
    }

    /// [`OracleCache::oracle_result`], invoking `on_simulated` with the
    /// simulation's wall-clock duration if (and only if) this call actually
    /// ran the baseline — the hook the runner uses to attribute baseline time
    /// to its own self-profile phase instead of whichever experiment happened
    /// to request the key first.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (the error is also memoized).
    pub fn oracle_result_with(
        &self,
        workload: WorkloadId,
        batch: u64,
        page_size: PageSize,
        npu: NpuConfig,
        on_simulated: impl FnOnce(Duration),
    ) -> Result<Arc<WorkloadResult>, SimError> {
        let key = OracleKey::new(workload, batch, page_size, &npu);
        self.memoized(
            &self.slots,
            key,
            || simulate_oracle(workload, batch, page_size, npu),
            on_simulated,
        )
    }

    /// The shared exactly-once core: looks up (or creates) the key's slot in
    /// `map`, runs `simulate` on first initialization (counted as a
    /// simulation, reported via `on_simulated`), and serves every later
    /// request from the slot (counted as a hit). Concurrent requests for the
    /// same key block on the in-flight simulation instead of duplicating it.
    fn memoized<T>(
        &self,
        map: &SlotMap<T>,
        key: OracleKey,
        simulate: impl FnOnce() -> Result<T, SimError>,
        on_simulated: impl FnOnce(Duration),
    ) -> Result<Arc<T>, SimError> {
        let slot = {
            let mut slots = map.lock().expect("oracle cache poisoned");
            Arc::clone(slots.entry(key).or_default())
        };
        let mut simulated: Option<Duration> = None;
        let result = slot.get_or_init(|| {
            self.simulations.fetch_add(1, Ordering::Relaxed);
            let started = Instant::now();
            let result = simulate().map(Arc::new);
            simulated = Some(started.elapsed());
            result
        });
        match simulated {
            Some(elapsed) => on_simulated(elapsed),
            None => {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        result.clone()
    }

    /// Returns the memoized result of `simulate` for a scenario-tagged key
    /// (the multi-tenant family's isolated tenant baselines), running it on
    /// the first request for the key and sharing the result afterwards —
    /// exactly-once semantics identical to [`OracleCache::oracle_result_with`].
    /// `on_simulated` fires with the wall-clock duration only when this call
    /// actually simulated.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (the error is also memoized).
    pub fn tenant_baseline_with(
        &self,
        key: OracleKey,
        simulate: impl FnOnce() -> Result<TenantStats, SimError>,
        on_simulated: impl FnOnce(Duration),
    ) -> Result<Arc<TenantStats>, SimError> {
        self.memoized(&self.tenant_slots, key, simulate, on_simulated)
    }

    /// Number of oracle simulations actually executed.
    #[must_use]
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Number of requests served from the cache without simulating.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of distinct keys resident in the cache (oracle baselines plus
    /// scenario-tagged tenant baselines).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().expect("oracle cache poisoned").len()
            + self
                .tenant_slots
                .lock()
                .expect("oracle cache poisoned")
                .len()
    }

    /// True if no baseline has been requested yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The canonical oracle baseline simulation for a dense-suite point: the
/// paper's default setup with the oracular MMU at the given page size. This is
/// exactly what [`crate::experiments::performance`] normalizes against, so a
/// memoized result is bit-identical to a freshly simulated one.
fn simulate_oracle(
    workload: WorkloadId,
    batch: u64,
    page_size: PageSize,
    npu: NpuConfig,
) -> Result<WorkloadResult, SimError> {
    let mut config = DenseSimConfig::with_mmu(MmuConfig::oracle().with_page_size(page_size));
    config.npu = npu;
    let layers = DenseWorkload::new(workload).layers(batch);
    DenseSimulator::new(config).simulate_workload(&layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_request_hits_without_resimulating() {
        let cache = OracleCache::new();
        let npu = NpuConfig::tpu_like();
        let a = cache
            .oracle_result(WorkloadId::Cnn1, 1, PageSize::Size4K, npu)
            .unwrap();
        let b = cache
            .oracle_result(WorkloadId::Cnn1, 1, PageSize::Size4K, npu)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.simulations(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_page_sizes_and_npus_get_distinct_entries() {
        let cache = OracleCache::new();
        let tpu = NpuConfig::tpu_like();
        let spatial = NpuConfig::spatial_array();
        cache
            .oracle_result(WorkloadId::Rnn2, 1, PageSize::Size4K, tpu)
            .unwrap();
        cache
            .oracle_result(WorkloadId::Rnn2, 1, PageSize::Size2M, tpu)
            .unwrap();
        cache
            .oracle_result(WorkloadId::Rnn2, 1, PageSize::Size4K, spatial)
            .unwrap();
        assert_eq!(cache.simulations(), 3);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn scenario_tagged_tenant_baselines_memoize_exactly_once() {
        use crate::multi_tenant::{MultiTenantConfig, TenantScheduler, TenantSpec};
        use neummu_mmu::MmuConfig;

        let cache = OracleCache::new();
        let npu = NpuConfig::tpu_like();
        let config = MultiTenantConfig::with_mmu(MmuConfig::neummu()).isolated();
        let key = || {
            OracleKey::for_scenario(
                WorkloadId::Cnn1,
                1,
                PageSize::Size4K,
                &npu,
                format!(
                    "mt-isolated/{:?}/burst{}",
                    config.mmu, config.burst_transactions
                ),
            )
        };
        let simulate = || {
            TenantScheduler::new(config)
                .run(&[TenantSpec::new(WorkloadId::Cnn1, 1)])
                .map(|r| r.stats[0])
        };
        let a = cache.tenant_baseline_with(key(), simulate, |_| {}).unwrap();
        let b = cache
            .tenant_baseline_with(key(), || panic!("second request must hit"), |_| {})
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.simulations(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        // A scenario-tagged key never aliases the untagged oracle namespace.
        cache
            .oracle_result(WorkloadId::Cnn1, 1, PageSize::Size4K, npu)
            .unwrap();
        assert_eq!(cache.simulations(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn memoized_result_equals_a_direct_simulation() {
        let cache = OracleCache::new();
        let npu = NpuConfig::tpu_like();
        let cached = cache
            .oracle_result(WorkloadId::Rnn2, 1, PageSize::Size4K, npu)
            .unwrap();
        let direct = simulate_oracle(WorkloadId::Rnn2, 1, PageSize::Size4K, npu).unwrap();
        assert_eq!(*cached, direct);
    }
}
