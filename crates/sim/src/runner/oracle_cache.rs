//! Memoization of oracle baseline simulations.
//!
//! Every normalized figure divides a candidate configuration's cycles by the
//! oracular MMU's cycles on the same `(workload, batch)` point. The oracle
//! result does not depend on the candidate MMU at all — only on the workload,
//! the batch size, the translation page size and the NPU architecture — so a
//! sweep over N MMU configurations used to re-simulate the same baseline N
//! times. The cache below runs each baseline exactly once per distinct key and
//! hands out shared references to the result, across threads and across
//! experiments within one runner.
//!
//! The multi-tenant experiment family reuses the same key type for its
//! *isolated tenant baselines* (a tenant's contention-free solo run, the
//! denominator of every per-tenant slowdown): [`OracleKey::scenario`] carries
//! the ASID/tenant-mix fingerprint — MMU design point, scheduling burst,
//! resource mode — so a tenant-count sweep 1→8 simulates each distinct
//! tenant's baseline once instead of once per sweep point.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use neummu_mmu::MmuConfig;
use neummu_npu::NpuConfig;
use neummu_store::Store;
use neummu_vmem::PageSize;
use neummu_workloads::{DenseWorkload, WorkloadId};

use crate::dense::{DenseSimConfig, DenseSimulator, WorkloadResult};
use crate::error::SimError;
use crate::multi_tenant::TenantStats;
use crate::persist::{
    decode_tenant_stats, decode_workload_result, encode_tenant_stats, encode_workload_result,
    ORACLE_NAMESPACE, TENANT_NAMESPACE,
};

/// Identity of one oracle baseline simulation.
///
/// The paper's sweeps vary only the MMU, so `(workload, batch, page size)`
/// is the key within an experiment family; the NPU fingerprint keeps the
/// spatial-array studies (Section VI-B) from aliasing the TPU-like baselines.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OracleKey {
    /// Workload identity.
    pub workload: WorkloadId,
    /// Batch size.
    pub batch: u64,
    /// Page size the oracle translates at.
    pub page_size: PageSize,
    /// Stable fingerprint of the NPU architecture parameters.
    pub npu_fingerprint: String,
    /// Scenario discriminator. Empty for the classic dense oracle baseline;
    /// the multi-tenant family stores its ASID/tenant-mix fingerprint here
    /// (MMU design point, scheduling burst, resource mode) so isolated
    /// tenant baselines never alias oracle baselines — or each other across
    /// different engine configurations.
    pub scenario: String,
}

impl OracleKey {
    /// Builds the key for a `(workload, batch, page size, NPU)` oracle
    /// baseline point (the empty scenario).
    #[must_use]
    pub fn new(workload: WorkloadId, batch: u64, page_size: PageSize, npu: &NpuConfig) -> Self {
        OracleKey {
            workload,
            batch,
            page_size,
            // NpuConfig is a plain-old-data struct; its Debug rendering is a
            // deterministic fingerprint of every architecture parameter.
            npu_fingerprint: format!("{npu:?}"),
            scenario: String::new(),
        }
    }

    /// [`OracleKey::new`] with an explicit scenario fingerprint (the
    /// multi-tenant isolated-baseline namespace).
    #[must_use]
    pub fn for_scenario(
        workload: WorkloadId,
        batch: u64,
        page_size: PageSize,
        npu: &NpuConfig,
        scenario: impl Into<String>,
    ) -> Self {
        let mut key = Self::new(workload, batch, page_size, npu);
        key.scenario = scenario.into();
        key
    }
}

type Slot<T> = Arc<OnceLock<Result<Arc<T>, SimError>>>;
type SlotMap<T> = Mutex<HashMap<OracleKey, Slot<T>>>;

/// How a cached value round-trips through the persistent store: the slot key
/// (namespace prefix + injective key fingerprint) plus encode/decode hooks.
/// Plain function pointers — the codecs are free functions in
/// [`crate::persist`], and a `fn` keeps [`OracleCache::memoized`] monomorphic
/// per value type rather than per call site.
struct Persist<T> {
    store_key: String,
    encode: fn(&T) -> Vec<u8>,
    decode: fn(&[u8]) -> Option<T>,
}

fn decode_workload_opt(payload: &[u8]) -> Option<WorkloadResult> {
    decode_workload_result(payload).ok()
}

fn encode_tenant_one(stats: &TenantStats) -> Vec<u8> {
    encode_tenant_stats(std::slice::from_ref(stats))
}

fn decode_tenant_one(payload: &[u8]) -> Option<TenantStats> {
    match decode_tenant_stats(payload).ok()?.as_slice() {
        [single] => Some(*single),
        _ => None,
    }
}

/// A thread-safe, exactly-once cache of oracle baseline results (and, under
/// scenario-tagged keys, of the multi-tenant family's isolated tenant
/// baselines).
///
/// With a [`Store`] attached ([`OracleCache::attach_store`]), each key's
/// first in-process request consults the store before simulating and commits
/// the result after simulating, making baselines durable across runs. Store
/// damage of any kind falls back to recomputation — an attached store can
/// slow a run down (by exactly one recompute per damaged slot) but never
/// fail it or change its results.
#[derive(Debug, Default)]
pub struct OracleCache {
    slots: SlotMap<WorkloadResult>,
    tenant_slots: SlotMap<TenantStats>,
    store: Option<Arc<Store>>,
    simulations: AtomicU64,
    hits: AtomicU64,
}

impl OracleCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a persistent slot store. From now on each key's first
    /// in-process request consults the store before simulating, and every
    /// freshly simulated baseline is committed back. Store put failures are
    /// swallowed (the value is still served from memory); damaged or stale
    /// slots decode-fail into a recompute.
    pub fn attach_store(&mut self, store: Arc<Store>) {
        self.store = Some(store);
    }

    /// The attached persistent store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Returns the oracle baseline for the point, simulating it on the first
    /// request for its key and reusing the shared result afterwards.
    ///
    /// Concurrent requests for the same key block on the in-flight simulation
    /// instead of duplicating it, so each key is simulated exactly once per
    /// cache lifetime.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (the error is also memoized).
    pub fn oracle_result(
        &self,
        workload: WorkloadId,
        batch: u64,
        page_size: PageSize,
        npu: NpuConfig,
    ) -> Result<Arc<WorkloadResult>, SimError> {
        self.oracle_result_with(workload, batch, page_size, npu, |_| {})
    }

    /// [`OracleCache::oracle_result`], invoking `on_simulated` with the
    /// simulation's wall-clock duration if (and only if) this call actually
    /// ran the baseline — the hook the runner uses to attribute baseline time
    /// to its own self-profile phase instead of whichever experiment happened
    /// to request the key first.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (the error is also memoized).
    pub fn oracle_result_with(
        &self,
        workload: WorkloadId,
        batch: u64,
        page_size: PageSize,
        npu: NpuConfig,
        on_simulated: impl FnOnce(Duration),
    ) -> Result<Arc<WorkloadResult>, SimError> {
        let key = OracleKey::new(workload, batch, page_size, &npu);
        let persist = Persist {
            // The derived Debug of OracleKey escapes its strings, so the
            // rendering is injective: distinct keys, distinct store keys.
            store_key: format!("{ORACLE_NAMESPACE}/{key:?}"),
            encode: encode_workload_result,
            decode: decode_workload_opt,
        };
        self.memoized(
            &self.slots,
            key,
            persist,
            || simulate_oracle(workload, batch, page_size, npu),
            on_simulated,
        )
    }

    /// The shared exactly-once core: looks up (or creates) the key's slot in
    /// `map`, runs `simulate` on first initialization (counted as a
    /// simulation, reported via `on_simulated`), and serves every later
    /// request from the slot (counted as a hit). Concurrent requests for the
    /// same key block on the in-flight simulation instead of duplicating it.
    ///
    /// With a store attached, the first initialization consults the store
    /// before simulating (a restored value counts as a hit, not a
    /// simulation) and commits freshly simulated values back. Both sides run
    /// inside `get_or_init`, so each key touches the store at most once per
    /// process — store counters are therefore deterministic across thread
    /// counts.
    fn memoized<T>(
        &self,
        map: &SlotMap<T>,
        key: OracleKey,
        persist: Persist<T>,
        simulate: impl FnOnce() -> Result<T, SimError>,
        on_simulated: impl FnOnce(Duration),
    ) -> Result<Arc<T>, SimError> {
        let slot = {
            let mut slots = map.lock().expect("oracle cache poisoned");
            Arc::clone(slots.entry(key).or_default())
        };
        let mut simulated: Option<Duration> = None;
        let result = slot.get_or_init(|| {
            if let Some(restored) = self
                .store
                .as_deref()
                .and_then(|store| store.get(&persist.store_key))
                .and_then(|payload| (persist.decode)(&payload))
            {
                return Ok(Arc::new(restored));
            }
            self.simulations.fetch_add(1, Ordering::Relaxed);
            let started = Instant::now();
            let result = simulate().map(Arc::new);
            simulated = Some(started.elapsed());
            if let (Some(store), Ok(value)) = (self.store.as_deref(), &result) {
                // A failed commit only costs the next run a recompute; the
                // in-memory value is unaffected, so the error is dropped.
                let _ = store.put(&persist.store_key, &(persist.encode)(value));
            }
            result
        });
        match simulated {
            Some(elapsed) => on_simulated(elapsed),
            None => {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        result.clone()
    }

    /// Returns the memoized result of `simulate` for a scenario-tagged key
    /// (the multi-tenant family's isolated tenant baselines), running it on
    /// the first request for the key and sharing the result afterwards —
    /// exactly-once semantics identical to [`OracleCache::oracle_result_with`].
    /// `on_simulated` fires with the wall-clock duration only when this call
    /// actually simulated.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (the error is also memoized).
    pub fn tenant_baseline_with(
        &self,
        key: OracleKey,
        simulate: impl FnOnce() -> Result<TenantStats, SimError>,
        on_simulated: impl FnOnce(Duration),
    ) -> Result<Arc<TenantStats>, SimError> {
        let persist = Persist {
            store_key: format!("{TENANT_NAMESPACE}/{key:?}"),
            encode: encode_tenant_one,
            decode: decode_tenant_one,
        };
        self.memoized(&self.tenant_slots, key, persist, simulate, on_simulated)
    }

    /// Number of oracle simulations actually executed.
    #[must_use]
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Number of requests served from the cache without simulating.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of distinct keys resident in the cache (oracle baselines plus
    /// scenario-tagged tenant baselines).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().expect("oracle cache poisoned").len()
            + self
                .tenant_slots
                .lock()
                .expect("oracle cache poisoned")
                .len()
    }

    /// True if no baseline has been requested yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The canonical oracle baseline simulation for a dense-suite point: the
/// paper's default setup with the oracular MMU at the given page size. This is
/// exactly what [`crate::experiments::performance`] normalizes against, so a
/// memoized result is bit-identical to a freshly simulated one.
fn simulate_oracle(
    workload: WorkloadId,
    batch: u64,
    page_size: PageSize,
    npu: NpuConfig,
) -> Result<WorkloadResult, SimError> {
    let mut config = DenseSimConfig::with_mmu(MmuConfig::oracle().with_page_size(page_size));
    config.npu = npu;
    let layers = DenseWorkload::new(workload).layers(batch);
    DenseSimulator::new(config).simulate_workload(&layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_request_hits_without_resimulating() {
        let cache = OracleCache::new();
        let npu = NpuConfig::tpu_like();
        let a = cache
            .oracle_result(WorkloadId::Cnn1, 1, PageSize::Size4K, npu)
            .unwrap();
        let b = cache
            .oracle_result(WorkloadId::Cnn1, 1, PageSize::Size4K, npu)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.simulations(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_page_sizes_and_npus_get_distinct_entries() {
        let cache = OracleCache::new();
        let tpu = NpuConfig::tpu_like();
        let spatial = NpuConfig::spatial_array();
        cache
            .oracle_result(WorkloadId::Rnn2, 1, PageSize::Size4K, tpu)
            .unwrap();
        cache
            .oracle_result(WorkloadId::Rnn2, 1, PageSize::Size2M, tpu)
            .unwrap();
        cache
            .oracle_result(WorkloadId::Rnn2, 1, PageSize::Size4K, spatial)
            .unwrap();
        assert_eq!(cache.simulations(), 3);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn scenario_tagged_tenant_baselines_memoize_exactly_once() {
        use crate::multi_tenant::{MultiTenantConfig, TenantScheduler, TenantSpec};
        use neummu_mmu::MmuConfig;

        let cache = OracleCache::new();
        let npu = NpuConfig::tpu_like();
        let config = MultiTenantConfig::with_mmu(MmuConfig::neummu()).isolated();
        let key = || {
            OracleKey::for_scenario(
                WorkloadId::Cnn1,
                1,
                PageSize::Size4K,
                &npu,
                format!(
                    "mt-isolated/{:?}/burst{}",
                    config.mmu, config.burst_transactions
                ),
            )
        };
        let simulate = || {
            TenantScheduler::new(config)
                .run(&[TenantSpec::new(WorkloadId::Cnn1, 1)])
                .map(|r| r.stats[0])
        };
        let a = cache.tenant_baseline_with(key(), simulate, |_| {}).unwrap();
        let b = cache
            .tenant_baseline_with(key(), || panic!("second request must hit"), |_| {})
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.simulations(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        // A scenario-tagged key never aliases the untagged oracle namespace.
        cache
            .oracle_result(WorkloadId::Cnn1, 1, PageSize::Size4K, npu)
            .unwrap();
        assert_eq!(cache.simulations(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn store_backed_cache_restores_instead_of_resimulating() {
        let dir = std::env::temp_dir().join(format!(
            "neummu_oracle_store_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let npu = NpuConfig::tpu_like();

        // Cold store: the first cache simulates and commits.
        let mut cold = OracleCache::new();
        cold.attach_store(Arc::new(Store::open(&dir).unwrap()));
        let simulated = cold
            .oracle_result(WorkloadId::Rnn1, 1, PageSize::Size4K, npu)
            .unwrap();
        assert_eq!(cold.simulations(), 1);
        let counters = cold.store().unwrap().counters();
        assert_eq!((counters.misses, counters.commits), (1, 1));

        // Warm store, fresh process (modeled by a fresh cache): the value is
        // restored bit-identically without simulating.
        let mut warm = OracleCache::new();
        warm.attach_store(Arc::new(Store::open(&dir).unwrap()));
        let restored = warm
            .oracle_result(WorkloadId::Rnn1, 1, PageSize::Size4K, npu)
            .unwrap();
        assert_eq!(*restored, *simulated);
        assert_eq!(warm.simulations(), 0);
        assert_eq!(warm.store().unwrap().counters().hits, 1);

        // A corrupted slot degrades to a recompute with the same result.
        let store = Arc::new(Store::open(&dir).unwrap());
        let key = OracleKey::new(WorkloadId::Rnn1, 1, PageSize::Size4K, &npu);
        store
            .corrupt_slot(&format!("{ORACLE_NAMESPACE}/{key:?}"), 17)
            .unwrap();
        let mut damaged = OracleCache::new();
        damaged.attach_store(Arc::clone(&store));
        let recomputed = damaged
            .oracle_result(WorkloadId::Rnn1, 1, PageSize::Size4K, npu)
            .unwrap();
        assert_eq!(*recomputed, *simulated);
        assert_eq!(damaged.simulations(), 1);
        assert_eq!(store.counters().recovered, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memoized_result_equals_a_direct_simulation() {
        let cache = OracleCache::new();
        let npu = NpuConfig::tpu_like();
        let cached = cache
            .oracle_result(WorkloadId::Rnn2, 1, PageSize::Size4K, npu)
            .unwrap();
        let direct = simulate_oracle(WorkloadId::Rnn2, 1, PageSize::Size4K, npu).unwrap();
        assert_eq!(*cached, direct);
    }
}
