//! A hand-rolled scoped thread pool for embarrassingly parallel job lists.
//!
//! The registry is offline, so no external thread-pool crate is used: workers
//! are plain `std::thread::scope` threads pulling job indices from an atomic
//! counter. Every job writes its result into a dedicated slot, so the caller
//! always observes results in job-index order regardless of which worker ran
//! which job or in what order the jobs finished — the property the
//! byte-identical-artifacts guarantee of the experiment runner rests on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `job(0..count)` on up to `threads` worker threads and returns the
/// results in job-index order.
///
/// With `threads <= 1` (or fewer than two jobs) the jobs run inline on the
/// caller's thread in index order, which is the reference serial schedule.
/// The parallel path produces exactly the same result vector because each job
/// is a pure function of its index and results are collected by slot, not by
/// completion order.
///
/// # Panics
///
/// Propagates a panic from any job once all workers have been joined.
pub fn run_indexed<T, F>(threads: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(count);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let result = job(index);
                *slots[index].lock().expect("job slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .expect("every job index below `count` was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_schedules_agree() {
        let serial = run_indexed(1, 100, |i| i * i);
        let parallel = run_indexed(8, 100, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[99], 99 * 99);
    }

    #[test]
    fn results_arrive_in_index_order_even_with_skewed_job_times() {
        // Early jobs sleep longest, so completion order is roughly reversed;
        // the result vector must still be index-ordered.
        let results = run_indexed(4, 16, |i| {
            std::thread::sleep(std::time::Duration::from_micros((16 - i as u64) * 50));
            i
        });
        assert_eq!(results, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_indexed(32, 3, |i| i), vec![0, 1, 2]);
    }
}
