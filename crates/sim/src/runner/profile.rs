//! Self-profiling of experiment runs, in the spirit of rustc's `measureme`:
//! every job records its wall-clock duration under a phase label, and the
//! aggregate report shows where simulation time actually goes.
//!
//! Wall-clock numbers are inherently nondeterministic, so the profile is
//! reported to stdout only and never written into the artifact directory —
//! artifacts must stay byte-identical between serial and parallel runs.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::report::ResultTable;

/// Aggregated wall-clock statistics of one profiled phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of jobs recorded under the phase.
    pub jobs: u64,
    /// Total wall-clock time spent across all jobs of the phase.
    pub total: Duration,
    /// Shortest single job.
    pub min: Duration,
    /// Longest single job.
    pub max: Duration,
}

impl PhaseStats {
    fn record(&mut self, elapsed: Duration) {
        self.min = if self.jobs == 0 {
            elapsed
        } else {
            self.min.min(elapsed)
        };
        self.max = self.max.max(elapsed);
        self.jobs += 1;
        self.total += elapsed;
    }

    /// Mean wall-clock time per job.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.jobs == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.jobs).unwrap_or(u32::MAX)
        }
    }
}

/// Thread-safe accumulator of per-phase wall-clock statistics, plus named
/// event counters (the hot-path telemetry of `neummu_mmu::counters`, cache
/// statistics, and anything else worth one number per run).
#[derive(Debug, Default)]
pub struct SelfProfile {
    phases: Mutex<BTreeMap<String, PhaseStats>>,
    counters: Mutex<BTreeMap<String, u64>>,
}

impl SelfProfile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one job of `elapsed` wall-clock time under `phase`.
    pub fn record(&self, phase: &str, elapsed: Duration) {
        let mut phases = self.phases.lock().expect("profile poisoned");
        phases.entry(phase.to_string()).or_default().record(elapsed);
    }

    /// Snapshot of every phase, sorted by label.
    #[must_use]
    pub fn phases(&self) -> BTreeMap<String, PhaseStats> {
        self.phases.lock().expect("profile poisoned").clone()
    }

    /// Adds `value` to the named event counter.
    pub fn add_counter(&self, name: &str, value: u64) {
        let mut counters = self.counters.lock().expect("profile poisoned");
        *counters.entry(name.to_string()).or_default() += value;
    }

    /// Snapshot of every event counter, sorted by name.
    #[must_use]
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters.lock().expect("profile poisoned").clone()
    }

    /// Renders the event counters as a table (empty if none were recorded).
    #[must_use]
    pub fn counters_table(&self) -> ResultTable {
        let mut table = ResultTable::new("Hot-path counters", &["Counter", "Value"]);
        for (name, value) in self.counters() {
            table.push_row(&[name, value.to_string()]);
        }
        table
    }

    /// Total busy time across all phases (CPU-seconds of simulation work; with
    /// N threads this exceeds elapsed wall-clock time by up to N×).
    #[must_use]
    pub fn total_busy(&self) -> Duration {
        self.phases
            .lock()
            .expect("profile poisoned")
            .values()
            .map(|p| p.total)
            .sum()
    }

    /// Renders the profile as a table, phases sorted by total time spent,
    /// descending — the "where does simulation time go" report.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let snapshot = self.phases();
        let busy = self.total_busy().as_secs_f64().max(1e-12);
        let mut rows: Vec<(&String, &PhaseStats)> = snapshot.iter().collect();
        rows.sort_by(|a, b| b.1.total.cmp(&a.1.total).then_with(|| a.0.cmp(b.0)));
        let mut table = ResultTable::new(
            "Self-profile: where simulation time goes",
            &[
                "Phase",
                "Jobs",
                "Total (ms)",
                "Mean (ms)",
                "Max (ms)",
                "Share",
            ],
        );
        for (label, stats) in rows {
            table.push_row(&[
                label.clone(),
                stats.jobs.to_string(),
                format!("{:.1}", stats.total.as_secs_f64() * 1e3),
                format!("{:.2}", stats.mean().as_secs_f64() * 1e3),
                format!("{:.1}", stats.max.as_secs_f64() * 1e3),
                format!("{:.1}%", stats.total.as_secs_f64() / busy * 100.0),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_per_phase() {
        let profile = SelfProfile::new();
        profile.record("sweep", Duration::from_millis(4));
        profile.record("sweep", Duration::from_millis(2));
        profile.record("table1", Duration::from_millis(1));
        let phases = profile.phases();
        assert_eq!(phases.len(), 2);
        let sweep = &phases["sweep"];
        assert_eq!(sweep.jobs, 2);
        assert_eq!(sweep.total, Duration::from_millis(6));
        assert_eq!(sweep.min, Duration::from_millis(2));
        assert_eq!(sweep.max, Duration::from_millis(4));
        assert_eq!(sweep.mean(), Duration::from_millis(3));
        assert_eq!(profile.total_busy(), Duration::from_millis(7));
    }

    #[test]
    fn table_sorts_by_total_time_descending() {
        let profile = SelfProfile::new();
        profile.record("small", Duration::from_millis(1));
        profile.record("big", Duration::from_millis(10));
        let table = profile.to_table();
        assert_eq!(table.rows().len(), 2);
        assert_eq!(table.rows()[0][0], "big");
        assert!(table.rows()[0][5].ends_with('%'));
    }

    #[test]
    fn empty_profile_renders_an_empty_table() {
        let profile = SelfProfile::new();
        assert!(profile.to_table().rows().is_empty());
        assert!(profile.counters_table().rows().is_empty());
        assert_eq!(profile.total_busy(), Duration::ZERO);
    }

    #[test]
    fn counters_accumulate_by_name() {
        let profile = SelfProfile::new();
        profile.add_counter("hot/probes", 3);
        profile.add_counter("hot/probes", 4);
        profile.add_counter("cache/hits", 1);
        let counters = profile.counters();
        assert_eq!(counters["hot/probes"], 7);
        assert_eq!(counters["cache/hits"], 1);
        let table = profile.counters_table();
        assert_eq!(table.rows().len(), 2);
        assert_eq!(table.rows()[0], vec!["cache/hits", "1"]);
    }
}
