//! Self-profiling of experiment runs, in the spirit of rustc's `measureme`:
//! every job records its wall-clock duration under a phase label, and the
//! aggregate report shows where simulation time actually goes.
//!
//! Since PR 7 the profile is a *view over the event-trace sink*
//! (`neummu_trace`) rather than a parallel `Mutex<BTreeMap>` accumulator:
//! each job becomes one `wall/job/<phase>` event and each named counter one
//! `count/<name>` event, emitted to the process-wide sink when
//! `--profile-trace` installed one (so the analyzer sees the same jobs the
//! stdout tables summarize) and to a private in-memory sink otherwise. The
//! aggregate tables are reconstructed from the sink's per-kind aggregates.
//!
//! Wall-clock durations are measured by the *callers* in the runner (the
//! D002 allowlist); this module itself reads no clock. Job events are placed
//! on a virtual busy-time line — a monotone counter advanced by each job's
//! duration — so their spans are exactly the measured durations without
//! another clock read. Wall-clock numbers are inherently nondeterministic,
//! so `wall/…` and `count/…` kinds are reported to stdout only, never
//! written into the artifact directory, and excluded from a trace's
//! canonical (determinism-checked) content.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use neummu_trace::{Event, TraceSink};

use crate::report::ResultTable;

/// Aggregated wall-clock statistics of one profiled phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of jobs recorded under the phase.
    pub jobs: u64,
    /// Total wall-clock time spent across all jobs of the phase.
    pub total: Duration,
    /// Shortest single job.
    pub min: Duration,
    /// Longest single job.
    pub max: Duration,
}

impl PhaseStats {
    /// Mean wall-clock time per job.
    ///
    /// Computed over `u128` nanoseconds: `Duration`'s own division takes a
    /// `u32` divisor, and truncating the job count to `u32::MAX` — the old
    /// implementation — silently inflates the mean once a phase exceeds
    /// 2^32 jobs, exactly the regime per-event tracing enters at full scale.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.jobs == 0 {
            return Duration::ZERO;
        }
        let nanos = self.total.as_nanos() / u128::from(self.jobs);
        Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }
}

/// Where a profile's events go: the process-wide sink when tracing is on,
/// a private in-memory sink otherwise.
#[derive(Debug)]
enum ProfileSink {
    Global(&'static TraceSink),
    Private(TraceSink),
}

impl ProfileSink {
    fn sink(&self) -> &TraceSink {
        match self {
            ProfileSink::Global(sink) => sink,
            ProfileSink::Private(sink) => sink,
        }
    }
}

/// Thread-safe accumulator of per-phase wall-clock statistics, plus named
/// event counters (the hot-path telemetry of `neummu_mmu::counters`, cache
/// statistics, and anything else worth one number per run) — all stored as
/// events in a trace sink (see the module docs).
#[derive(Debug)]
pub struct SelfProfile {
    sink: ProfileSink,
    /// Virtual busy-time line in nanoseconds: advanced by each job's
    /// duration, so job events get exact-length spans without this module
    /// reading a clock.
    busy_ns: AtomicU64,
}

impl Default for SelfProfile {
    fn default() -> Self {
        Self::new()
    }
}

/// Label prefix of per-job phase events.
const JOB_PREFIX: &str = "wall/job/";
/// Label prefix of named counter events.
const COUNT_PREFIX: &str = "count/";

impl SelfProfile {
    /// Creates an empty profile, bound to the installed process-wide trace
    /// sink if there is one (events then also land in the trace file) and to
    /// a private in-memory sink otherwise.
    #[must_use]
    pub fn new() -> Self {
        let sink = match neummu_trace::global() {
            Some(global) => ProfileSink::Global(global),
            None => ProfileSink::Private(TraceSink::in_memory()),
        };
        SelfProfile {
            sink,
            busy_ns: AtomicU64::new(0),
        }
    }

    /// Records one job of `elapsed` wall-clock time under `phase`.
    pub fn record(&self, phase: &str, elapsed: Duration) {
        let elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let start = self.busy_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        let sink = self.sink.sink();
        let kind = sink.kind(&format!("{JOB_PREFIX}{phase}"));
        sink.emit(Event {
            kind,
            asid: 0,
            start,
            end: start.saturating_add(elapsed_ns),
            payload: 1,
        });
    }

    /// Snapshot of every phase, sorted by label, reconstructed from the
    /// sink's per-kind aggregates.
    #[must_use]
    pub fn phases(&self) -> BTreeMap<String, PhaseStats> {
        self.sink
            .sink()
            .aggregates()
            .into_iter()
            .filter_map(|(label, agg)| {
                let phase = label.strip_prefix(JOB_PREFIX)?;
                Some((
                    phase.to_string(),
                    PhaseStats {
                        jobs: agg.events,
                        total: Duration::from_nanos(agg.span_total),
                        min: Duration::from_nanos(agg.span_min),
                        max: Duration::from_nanos(agg.span_max),
                    },
                ))
            })
            .collect()
    }

    /// Adds `value` to the named event counter.
    pub fn add_counter(&self, name: &str, value: u64) {
        let sink = self.sink.sink();
        let kind = sink.kind(&format!("{COUNT_PREFIX}{name}"));
        sink.emit(Event {
            kind,
            asid: 0,
            start: 0,
            end: 0,
            payload: value,
        });
    }

    /// Snapshot of every event counter, sorted by name.
    #[must_use]
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.sink
            .sink()
            .aggregates()
            .into_iter()
            .filter_map(|(label, agg)| {
                let name = label.strip_prefix(COUNT_PREFIX)?;
                Some((name.to_string(), agg.payload_total))
            })
            .collect()
    }

    /// Renders the event counters as a table (empty if none were recorded).
    #[must_use]
    pub fn counters_table(&self) -> ResultTable {
        let mut table = ResultTable::new("Hot-path counters", &["Counter", "Value"]);
        for (name, value) in self.counters() {
            table.push_row(&[name, value.to_string()]);
        }
        table
    }

    /// Total busy time across all phases (CPU-seconds of simulation work; with
    /// N threads this exceeds elapsed wall-clock time by up to N×).
    #[must_use]
    pub fn total_busy(&self) -> Duration {
        self.phases().values().map(|p| p.total).sum()
    }

    /// Renders the profile as a table, phases sorted by total time spent,
    /// descending — the "where does simulation time go" report.
    #[must_use]
    pub fn to_table(&self) -> ResultTable {
        let snapshot = self.phases();
        let busy = self.total_busy().as_secs_f64().max(1e-12);
        let mut rows: Vec<(&String, &PhaseStats)> = snapshot.iter().collect();
        rows.sort_by(|a, b| b.1.total.cmp(&a.1.total).then_with(|| a.0.cmp(b.0)));
        let mut table = ResultTable::new(
            "Self-profile: where simulation time goes",
            &[
                "Phase",
                "Jobs",
                "Total (ms)",
                "Mean (ms)",
                "Max (ms)",
                "Share",
            ],
        );
        for (label, stats) in rows {
            table.push_row(&[
                label.clone(),
                stats.jobs.to_string(),
                format!("{:.1}", stats.total.as_secs_f64() * 1e3),
                format!("{:.2}", stats.mean().as_secs_f64() * 1e3),
                format!("{:.1}", stats.max.as_secs_f64() * 1e3),
                format!("{:.1}%", stats.total.as_secs_f64() / busy * 100.0),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_per_phase() {
        let profile = SelfProfile::new();
        profile.record("sweep", Duration::from_millis(4));
        profile.record("sweep", Duration::from_millis(2));
        profile.record("table1", Duration::from_millis(1));
        let phases = profile.phases();
        assert_eq!(phases.len(), 2);
        let sweep = &phases["sweep"];
        assert_eq!(sweep.jobs, 2);
        assert_eq!(sweep.total, Duration::from_millis(6));
        assert_eq!(sweep.min, Duration::from_millis(2));
        assert_eq!(sweep.max, Duration::from_millis(4));
        assert_eq!(sweep.mean(), Duration::from_millis(3));
        assert_eq!(profile.total_busy(), Duration::from_millis(7));
    }

    #[test]
    fn table_sorts_by_total_time_descending() {
        let profile = SelfProfile::new();
        profile.record("small", Duration::from_millis(1));
        profile.record("big", Duration::from_millis(10));
        let table = profile.to_table();
        assert_eq!(table.rows().len(), 2);
        assert_eq!(table.rows()[0][0], "big");
        assert!(table.rows()[0][5].ends_with('%'));
    }

    #[test]
    fn empty_profile_renders_an_empty_table() {
        let profile = SelfProfile::new();
        assert!(profile.to_table().rows().is_empty());
        assert!(profile.counters_table().rows().is_empty());
        assert_eq!(profile.total_busy(), Duration::ZERO);
    }

    #[test]
    fn counters_accumulate_by_name() {
        let profile = SelfProfile::new();
        profile.add_counter("hot/probes", 3);
        profile.add_counter("hot/probes", 4);
        profile.add_counter("cache/hits", 1);
        let counters = profile.counters();
        assert_eq!(counters["hot/probes"], 7);
        assert_eq!(counters["cache/hits"], 1);
        let table = profile.counters_table();
        assert_eq!(table.rows().len(), 2);
        assert_eq!(table.rows()[0], vec!["cache/hits", "1"]);
    }

    /// The PR 7 regression lock: a phase with more jobs than `u32::MAX` must
    /// report an exact mean. The old `total / u32::try_from(jobs)
    /// .unwrap_or(u32::MAX)` divided 8×10⁹ seconds by 2³²−1 ≈ 1.86 s here.
    #[test]
    fn mean_is_exact_past_u32_max_jobs() {
        let jobs = 8_000_000_000u64; // ~2 × u32::MAX
        let stats = PhaseStats {
            jobs,
            total: Duration::from_secs(jobs),
            min: Duration::from_secs(1),
            max: Duration::from_secs(1),
        };
        assert_eq!(stats.mean(), Duration::from_secs(1));
        // And the old failure mode stays dead for non-uniform totals too.
        let stats = PhaseStats {
            jobs: u64::from(u32::MAX) + 2,
            total: Duration::from_nanos(3 * (u64::from(u32::MAX) + 2)),
            min: Duration::from_nanos(3),
            max: Duration::from_nanos(3),
        };
        assert_eq!(stats.mean(), Duration::from_nanos(3));
    }

    #[test]
    fn mean_of_empty_phase_is_zero() {
        assert_eq!(PhaseStats::default().mean(), Duration::ZERO);
    }
}
