//! Deterministic open-loop request-arrival generators.
//!
//! A serving deployment does not wait for the accelerator: requests arrive
//! when users send them. This module generates those arrival times — per
//! tenant, seeded, and **deterministic**: the sequence is a pure function of
//! the [`ArrivalConfig`], with a ChaCha8 stream cipher as the entropy source
//! (`seed_from_u64`, no wall clocks, no `RandomState`, no environment — the
//! D002 lint keeps it that way). Identical configs produce identical
//! sequences on every thread count, which is what lets the serving artifacts
//! stay byte-identical across `--threads 1` and `--threads 4`.
//!
//! Three trace shapes cover the canonical serving regimes:
//!
//! * [`ArrivalShape::Poisson`] — memoryless arrivals at a constant mean rate
//!   (the classic open-loop load model),
//! * [`ArrivalShape::Bursty`] — an interrupted Poisson process: exponential
//!   bursts of back-to-back arrivals separated by idle gaps, with the gap
//!   length chosen so the long-run mean rate still matches the configured
//!   rate,
//! * [`ArrivalShape::Diurnal`] — a sinusoidally modulated rate (day/night
//!   traffic), sampled by thinning against the peak rate; the modulation
//!   averages out, so the long-run mean rate again matches the configuration.

use rand::distributions::{Distribution, Open01, Standard};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// The shape of an arrival process (all shapes share the mean rate and the
/// seed held by the enclosing [`ArrivalConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalShape {
    /// Memoryless arrivals: exponential inter-arrival times at the mean rate.
    Poisson,
    /// Interrupted Poisson: bursts of arrivals at an elevated in-burst rate,
    /// separated by exponential idle gaps sized to preserve the mean rate.
    Bursty {
        /// Mean number of arrivals per burst (≥ 1).
        mean_burst_arrivals: f64,
        /// Fraction of time spent inside bursts, in `(0, 1]`. The in-burst
        /// rate is `mean rate / duty_fraction`; a duty of 1 degenerates to
        /// plain Poisson.
        duty_fraction: f64,
    },
    /// Sinusoidally rate-modulated arrivals (day/night traffic):
    /// `rate(t) = mean · (1 + A·sin(2πt/period))` with
    /// `A = 1 − trough_fraction`, sampled by thinning. The sine averages to
    /// zero, so the long-run mean rate is exactly the configured mean.
    Diurnal {
        /// Cycle count of one full day/night period (> 0).
        period_cycles: u64,
        /// Trough rate as a fraction of the mean, in `[0, 1]`. `1.0` means no
        /// modulation (plain Poisson); `0.0` means the rate dips to zero at
        /// the trough.
        trough_fraction: f64,
    },
}

impl ArrivalShape {
    /// Short label for artifact rows.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalShape::Poisson => "poisson",
            ArrivalShape::Bursty { .. } => "bursty",
            ArrivalShape::Diurnal { .. } => "diurnal",
        }
    }
}

/// A complete, validated description of one tenant's arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Trace shape.
    pub shape: ArrivalShape,
    /// Mean arrival rate in requests per million cycles (> 0, finite).
    pub rate_per_mcycle: f64,
    /// Generation horizon: arrivals are generated in `[0, horizon_cycles)`.
    pub horizon_cycles: u64,
    /// Seed of the tenant's private ChaCha8 stream.
    pub seed: u64,
}

impl ArrivalConfig {
    /// Poisson arrivals at the given rate over the given horizon.
    #[must_use]
    pub fn poisson(rate_per_mcycle: f64, horizon_cycles: u64, seed: u64) -> Self {
        ArrivalConfig {
            shape: ArrivalShape::Poisson,
            rate_per_mcycle,
            horizon_cycles,
            seed,
        }
    }

    /// Validates the configuration. Invalid rate parameters (NaN, zero,
    /// negative, infinite) are rejected here with a clear error — a NaN rate
    /// fed to the exponential sampler would otherwise produce NaN timestamps
    /// and a generator loop that never terminates.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        let invalid = |reason: String| Err(SimError::InvalidConfig { reason });
        if !self.rate_per_mcycle.is_finite() || self.rate_per_mcycle <= 0.0 {
            return invalid(format!(
                "arrival rate must be positive and finite, got {} requests/Mcycle",
                self.rate_per_mcycle
            ));
        }
        if self.horizon_cycles == 0 {
            return invalid("arrival horizon must be at least one cycle".to_string());
        }
        match self.shape {
            ArrivalShape::Poisson => {}
            ArrivalShape::Bursty {
                mean_burst_arrivals,
                duty_fraction,
            } => {
                if !mean_burst_arrivals.is_finite() || mean_burst_arrivals < 1.0 {
                    return invalid(format!(
                        "bursty shape needs a finite mean of at least one arrival per burst, \
                         got {mean_burst_arrivals}"
                    ));
                }
                if !duty_fraction.is_finite() || duty_fraction <= 0.0 || duty_fraction > 1.0 {
                    return invalid(format!(
                        "bursty duty fraction must lie in (0, 1], got {duty_fraction}"
                    ));
                }
            }
            ArrivalShape::Diurnal {
                period_cycles,
                trough_fraction,
            } => {
                if period_cycles == 0 {
                    return invalid("diurnal period must be at least one cycle".to_string());
                }
                if !trough_fraction.is_finite() || !(0.0..=1.0).contains(&trough_fraction) {
                    return invalid(format!(
                        "diurnal trough fraction must lie in [0, 1], got {trough_fraction}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Generates the full arrival sequence: non-decreasing cycle timestamps
    /// in `[0, horizon_cycles)`, a pure function of this config.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrivalConfig::validate`] failures.
    pub fn generate(&self) -> Result<Vec<u64>, SimError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let rate = self.rate_per_mcycle / 1e6;
        let horizon = self.horizon_cycles as f64;
        let mut arrivals = Vec::new();
        match self.shape {
            ArrivalShape::Poisson => {
                let mut t = exponential(&mut rng, 1.0 / rate);
                while t < horizon {
                    arrivals.push(t as u64);
                    t += exponential(&mut rng, 1.0 / rate);
                }
            }
            ArrivalShape::Bursty {
                mean_burst_arrivals,
                duty_fraction,
            } => {
                // In-burst rate compresses the mean rate into the duty
                // fraction; the idle gap restores the long-run mean
                // (renewal-reward: arrivals per burst over burst + gap time).
                let burst_rate = rate / duty_fraction;
                let mean_busy = mean_burst_arrivals / burst_rate;
                let mean_gap = mean_busy * (1.0 - duty_fraction) / duty_fraction;
                let mut t = 0.0f64;
                while t < horizon {
                    // Geometric-like burst size with the configured mean:
                    // one guaranteed arrival plus an exponential surplus.
                    let surplus = exponential(&mut rng, (mean_burst_arrivals - 1.0).max(1e-12));
                    let burst = 1 + surplus as u64;
                    for _ in 0..burst {
                        t += exponential(&mut rng, 1.0 / burst_rate);
                        if t >= horizon {
                            break;
                        }
                        arrivals.push(t as u64);
                    }
                    if mean_gap > 0.0 {
                        t += exponential(&mut rng, mean_gap);
                    }
                }
            }
            ArrivalShape::Diurnal {
                period_cycles,
                trough_fraction,
            } => {
                // Thinning (Lewis–Shedler): sample at the peak rate, accept
                // with probability rate(t)/peak.
                let amplitude = 1.0 - trough_fraction;
                let peak = rate * (1.0 + amplitude);
                let omega = std::f64::consts::TAU / period_cycles as f64;
                let mut t = 0.0f64;
                loop {
                    t += exponential(&mut rng, 1.0 / peak);
                    if t >= horizon {
                        break;
                    }
                    let rate_at_t = rate * (1.0 + amplitude * (omega * t).sin());
                    let u: f64 = Standard.sample(&mut rng);
                    if u * peak <= rate_at_t {
                        arrivals.push(t as u64);
                    }
                }
            }
        }
        Ok(arrivals)
    }
}

/// One exponential sample with the given mean, strictly positive.
fn exponential<R: rand::RngCore>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = Open01.sample(rng);
    -u.ln() * mean
}

/// Derives a decorrelated child seed from a base seed and a lane index
/// (tenant number) via two SplitMix64 steps — the standard way this workspace
/// fans one experiment seed out into per-tenant streams.
#[must_use]
pub fn derive_seed(base: u64, lane: u64) -> u64 {
    let mut state = base;
    let mut mixed = rand::splitmix64(&mut state) ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    rand::splitmix64(&mut mixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_rejected(config: ArrivalConfig) {
        assert!(
            matches!(config.generate(), Err(SimError::InvalidConfig { .. })),
            "{config:?} should be rejected"
        );
    }

    #[test]
    fn invalid_rates_are_rejected_not_hung() {
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_rejected(ArrivalConfig::poisson(rate, 1000, 1));
        }
        assert_rejected(ArrivalConfig::poisson(10.0, 0, 1));
    }

    #[test]
    fn invalid_shape_parameters_are_rejected() {
        let base = |shape| ArrivalConfig {
            shape,
            rate_per_mcycle: 100.0,
            horizon_cycles: 10_000,
            seed: 7,
        };
        for (mean, duty) in [
            (0.5, 0.5),
            (f64::NAN, 0.5),
            (4.0, 0.0),
            (4.0, 1.5),
            (4.0, f64::NAN),
        ] {
            assert_rejected(base(ArrivalShape::Bursty {
                mean_burst_arrivals: mean,
                duty_fraction: duty,
            }));
        }
        for (period, trough) in [(0u64, 0.5), (100, -0.1), (100, 1.1), (100, f64::NAN)] {
            assert_rejected(base(ArrivalShape::Diurnal {
                period_cycles: period,
                trough_fraction: trough,
            }));
        }
    }

    #[test]
    fn sequences_are_non_decreasing_in_horizon_and_seed_stable() {
        let shapes = [
            ArrivalShape::Poisson,
            ArrivalShape::Bursty {
                mean_burst_arrivals: 6.0,
                duty_fraction: 0.25,
            },
            ArrivalShape::Diurnal {
                period_cycles: 50_000,
                trough_fraction: 0.2,
            },
        ];
        for shape in shapes {
            let config = ArrivalConfig {
                shape,
                rate_per_mcycle: 20_000.0,
                horizon_cycles: 200_000,
                seed: 42,
            };
            let arrivals = config.generate().unwrap();
            assert!(!arrivals.is_empty(), "{} generated nothing", shape.label());
            assert!(
                arrivals.windows(2).all(|w| w[0] <= w[1]),
                "{} timestamps decrease",
                shape.label()
            );
            assert!(*arrivals.last().unwrap() < config.horizon_cycles);
            assert_eq!(
                arrivals,
                config.generate().unwrap(),
                "{} is not seed-stable",
                shape.label()
            );
            let mut other = config;
            other.seed = 43;
            assert_ne!(
                arrivals,
                other.generate().unwrap(),
                "{} ignores its seed",
                shape.label()
            );
        }
    }

    #[test]
    fn empirical_rates_match_the_configured_mean() {
        // Long horizons tighten the empirical rate around the mean; 15% is
        // ~5σ for the Poisson case and generous for the modulated shapes.
        let shapes = [
            ArrivalShape::Poisson,
            ArrivalShape::Bursty {
                mean_burst_arrivals: 8.0,
                duty_fraction: 0.25,
            },
            ArrivalShape::Diurnal {
                period_cycles: 100_000,
                trough_fraction: 0.3,
            },
        ];
        for shape in shapes {
            let config = ArrivalConfig {
                shape,
                rate_per_mcycle: 5_000.0,
                horizon_cycles: 1_000_000, // expect ~5000 arrivals
                seed: 9,
            };
            let count = config.generate().unwrap().len() as f64;
            let expected = config.rate_per_mcycle * config.horizon_cycles as f64 / 1e6;
            let relative_error = (count - expected).abs() / expected;
            assert!(
                relative_error < 0.15,
                "{}: {count} arrivals vs {expected} expected ({relative_error:.3} off)",
                shape.label()
            );
        }
    }

    #[test]
    fn duty_one_bursty_and_trough_one_diurnal_stay_close_to_poisson_statistics() {
        // Degenerate parameters collapse the modulated shapes back to
        // constant-rate processes; their counts should land near Poisson's.
        let horizon = 500_000;
        let rate = 2_000.0;
        let poisson = ArrivalConfig::poisson(rate, horizon, 3).generate().unwrap();
        let flat_diurnal = ArrivalConfig {
            shape: ArrivalShape::Diurnal {
                period_cycles: 10_000,
                trough_fraction: 1.0,
            },
            rate_per_mcycle: rate,
            horizon_cycles: horizon,
            seed: 3,
        }
        .generate()
        .unwrap();
        let expected = rate * horizon as f64 / 1e6;
        for (label, count) in [
            ("poisson", poisson.len()),
            ("flat diurnal", flat_diurnal.len()),
        ] {
            let relative_error = (count as f64 - expected).abs() / expected;
            assert!(relative_error < 0.2, "{label}: {count} vs {expected}");
        }
    }

    #[test]
    fn derived_seeds_decorrelate_lanes() {
        let a = derive_seed(0xBEEF, 0);
        let b = derive_seed(0xBEEF, 1);
        let c = derive_seed(0xBEF0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(0xBEEF, 0));
    }
}
