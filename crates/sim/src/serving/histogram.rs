//! Exact integer latency histograms and non-interpolated percentiles.
//!
//! SLO reporting lives and dies on its tails: an interpolated p99.9 from a
//! bucketed histogram can under-report the worst observed latency by an
//! arbitrary factor. This histogram therefore keeps **exact** integer cycle
//! counts (a `BTreeMap<latency, count>` — ordered, so traversal is
//! deterministic and D001-clean) and reports the *nearest-rank* percentile:
//! `P(q)` is the `⌈q·N⌉`-th smallest observed value, computed with integer
//! arithmetic for the named SLO percentiles (p50/p99/p99.9) so no float
//! rounding can shift a rank. Every reported percentile is a latency that
//! actually occurred.

use std::collections::BTreeMap;

/// An exact latency histogram over integer cycle counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, latency_cycles: u64) {
        self.record_n(latency_cycles, 1);
    }

    /// Records `count` observations of the same latency in one step —
    /// rebuilds a histogram from pre-counted `(latency, count)` pairs (e.g.
    /// [`neummu_mmu::FaultCounters::recovery_latency`]) without looping.
    pub fn record_n(&mut self, latency_cycles: u64, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(latency_cycles).or_insert(0) += count;
        self.total += count;
        self.sum += u128::from(latency_cycles) * u128::from(count);
        self.max = self.max.max(latency_cycles);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded observation (`0` when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded observations (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// The `rank`-th smallest observation (1-based). `None` if `rank` is zero
    /// or exceeds the observation count.
    #[must_use]
    pub fn nearest_rank(&self, rank: u64) -> Option<u64> {
        if rank == 0 || rank > self.total {
            return None;
        }
        let mut seen = 0u64;
        for (&latency, &count) in &self.counts {
            seen += count;
            if seen >= rank {
                return Some(latency);
            }
        }
        unreachable!("counts sum to total, so some prefix covers every valid rank")
    }

    /// Nearest-rank percentile with an integer-rational quantile
    /// `numerator/denominator` (e.g. `999/1000` for p99.9): the
    /// `⌈N·num/den⌉`-th smallest observation, exactly — never interpolated,
    /// never a value that was not observed. `None` when the histogram is
    /// empty or the quantile is malformed (zero denominator or a quantile
    /// above one).
    #[must_use]
    pub fn percentile_exact(&self, numerator: u64, denominator: u64) -> Option<u64> {
        if denominator == 0 || numerator > denominator {
            return None;
        }
        if self.total == 0 {
            return None;
        }
        // ⌈total·num/den⌉ in u128 (no overflow for any u64 inputs), clamped
        // to rank 1 so p0 reads the minimum rather than nothing.
        let scaled = u128::from(self.total) * u128::from(numerator);
        let rank = scaled.div_ceil(u128::from(denominator)).max(1) as u64;
        self.nearest_rank(rank)
    }

    /// Median (nearest-rank p50).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.percentile_exact(50, 100)
    }

    /// Nearest-rank p99.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.percentile_exact(99, 100)
    }

    /// Nearest-rank p99.9 — the SLO tail. With fewer than 1000 observations
    /// this is the maximum (the ⌈0.999·N⌉-th value is the last one), which is
    /// the honest answer: the observed worst case.
    #[must_use]
    pub fn p999(&self) -> Option<u64> {
        self.percentile_exact(999, 1000)
    }

    /// Iterates `(latency, count)` in increasing latency order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .map(|(&latency, &count)| (latency, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(values: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn empty_histogram_reports_none_everywhere() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.p999(), None);
        assert_eq!(h.nearest_rank(1), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        // Regression: with one sample, every quantile — including the deep
        // tail — must be that sample, not an interpolation artifact.
        let h = histogram(&[37]);
        assert_eq!(h.p50(), Some(37));
        assert_eq!(h.p99(), Some(37));
        assert_eq!(h.p999(), Some(37));
        assert_eq!(h.max(), 37);
        assert_eq!(h.mean(), Some(37.0));
    }

    #[test]
    fn two_samples_split_median_low_tail_high() {
        // Regression: nearest-rank p50 of {10, 90} is the 1st value (⌈0.5·2⌉
        // = rank 1), and every tail percentile is the 2nd — never 50, which
        // an interpolating implementation would invent.
        let h = histogram(&[90, 10]);
        assert_eq!(h.p50(), Some(10));
        assert_eq!(h.p99(), Some(90));
        assert_eq!(h.p999(), Some(90));
    }

    #[test]
    fn all_equal_stream_collapses_every_percentile() {
        // Regression: a constant latency stream has exactly one honest
        // answer for every quantile.
        let h = histogram(&[5; 1234]);
        assert_eq!(h.total(), 1234);
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.p99(), Some(5));
        assert_eq!(h.p999(), Some(5));
        assert_eq!(h.mean(), Some(5.0));
    }

    #[test]
    fn nearest_rank_is_exact_on_a_known_ladder() {
        // 1000 distinct values 1..=1000: percentile ranks are transparent.
        let values: Vec<u64> = (1..=1000).collect();
        let h = histogram(&values);
        assert_eq!(h.p50(), Some(500));
        assert_eq!(h.p99(), Some(990));
        assert_eq!(h.p999(), Some(999));
        assert_eq!(h.percentile_exact(1, 1), Some(1000));
        assert_eq!(
            h.percentile_exact(0, 1),
            Some(1),
            "p0 clamps to the minimum"
        );
        assert_eq!(h.nearest_rank(0), None);
        assert_eq!(h.nearest_rank(1001), None);
    }

    #[test]
    fn reported_percentiles_are_observed_values() {
        // Percentiles of a gappy distribution land on observed values only.
        let h = histogram(&[1, 1, 1, 1000]);
        assert_eq!(h.p50(), Some(1));
        assert_eq!(h.p99(), Some(1000));
        let all: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(all, vec![(1, 3), (1000, 1)]);
    }

    #[test]
    fn malformed_quantiles_are_rejected() {
        let h = histogram(&[1, 2, 3]);
        assert_eq!(h.percentile_exact(3, 2), None, "quantile above one");
        assert_eq!(h.percentile_exact(1, 0), None, "zero denominator");
    }
}
