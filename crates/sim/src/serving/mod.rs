//! Open-loop datacenter serving on one shared translation front end.
//!
//! The closed-loop [`crate::multi_tenant`] scheduler runs every tenant's
//! stream to completion as fast as the hardware allows. A datacenter does not
//! get that luxury: requests arrive when users send them ("heavy traffic from
//! millions of users" — the ROADMAP's north star), queue at the front end,
//! and either meet their latency SLO or don't. This module is that serving
//! leg, built as three orthogonal pieces plus a simulator that composes them:
//!
//! * [`arrivals`] — deterministic seeded arrival-time generators (Poisson,
//!   bursty, diurnal), one ChaCha8 stream per tenant;
//! * [`queue`] — bounded per-tenant admission queues with drop/defer
//!   overflow accounting and a conservation law the proptests lock;
//! * [`policy`] — pluggable tenant-scheduling policies (round-robin,
//!   weighted-fair, burst-quantum preemption, TLB-occupancy-aware
//!   throttling) shared with the closed-loop scheduler;
//! * [`histogram`] — exact integer latency histograms with non-interpolated
//!   nearest-rank percentiles (p50/p99/p99.9 — the SLO numbers).
//!
//! The [`ServingSimulator`] drives admitted requests through the **same**
//! tagged, run-coalesced translation path as every other simulator in this
//! repo (one shared [`TranslationEngine`], one shared DRAM bandwidth
//! server): a request is a fixed-length slice of its tenant's cyclic DMA
//! tile-fetch stream — each inference re-touches the model's operands at the
//! same virtual addresses — so IOTLB reach, PRMB merging and walker
//! bandwidth shape the tail latencies exactly as they do the closed-loop
//! figures. Everything is deterministic: identical configs produce
//! bit-identical results on every thread count.
//!
//! [`TranslationEngine`]: neummu_mmu::TranslationEngine

pub mod arrivals;
pub mod histogram;
pub mod policy;
pub mod queue;

pub use arrivals::{derive_seed, ArrivalConfig, ArrivalShape};
pub use histogram::LatencyHistogram;
pub use policy::{PolicyState, ServingPolicy};
pub use queue::{AdmissionQueue, OverflowPolicy, QueueStats, Request};

use serde::{Deserialize, Serialize};

use neummu_mem::dram::{DramConfig, DramModel};
use neummu_mmu::{
    DeviceFaultConfig, FaultCounters, MmuConfig, MmuKind, ResilienceConfig, TranslationEngine,
    TranslationSource,
};
use neummu_npu::{DmaEngine, NpuConfig};
use neummu_vmem::{AddressSpaceRegistry, MemNode, VirtAddr};
use neummu_workloads::WorkloadId;

use crate::error::SimError;
use crate::multi_tenant::{map_tenant_fetches, TenantStats, TenantStream};

/// One tenant of a serving run: a model, a scheduling weight and an arrival
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingTenantSpec {
    /// The model the tenant serves.
    pub workload: WorkloadId,
    /// Batch size of one inference request.
    pub batch: u64,
    /// Weighted-fair scheduling weight (≥ 1; only read by
    /// [`ServingPolicy::WeightedFair`]).
    pub weight: u64,
    /// The tenant's arrival process.
    pub arrivals: ArrivalConfig,
}

impl ServingTenantSpec {
    /// Human-readable `workload/batch` label (figure notation).
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/b{:02}", self.workload.label(), self.batch)
    }
}

/// Per-tenant circuit breaker: sheds load when a tenant's sojourn p99 blows
/// its SLO (fault storms, overload). The breaker watches tumbling windows of
/// `window_requests` completed requests; when a window's exact nearest-rank
/// p99 exceeds `sojourn_slo_p99_cycles`, the breaker *opens* for
/// `cooldown_cycles`: arrivals stamped inside the open interval are shed —
/// never offered to the admission queue — so the backlog drains instead of
/// compounding. Shed requests are counted per tenant in
/// [`TenantServingStats::shed`], outside the queue's own
/// offered/dropped/deferred accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitBreakerConfig {
    /// The tenant's sojourn-latency SLO: windows whose exact p99 exceeds
    /// this open the breaker.
    pub sojourn_slo_p99_cycles: u64,
    /// Completed requests per tumbling evaluation window.
    pub window_requests: u64,
    /// Cycles the breaker stays open once tripped.
    pub cooldown_cycles: u64,
}

impl CircuitBreakerConfig {
    /// Rejects zero-impossible knobs (mirrors [`ArrivalConfig::validate`]).
    pub(crate) fn validate(&self) -> Result<(), SimError> {
        let invalid = |reason: String| Err(SimError::InvalidConfig { reason });
        if self.sojourn_slo_p99_cycles == 0 {
            return invalid("circuit breaker SLO must be at least one cycle".to_string());
        }
        if self.window_requests == 0 {
            return invalid("circuit breaker window must cover at least one request".to_string());
        }
        if self.cooldown_cycles == 0 {
            return invalid("circuit breaker cooldown must be at least one cycle".to_string());
        }
        Ok(())
    }
}

/// Device-fault injection for a serving run: the seeded fault plan the
/// shared engine draws from, plus the resilience mechanisms that resolve
/// each injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingFaults {
    /// Per-kind fault rates and the draw seed.
    pub device: DeviceFaultConfig,
    /// Which recovery mechanisms are armed.
    pub resilience: ResilienceConfig,
}

/// Configuration of an open-loop serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// MMU design point of the shared translation engine (must be
    /// cycle-accounted; [`MmuKind::Oracle`] is rejected).
    pub mmu: MmuConfig,
    /// NPU architecture parameters (tiling, DMA transaction size).
    pub npu: NpuConfig,
    /// Shared local memory system parameters.
    pub dram: DramConfig,
    /// Memory node the tenants' operands live on.
    pub node: MemNode,
    /// Backing capacity allocated to each tenant's operands.
    pub memory_capacity_bytes: u64,
    /// Service quantum: DMA transactions a tenant's request is granted before
    /// the policy re-picks.
    pub burst_transactions: u64,
    /// DMA transactions constituting one inference request (a fixed-length
    /// slice of the tenant's cyclic tile-fetch stream).
    pub txns_per_request: u64,
    /// Bounded admission-queue depth per tenant.
    pub queue_depth: usize,
    /// What a full queue does with a new arrival.
    pub overflow: OverflowPolicy,
    /// Tenant-scheduling policy.
    pub policy: ServingPolicy,
    /// Cycles between queue-depth timeline samples.
    pub queue_sample_interval: u64,
    /// Per-tenant circuit breaker (`None` disables shedding entirely; the
    /// run is then bit-identical to a pre-breaker build).
    pub breaker: Option<CircuitBreakerConfig>,
    /// Device-fault injection on the shared engine (`None`, the default,
    /// runs the perfect device).
    pub faults: Option<ServingFaults>,
}

impl ServingConfig {
    /// The paper's default setup (TPU-like NPU, Table I memory system) with
    /// the given MMU design point, round-robin scheduling, 64-transaction
    /// quanta, 128-transaction requests and depth-64 dropping queues.
    #[must_use]
    pub fn with_mmu(mmu: MmuConfig) -> Self {
        ServingConfig {
            mmu,
            npu: NpuConfig::tpu_like(),
            dram: DramConfig::table1(),
            node: MemNode::Npu(0),
            memory_capacity_bytes: 64 << 30,
            burst_transactions: 64,
            txns_per_request: 128,
            queue_depth: 64,
            overflow: OverflowPolicy::Drop,
            policy: ServingPolicy::RoundRobin,
            queue_sample_interval: 1 << 16,
            breaker: None,
            faults: None,
        }
    }

    /// Overrides the scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ServingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the service quantum.
    #[must_use]
    pub fn with_burst(mut self, burst_transactions: u64) -> Self {
        self.burst_transactions = burst_transactions;
        self
    }

    /// Overrides the request size in DMA transactions.
    #[must_use]
    pub fn with_txns_per_request(mut self, txns_per_request: u64) -> Self {
        self.txns_per_request = txns_per_request;
        self
    }

    /// Overrides the bounded queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Overrides the overflow policy.
    #[must_use]
    pub fn with_overflow(mut self, overflow: OverflowPolicy) -> Self {
        self.overflow = overflow;
        self
    }

    /// Overrides the queue-depth sampling interval.
    #[must_use]
    pub fn with_sample_interval(mut self, queue_sample_interval: u64) -> Self {
        self.queue_sample_interval = queue_sample_interval;
        self
    }

    /// Arms the per-tenant circuit breaker.
    #[must_use]
    pub fn with_breaker(mut self, breaker: CircuitBreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Attaches device-fault injection to the shared engine.
    #[must_use]
    pub fn with_faults(mut self, device: DeviceFaultConfig, resilience: ResilienceConfig) -> Self {
        self.faults = Some(ServingFaults { device, resilience });
        self
    }
}

/// Per-tenant outcome of one serving run: translation counters, queue
/// accounting, exact latency histograms and the completion order.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantServingStats {
    /// Translation-path counters (shared with the closed-loop scheduler).
    pub translation: TenantStats,
    /// Admission-queue accounting.
    pub queue: QueueStats,
    /// Exact sojourn latency (arrival → last data byte) per completed
    /// request — the end-to-end SLO histogram.
    pub sojourn: LatencyHistogram,
    /// Exact translation-stall cycles per completed request (the accept-minus
    /// -issue stalls its transactions accumulated) — the MMU's share of the
    /// tail.
    pub stall: LatencyHistogram,
    /// Arrival sequence numbers in completion order (FIFO service must keep
    /// this strictly increasing — a proptest-locked invariant).
    pub completion_order: Vec<u64>,
    /// Arrivals shed by an open circuit breaker: consumed from the arrival
    /// sequence but never offered to the admission queue. Always zero
    /// without a breaker. Conservation:
    /// `generated arrivals == queue.offered + shed`.
    pub shed: u64,
    /// Times this tenant's breaker opened.
    pub breaker_trips: u64,
}

/// One sample of the queue-depth timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDepthSample {
    /// Sample cycle.
    pub cycle: u64,
    /// Requests waiting across all tenants (bounded queues + spillover).
    pub waiting_total: u64,
    /// Deepest single tenant's waiting count at the sample.
    pub waiting_max: u64,
}

/// The outcome of one open-loop serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingResult {
    /// Tenant specs, in ASID order.
    pub tenants: Vec<ServingTenantSpec>,
    /// Per-tenant outcomes, in ASID order.
    pub stats: Vec<TenantServingStats>,
    /// Queue-depth timeline (samples every
    /// [`ServingConfig::queue_sample_interval`] cycles while the run is
    /// busy).
    pub timeline: Vec<QueueDepthSample>,
    /// Cycle at which the last completed request's data arrived.
    pub makespan_cycles: u64,
    /// The engine's exact fault accounting, when fault injection was
    /// configured (`None` for the perfect device).
    pub fault_counters: Option<FaultCounters>,
}

impl ServingResult {
    /// Completed requests across all tenants.
    #[must_use]
    pub fn completed_requests(&self) -> u64 {
        self.stats.iter().map(|s| s.queue.completed).sum()
    }

    /// Offered requests across all tenants.
    #[must_use]
    pub fn offered_requests(&self) -> u64 {
        self.stats.iter().map(|s| s.queue.offered).sum()
    }

    /// Requests shed by open circuit breakers across all tenants.
    #[must_use]
    pub fn shed_requests(&self) -> u64 {
        self.stats.iter().map(|s| s.shed).sum()
    }

    /// Breaker trips across all tenants.
    #[must_use]
    pub fn breaker_trips(&self) -> u64 {
        self.stats.iter().map(|s| s.breaker_trips).sum()
    }

    /// Goodput: completed requests per million cycles of makespan.
    #[must_use]
    pub fn goodput_per_mcycle(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.completed_requests() as f64 * 1e6 / self.makespan_cycles as f64
    }
}

/// One tenant's live state during the run.
struct TenantLane {
    stream: TenantStream,
    arrivals: Vec<u64>,
    next_arrival: usize,
    queue: AdmissionQueue,
    /// `(request, transactions left, latest data-ready cycle, stall cycles)`.
    in_service: Option<(Request, u64, u64, u64)>,
    /// Tumbling sojourn window the circuit breaker evaluates (unused — and
    /// never recorded into — without a breaker).
    breaker_window: LatencyHistogram,
    /// Cycle until which this tenant's breaker is open (0 = closed).
    breaker_open_until: u64,
    /// Arrivals shed by the open breaker.
    shed: u64,
    /// Times the breaker opened.
    breaker_trips: u64,
}

impl TenantLane {
    fn runnable(&self) -> bool {
        self.in_service.is_some() || self.queue.depth() > 0
    }

    /// The tenant's next not-yet-offered arrival time, if any.
    fn next_arrival_cycle(&self) -> Option<u64> {
        self.arrivals.get(self.next_arrival).copied()
    }
}

/// The open-loop serving simulator: arrivals → admission queues → policy →
/// one shared run-coalesced translation engine.
#[derive(Debug, Clone)]
pub struct ServingSimulator {
    config: ServingConfig,
}

impl ServingSimulator {
    /// Creates a simulator with the given configuration.
    #[must_use]
    pub fn new(config: ServingConfig) -> Self {
        ServingSimulator { config }
    }

    /// The simulator's configuration.
    #[must_use]
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    fn validate(&self, tenants: &[ServingTenantSpec]) -> Result<(), SimError> {
        let config = &self.config;
        let invalid = |reason: String| Err(SimError::InvalidConfig { reason });
        if tenants.is_empty() {
            return invalid("a serving run needs at least one tenant".to_string());
        }
        if config.burst_transactions == 0 {
            return invalid("service quantum must be at least one transaction".to_string());
        }
        if config.txns_per_request == 0 {
            return invalid("a request must span at least one transaction".to_string());
        }
        if config.queue_depth == 0 {
            return invalid("admission queue depth must be at least 1".to_string());
        }
        if config.queue_sample_interval == 0 {
            return invalid("queue sample interval must be at least one cycle".to_string());
        }
        if config.mmu.kind == MmuKind::Oracle {
            return invalid(
                "the serving simulator models contention on a cycle-accounted engine; \
                 the oracular MMU has nothing to contend for"
                    .to_string(),
            );
        }
        config.npu.validate()?;
        if let Some(breaker) = &config.breaker {
            breaker.validate()?;
        }
        if let Some(faults) = &config.faults {
            let invalid_fault = |e: neummu_mmu::FaultError| SimError::InvalidConfig {
                reason: e.to_string(),
            };
            faults.device.validate().map_err(invalid_fault)?;
            faults.resilience.validate().map_err(invalid_fault)?;
        }
        for spec in tenants {
            spec.arrivals.validate()?;
        }
        Ok(())
    }

    /// Runs the open-loop serving simulation: generates every tenant's
    /// arrival sequence, admits arrivals through the bounded queues, lets the
    /// policy hand out service quanta on the shared engine, and drains the
    /// queues after the last arrival. Deterministic: the result is a pure
    /// function of the configuration and tenant specs.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] for an empty tenant list, zero
    ///   quantum/request/queue/sampling parameters, an oracular MMU, or an
    ///   invalid arrival config (NaN or non-positive rates are rejected here
    ///   rather than looping forever).
    /// * Propagates tiling and mapping errors.
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, tenants: &[ServingTenantSpec]) -> Result<ServingResult, SimError> {
        use neummu_mmu::AddressTranslator as _;
        let config = &self.config;
        self.validate(tenants)?;

        // Per-tenant address spaces, cyclic fetch streams, arrival sequences
        // and admission queues.
        let mut registry = AddressSpaceRegistry::new();
        let mut lanes = Vec::with_capacity(tenants.len());
        let mut stats = Vec::with_capacity(tenants.len());
        for spec in tenants {
            let asid = registry.create(format!("serving-{}", spec.label()));
            let space = registry.get_mut(asid).expect("just created");
            let fetches = map_tenant_fetches(
                space,
                spec.workload,
                spec.batch,
                &config.npu,
                config.node,
                config.memory_capacity_bytes,
                config.mmu.page_size,
            )?;
            lanes.push(TenantLane {
                stream: TenantStream::new(DmaEngine::new(config.npu.dma), fetches, true),
                arrivals: spec.arrivals.generate()?,
                next_arrival: 0,
                queue: AdmissionQueue::new(config.queue_depth, config.overflow),
                in_service: None,
                breaker_window: LatencyHistogram::new(),
                breaker_open_until: 0,
                shed: 0,
                breaker_trips: 0,
            });
            stats.push(TenantServingStats {
                translation: TenantStats::new(asid),
                queue: QueueStats::default(),
                sojourn: LatencyHistogram::new(),
                stall: LatencyHistogram::new(),
                completion_order: Vec::new(),
                shed: 0,
                breaker_trips: 0,
            });
        }

        let mut engine = match &config.faults {
            None => TranslationEngine::new(config.mmu),
            Some(faults) => {
                TranslationEngine::with_faults(config.mmu, faults.device, faults.resilience)
                    .expect("fault configs were validated above")
            }
        };
        let mut dram = DramModel::new(config.dram);
        let tlb_capacity = engine.tlb().capacity() as u64;
        let page_bytes = config.mmu.page_size.bytes();
        let weights: Vec<u64> = tenants.iter().map(|t| t.weight).collect();
        let mut policy_state = PolicyState::new(config.policy, tenants.len(), &weights);
        let mut depths = vec![0u64; tenants.len()];
        let mut occupancies = vec![0u64; tenants.len()];
        let mut runnable = vec![false; tenants.len()];
        let mut timeline = Vec::new();
        // One `serving/turn` trace span per granted quantum, mirroring the
        // closed-loop scheduler's `tenant/turn` spans.
        let turn_trace = neummu_trace::global().map(|sink| (sink, sink.kind("serving/turn")));

        let mut now = 0u64;
        let mut next_sample = 0u64;
        loop {
            // Admit every arrival at or before the current cycle. A tenant
            // waking from idle catches its WFQ virtual service up to the
            // global virtual time (no retroactive credit for idling).
            for (tenant, lane) in lanes.iter_mut().enumerate() {
                let was_runnable = lane.runnable();
                let mut seq = lane.queue.stats().offered;
                while lane.next_arrival_cycle().is_some_and(|cycle| cycle <= now) {
                    let arrival_cycle = lane.arrivals[lane.next_arrival];
                    lane.next_arrival += 1;
                    // An open breaker sheds arrivals stamped inside its
                    // interval: consumed, never offered, so the backlog
                    // drains while the tenant's SLO recovers.
                    if arrival_cycle < lane.breaker_open_until {
                        lane.shed += 1;
                        continue;
                    }
                    lane.queue.offer(Request { seq, arrival_cycle });
                    seq += 1;
                }
                if !was_runnable && lane.runnable() {
                    policy_state.note_backlogged(tenant);
                }
            }

            // Queue-depth timeline sample.
            if now >= next_sample {
                let mut waiting_total = 0u64;
                let mut waiting_max = 0u64;
                for lane in &lanes {
                    let waiting = lane.queue.waiting();
                    waiting_total += waiting;
                    waiting_max = waiting_max.max(waiting);
                }
                timeline.push(QueueDepthSample {
                    cycle: now,
                    waiting_total,
                    waiting_max,
                });
                next_sample = now + config.queue_sample_interval;
            }

            // Find someone to serve, or jump the clock to the next arrival,
            // or finish.
            for (tenant, lane) in lanes.iter().enumerate() {
                runnable[tenant] = lane.runnable();
            }
            if !runnable.iter().any(|&r| r) {
                let Some(next) = lanes
                    .iter()
                    .filter_map(TenantLane::next_arrival_cycle)
                    .min()
                else {
                    break; // All arrivals offered, all queues drained: done.
                };
                now = now.max(next);
                continue;
            }
            if config.policy.needs_depths() {
                for (tenant, lane) in lanes.iter().enumerate() {
                    depths[tenant] = lane.queue.waiting() + u64::from(lane.in_service.is_some());
                }
            }
            if config.policy.needs_occupancy() {
                for (tenant, occupancy) in occupancies.iter_mut().enumerate() {
                    *occupancy = engine.tlb().occupancy_of(stats[tenant].translation.asid) as u64;
                }
            }
            let tenant = policy_state
                .pick(&runnable, &depths, &occupancies, tlb_capacity)
                .expect("a runnable tenant exists");

            // Serve one quantum of the tenant's head request.
            let lane = &mut lanes[tenant];
            let tenant_stats = &mut stats[tenant];
            let asid = tenant_stats.translation.asid;
            if lane.in_service.is_none() {
                let request = lane.queue.pop_for_service().expect("runnable tenant");
                lane.in_service = Some((request, config.txns_per_request, 0, 0));
            }
            let space = registry.get(asid).expect("registered above");
            let page_table = space.page_table();
            let turn_start = now;
            let (_, txns_left, _, _) = lane.in_service.expect("set above");
            let mut quota = config.burst_transactions.min(txns_left);
            let granted = quota;
            while quota > 0 {
                let (base, run) = lane
                    .stream
                    .next_run(quota, page_bytes)
                    .expect("cyclic streams never run dry");
                let issue = now;
                let va = VirtAddr::new(base + run.first.offset);
                let out = engine.translate_run_tagged(page_table, asid, va, run.txn_count, issue);
                let translation = &mut tenant_stats.translation;
                translation.requests += out.consumed;
                translation.stall_cycles += out.first.accept_cycle - issue;
                for (source, requests) in
                    [(out.first.source, 1), (out.replay_source, out.replayed())]
                {
                    if requests == 0 {
                        continue;
                    }
                    match source {
                        TranslationSource::TlbHit => translation.tlb_hits += requests,
                        TranslationSource::Merged => translation.merged += requests,
                        TranslationSource::PageWalk { levels_read } => {
                            translation.walks += requests;
                            translation.walk_levels_read += requests * u64::from(levels_read);
                        }
                        TranslationSource::Oracle => unreachable!("oracle configs are rejected"),
                    }
                }
                if out.first.fault {
                    translation.faults += 1;
                }
                if out.replay_fault {
                    translation.faults += out.replayed();
                }
                now = out.last_accept() + 1;
                let scheduled = run.prefix(out.consumed);
                let data_ready = dram.schedule_run(
                    out.first.complete_cycle,
                    out.complete_stride,
                    scheduled.txn_count,
                    scheduled.first.bytes,
                    scheduled.interior_txn_bytes(),
                    scheduled.txn_len(scheduled.txn_count - 1),
                );
                translation.completion_cycle = translation.completion_cycle.max(data_ready);
                let (_, txns_left, ready_max, stall) =
                    lane.in_service.as_mut().expect("in service");
                *txns_left -= out.consumed;
                *ready_max = (*ready_max).max(data_ready);
                *stall += out.first.accept_cycle - issue;
                quota -= out.consumed;
                if out.consumed < run.txn_count {
                    lane.stream.push_back(base, run.suffix(out.consumed));
                }
            }
            let (request, txns_left, ready_max, stall) = lane.in_service.expect("in service");
            if txns_left == 0 {
                lane.in_service = None;
                lane.queue.complete();
                let sojourn = ready_max.saturating_sub(request.arrival_cycle);
                tenant_stats.sojourn.record(sojourn);
                tenant_stats.stall.record(stall);
                tenant_stats.completion_order.push(request.seq);
                if let Some(breaker) = &config.breaker {
                    lane.breaker_window.record(sojourn);
                    if lane.breaker_window.total() >= breaker.window_requests {
                        let p99 = lane.breaker_window.p99().expect("non-empty window");
                        if p99 > breaker.sojourn_slo_p99_cycles {
                            lane.breaker_open_until = now + breaker.cooldown_cycles;
                            lane.breaker_trips += 1;
                        }
                        lane.breaker_window = LatencyHistogram::new();
                    }
                }
            }
            policy_state.charge(tenant, granted - quota);
            if let Some((sink, kind)) = turn_trace {
                let consumed = granted - quota;
                if consumed > 0 {
                    sink.emit(neummu_trace::Event {
                        kind,
                        asid: asid.raw(),
                        start: turn_start,
                        end: now,
                        payload: consumed,
                    });
                }
            }
        }

        // Final bookkeeping: queue counters and capacity shares.
        for (lane, tenant_stats) in lanes.iter().zip(&mut stats) {
            tenant_stats.queue = lane.queue.stats();
            tenant_stats.shed = lane.shed;
            tenant_stats.breaker_trips = lane.breaker_trips;
            tenant_stats.translation.final_tlb_occupancy =
                engine.tlb().occupancy_of(tenant_stats.translation.asid) as u64;
        }
        let makespan_cycles = stats
            .iter()
            .map(|s| s.translation.completion_cycle)
            .max()
            .unwrap_or(0);
        Ok(ServingResult {
            tenants: tenants.to_vec(),
            stats,
            timeline,
            makespan_cycles,
            fault_counters: engine.fault_counters().cloned(),
        })
    }
}
