//! Pluggable tenant-scheduling policies for the shared translation front end.
//!
//! Every policy answers one question per scheduler turn: *which runnable
//! tenant gets the next service quantum?* The answer is a pure function of
//! the policy's own bookkeeping plus the per-tenant observables the caller
//! passes in (queue depths, IOTLB occupancies) — no clocks, no hashing, no
//! allocation ([`PolicyState::pick`] and [`PolicyState::charge`] are
//! registered hot paths under the H001 lint), so serial and parallel sweeps
//! make bit-identical decisions.
//!
//! | Policy | Picks | Fairness lever |
//! |---|---|---|
//! | [`ServingPolicy::RoundRobin`] | next runnable tenant in cyclic ASID order | equal turns |
//! | [`ServingPolicy::WeightedFair`] | smallest virtual service `served/weight` | equal *weighted* service |
//! | [`ServingPolicy::BurstQuantum`] | deepest backlog, re-evaluated every quantum | drains bursts first |
//! | [`ServingPolicy::TlbAware`] | round-robin, skipping IOTLB hogs | bounds capacity share |
//!
//! Round-robin's cursor scan is the same cyclic ascending order the closed-
//! loop scheduler's original `VecDeque` rotation produced (pop front, serve,
//! push back), so the default policy is bit-identical to the pre-policy
//! scheduler — a property the multi-tenant proptests lock.

use serde::{Deserialize, Serialize};

/// A tenant-scheduling policy of the serving front end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServingPolicy {
    /// Equal turns in cyclic ASID order (the classic time-share baseline and
    /// the closed-loop scheduler's historical behaviour).
    RoundRobin,
    /// Weighted fair queueing: each tenant accrues virtual service
    /// `transactions / weight`; the runnable tenant with the least virtual
    /// service goes next (ties break to the lowest ASID). Under saturation,
    /// service shares converge to the weight vector.
    WeightedFair,
    /// Burst-quantum preemption: every quantum is granted to the runnable
    /// tenant with the deepest request backlog (ties to the lowest ASID), so
    /// an arriving burst preempts the rotation at the next quantum boundary
    /// and is drained before shallow queues get more turns.
    BurstQuantum,
    /// TLB-occupancy-aware throttling: round-robin, but a tenant holding more
    /// than `occupancy_cap_pct` percent of the shared IOTLB is skipped while
    /// any tenant under the cap is runnable (hogs throttle, they never
    /// starve: if everyone is over the cap, plain round-robin resumes).
    TlbAware {
        /// Maximum IOTLB capacity share (in percent, 1–100) a tenant may hold
        /// before being throttled.
        occupancy_cap_pct: u8,
    },
}

impl ServingPolicy {
    /// Short label for artifact rows and file names.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ServingPolicy::RoundRobin => "rr",
            ServingPolicy::WeightedFair => "wfq",
            ServingPolicy::BurstQuantum => "bq",
            ServingPolicy::TlbAware { .. } => "tlb",
        }
    }

    /// Human-readable name for table titles.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ServingPolicy::RoundRobin => "round-robin",
            ServingPolicy::WeightedFair => "weighted-fair",
            ServingPolicy::BurstQuantum => "burst-quantum",
            ServingPolicy::TlbAware { .. } => "tlb-aware",
        }
    }

    /// True if [`PolicyState::pick`] reads the `occupancies` observable (lets
    /// callers skip gathering it otherwise).
    #[must_use]
    pub fn needs_occupancy(&self) -> bool {
        matches!(self, ServingPolicy::TlbAware { .. })
    }

    /// True if [`PolicyState::pick`] reads the `depths` observable.
    #[must_use]
    pub fn needs_depths(&self) -> bool {
        matches!(self, ServingPolicy::BurstQuantum)
    }
}

/// The mutable bookkeeping of one policy across one scheduler run.
#[derive(Debug, Clone)]
pub struct PolicyState {
    policy: ServingPolicy,
    /// Next tenant the round-robin cursor will consider.
    cursor: usize,
    /// Per-tenant weights (WFQ); all ones for unweighted policies.
    weights: Vec<u64>,
    /// Per-tenant accumulated virtual service (WFQ): `served txns / weight`.
    virtual_service: Vec<f64>,
    /// Global virtual time: the largest virtual service any picked tenant had
    /// when picked. Newly backlogged tenants start here, not at zero, so an
    /// idle period cannot bank unbounded credit.
    virtual_time: f64,
}

impl PolicyState {
    /// Creates the bookkeeping for `tenant_count` tenants. `weights` applies
    /// to [`ServingPolicy::WeightedFair`] (missing entries default to 1; zero
    /// weights are lifted to 1).
    #[must_use]
    pub fn new(policy: ServingPolicy, tenant_count: usize, weights: &[u64]) -> Self {
        PolicyState {
            policy,
            cursor: 0,
            weights: (0..tenant_count)
                .map(|t| weights.get(t).copied().unwrap_or(1).max(1))
                .collect(),
            virtual_service: vec![0.0; tenant_count],
            virtual_time: 0.0,
        }
    }

    /// The policy this state drives.
    #[must_use]
    pub fn policy(&self) -> ServingPolicy {
        self.policy
    }

    /// Picks the tenant to serve next, or `None` if no tenant is runnable.
    ///
    /// `runnable[t]` marks tenants with work available right now; `depths[t]`
    /// is the tenant's waiting request count (read by burst-quantum);
    /// `occupancies[t]` is the tenant's resident IOTLB entry count and
    /// `tlb_capacity` the shared capacity (read by TLB-aware throttling).
    /// All slices are tenant-indexed and must cover every tenant.
    pub fn pick(
        &mut self,
        runnable: &[bool],
        depths: &[u64],
        occupancies: &[u64],
        tlb_capacity: u64,
    ) -> Option<usize> {
        match self.policy {
            ServingPolicy::RoundRobin => self.pick_cyclic(runnable, |_| true),
            ServingPolicy::WeightedFair => {
                let mut best: Option<usize> = None;
                for (t, &up) in runnable.iter().enumerate() {
                    if !up {
                        continue;
                    }
                    // Strict `<` keeps ties on the lowest tenant index.
                    if best.is_none_or(|b| self.virtual_service[t] < self.virtual_service[b]) {
                        best = Some(t);
                    }
                }
                if let Some(t) = best {
                    self.virtual_time = self.virtual_time.max(self.virtual_service[t]);
                }
                best
            }
            ServingPolicy::BurstQuantum => {
                let mut best: Option<usize> = None;
                for (t, &up) in runnable.iter().enumerate() {
                    if !up {
                        continue;
                    }
                    if best.is_none_or(|b| depths[t] > depths[b]) {
                        best = Some(t);
                    }
                }
                best
            }
            ServingPolicy::TlbAware { occupancy_cap_pct } => {
                let cap = tlb_capacity * u64::from(occupancy_cap_pct) / 100;
                // Prefer tenants under the occupancy cap; fall back to plain
                // round-robin when every runnable tenant is a hog.
                self.pick_cyclic(runnable, |t| occupancies[t] <= cap)
                    .or_else(|| self.pick_cyclic(runnable, |_| true))
            }
        }
    }

    /// Cyclic cursor scan: the first tenant at or after the cursor that is
    /// runnable and passes `eligible`; the cursor advances past the pick.
    /// This reproduces the `VecDeque` rotation order exactly: tenants are
    /// visited in ascending index order, wrapping, starting from the slot
    /// after the previous pick.
    fn pick_cyclic(
        &mut self,
        runnable: &[bool],
        eligible: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        let n = runnable.len();
        for step in 0..n {
            let t = (self.cursor + step) % n;
            if runnable[t] && eligible(t) {
                self.cursor = (t + 1) % n;
                return Some(t);
            }
        }
        None
    }

    /// Charges `transactions` of service to tenant `t` (called after every
    /// quantum with what the tenant actually consumed).
    pub fn charge(&mut self, t: usize, transactions: u64) {
        self.virtual_service[t] += transactions as f64 / self.weights[t] as f64;
    }

    /// Notes that an idle tenant became backlogged: its virtual service
    /// catches up to the global virtual time, so the idle period earns no
    /// retroactive credit (standard start-time fair queueing).
    pub fn note_backlogged(&mut self, t: usize) {
        if self.virtual_service[t] < self.virtual_time {
            self.virtual_service[t] = self.virtual_time;
        }
    }

    /// The tenant's accumulated virtual service (test observability).
    #[must_use]
    pub fn virtual_service_of(&self, t: usize) -> f64 {
        self.virtual_service[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_DEPTHS: [u64; 4] = [0; 4];
    const NO_OCC: [u64; 4] = [0; 4];

    #[test]
    fn round_robin_cycles_in_ascending_order_and_skips_finished_tenants() {
        let mut state = PolicyState::new(ServingPolicy::RoundRobin, 4, &[]);
        let mut runnable = [true; 4];
        let mut order = Vec::new();
        for _ in 0..6 {
            order.push(state.pick(&runnable, &NO_DEPTHS, &NO_OCC, 0).unwrap());
        }
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1]);
        runnable[2] = false;
        let mut order = Vec::new();
        for _ in 0..3 {
            order.push(state.pick(&runnable, &NO_DEPTHS, &NO_OCC, 0).unwrap());
        }
        assert_eq!(order, vec![3, 0, 1], "cursor continues after tenant 1");
        assert_eq!(state.pick(&[false; 4], &NO_DEPTHS, &NO_OCC, 0), None);
    }

    #[test]
    fn weighted_fair_shares_track_weights() {
        // Weights 1:3 under permanent saturation: after many unit charges,
        // tenant 1 should have collected ~3x tenant 0's service.
        let mut state = PolicyState::new(ServingPolicy::WeightedFair, 2, &[1, 3]);
        let runnable = [true, true];
        let mut served = [0u64; 2];
        for _ in 0..4000 {
            let t = state.pick(&runnable, &[0; 2], &[0; 2], 0).unwrap();
            served[t] += 1;
            state.charge(t, 1);
        }
        let share = served[1] as f64 / (served[0] + served[1]) as f64;
        assert!(
            (share - 0.75).abs() < 0.01,
            "weight-3 tenant got {share} of service"
        );
    }

    #[test]
    fn weighted_fair_idle_tenants_earn_no_credit() {
        let mut state = PolicyState::new(ServingPolicy::WeightedFair, 2, &[1, 1]);
        // Tenant 0 runs alone for a while.
        for _ in 0..100 {
            let t = state.pick(&[true, false], &[0; 2], &[0; 2], 0).unwrap();
            assert_eq!(t, 0);
            state.charge(t, 1);
        }
        // Tenant 1 wakes up: with catch-up it must not monopolize the front
        // end for 100 turns.
        state.note_backlogged(1);
        let mut consecutive_ones = 0;
        let runnable = [true, true];
        loop {
            let t = state.pick(&runnable, &[0; 2], &[0; 2], 0).unwrap();
            state.charge(t, 1);
            if t == 1 {
                consecutive_ones += 1;
            } else {
                break;
            }
        }
        assert!(
            consecutive_ones <= 2,
            "woken tenant monopolized {consecutive_ones} turns"
        );
    }

    #[test]
    fn burst_quantum_preempts_for_the_deepest_backlog() {
        let mut state = PolicyState::new(ServingPolicy::BurstQuantum, 3, &[]);
        let runnable = [true; 3];
        assert_eq!(state.pick(&runnable, &[1, 5, 3], &[0; 3], 0), Some(1));
        // A burst landing on tenant 2 preempts at the next quantum.
        assert_eq!(state.pick(&runnable, &[1, 4, 9], &[0; 3], 0), Some(2));
        // Ties break to the lowest index.
        assert_eq!(state.pick(&runnable, &[7, 7, 7], &[0; 3], 0), Some(0));
    }

    #[test]
    fn tlb_aware_throttles_hogs_but_never_starves_them() {
        let policy = ServingPolicy::TlbAware {
            occupancy_cap_pct: 25,
        };
        assert!(policy.needs_occupancy());
        let mut state = PolicyState::new(policy, 3, &[]);
        let runnable = [true; 3];
        // Capacity 100, cap 25: tenant 0 holds 60 entries and is skipped.
        let occ = [60, 10, 10];
        let mut order = Vec::new();
        for _ in 0..4 {
            order.push(state.pick(&runnable, &[0; 3], &occ, 100).unwrap());
        }
        assert_eq!(order, vec![1, 2, 1, 2], "the hog is throttled");
        // All over the cap: plain round-robin resumes (no starvation).
        let occ = [60, 40, 50];
        let mut order = Vec::new();
        for _ in 0..3 {
            order.push(state.pick(&runnable, &[0; 3], &occ, 100).unwrap());
        }
        assert_eq!(order.len(), 3);
        assert!(order.contains(&0), "hogs still run when everyone is a hog");
    }
}
